// Fig. 4a — emulated-testbed comparison: 3 extenders, 7 laptops, 25 random
// topologies. Paper: WOLT improves the average aggregate throughput by ~26%
// over Greedy and ~70% over RSSI.
#include <cstdio>
#include <vector>

#include "bench_util.h"
#include "core/greedy.h"
#include "core/rssi.h"
#include "core/wolt.h"
#include "testbed/traces.h"
#include "util/rng.h"
#include "util/table.h"

int main() {
  using namespace wolt;
  bench::PrintHeader(
      "Fig. 4a — WOLT vs Greedy vs RSSI on the emulated testbed",
      "3 TL-WPA8630-class extenders, 7 laptops, 25 random topologies.");

  const testbed::LabTestbed lab;
  util::Rng rng(2020);
  const auto topologies = lab.GenerateTopologies(25, rng);

  core::WoltPolicy wolt;
  core::WoltOptions so;
  so.subset_search = true;
  core::WoltPolicy wolts(so);
  core::GreedyPolicy greedy;
  core::RssiPolicy rssi;
  std::vector<core::AssociationPolicy*> policies = {&wolt, &wolts, &greedy,
                                                    &rssi};
  const auto results = sim::RunNetworkTrials(topologies, policies);
  bench::PrintPolicySummary(results);

  const double wolt_mean = results[0].MeanAggregate();
  const double wolts_mean = results[1].MeanAggregate();
  const double greedy_mean = results[2].MeanAggregate();
  const double rssi_mean = results[3].MeanAggregate();

  std::printf("\n");
  util::Table gains({"comparison", "measured", "paper"});
  const auto& ref = testbed::Fig4aImprovements();
  gains.AddRow({"WOLT vs Greedy",
                util::FmtPct(wolt_mean / greedy_mean - 1.0),
                util::FmtPct(ref[0].value)});
  gains.AddRow({"WOLT vs RSSI", util::FmtPct(wolt_mean / rssi_mean - 1.0),
                util::FmtPct(ref[1].value)});
  gains.AddRow({"WOLT-S vs Greedy",
                util::FmtPct(wolts_mean / greedy_mean - 1.0), "(extension)"});
  gains.Print();
  std::printf(
      "\nExpected shape: WOLT > Greedy > RSSI, with a large WOLT-vs-RSSI\n"
      "margin and a moderate WOLT-vs-Greedy margin.\n");
  bench::PrintFooter();
  return 0;
}
