// Fig. 6c — re-assignment load of WOLT under user dynamics: the number of
// existing users WOLT moves at each epoch boundary stays below ~2x the
// number of newly arriving users (about one swap per arrival on average).
#include <cstdio>
#include <vector>

#include "bench_util.h"
#include "core/greedy.h"
#include "core/wolt.h"
#include "sim/dynamics.h"
#include "testbed/traces.h"
#include "util/rng.h"
#include "util/table.h"

int main() {
  using namespace wolt;
  bench::PrintHeader(
      "Fig. 6c — user re-assignments per epoch",
      "WOLT re-optimizes at every epoch boundary with sticky Phase II;\n"
      "Greedy never re-assigns (its row is the zero baseline).");

  const sim::ScenarioGenerator gen(bench::EnterpriseParams(0));
  const int kTrials = 10;

  util::Table table({"trial", "epoch", "arrivals", "wolt_reassignments",
                     "ratio", "paper_bound"});
  double total_arrivals = 0.0, total_moves = 0.0;
  util::Rng rng(2020);
  for (int trial = 0; trial < kTrials; ++trial) {
    core::WoltPolicy wolt;
    core::GreedyPolicy greedy;
    std::vector<core::AssociationPolicy*> policies = {&wolt, &greedy};
    sim::DynamicsParams params;
    util::Rng trial_rng = rng.Fork();
    const auto history =
        sim::RunDynamicSimulation(gen, policies, params, trial_rng);
    for (const auto& epoch : history) {
      const double ratio =
          epoch.arrivals > 0
              ? static_cast<double>(epoch.per_policy[0].reassignments) /
                    static_cast<double>(epoch.arrivals)
              : 0.0;
      total_arrivals += static_cast<double>(epoch.arrivals);
      total_moves += static_cast<double>(epoch.per_policy[0].reassignments);
      if (trial < 3) {  // print the first trials; summarize the rest
        table.AddRow({std::to_string(trial), std::to_string(epoch.epoch),
                      std::to_string(epoch.arrivals),
                      std::to_string(epoch.per_policy[0].reassignments),
                      util::Fmt(ratio, 2),
                      util::Fmt(testbed::Fig6cMaxReassignmentsPerArrival(),
                                0)});
      }
    }
  }
  table.Print();
  std::printf(
      "\noverall: %.0f re-assignments for %.0f arrivals -> %s per arrival "
      "(paper bound: <= %.0fx)\n",
      total_moves, total_arrivals, util::Fmt(total_moves / total_arrivals, 2).c_str(),
      testbed::Fig6cMaxReassignmentsPerArrival());
  std::printf(
      "\nExpected shape: roughly one existing user swapped per new arrival,\n"
      "never exceeding ~2x the arrival count.\n");
  bench::PrintFooter();
  return 0;
}
