// Fig. 6a — CDF of aggregate throughput over 100 enterprise-floor trials at
// |U| = 36, 15 extenders. The paper reports WOLT ~2.5x the greedy baseline
// and winning every trial; we report paper-faithful WOLT, the WOLT-S
// activation-subset extension, Greedy and RSSI under the physically
// validated sharing model, and dump the raw CDFs as CSV.
#include <cstdio>
#include <vector>

#include "bench_util.h"
#include "core/greedy.h"
#include "core/rssi.h"
#include "core/wolt.h"
#include "testbed/traces.h"
#include "util/csv.h"
#include "util/rng.h"
#include "util/stats.h"
#include "util/table.h"

int main() {
  using namespace wolt;
  bench::PrintHeader(
      "Fig. 6a — CDF of aggregate throughput (100 trials, |U| = 36)",
      "100 m x 100 m floor, 15 extenders, calibrated PLC capacities.");

  const sim::ScenarioGenerator gen(bench::EnterpriseParams(36));
  core::WoltPolicy wolt;
  core::WoltOptions so;
  so.subset_search = true;
  core::WoltPolicy wolts(so);
  core::GreedyPolicy greedy;
  core::RssiPolicy rssi;
  std::vector<core::AssociationPolicy*> policies = {&wolt, &wolts, &greedy,
                                                    &rssi};
  util::Rng rng(2020);
  const auto results = sim::RunStaticTrials(gen, policies, 100, rng);

  bench::PrintPolicySummary(results);
  std::printf("\nCDF (aggregate Mbit/s at selected percentiles):\n");
  util::Table cdf({"policy", "p10", "p25", "p50", "p75", "p90"});
  for (const auto& pr : results) {
    const auto xs = pr.Aggregates();
    cdf.AddRow({pr.policy, util::Fmt(util::Percentile(xs, 10), 1),
                util::Fmt(util::Percentile(xs, 25), 1),
                util::Fmt(util::Percentile(xs, 50), 1),
                util::Fmt(util::Percentile(xs, 75), 1),
                util::Fmt(util::Percentile(xs, 90), 1)});
  }
  cdf.Print();

  int wolts_wins = 0;
  for (std::size_t t = 0; t < results[1].trials.size(); ++t) {
    if (results[1].trials[t].aggregate_mbps >=
        results[2].trials[t].aggregate_mbps) {
      ++wolts_wins;
    }
  }
  std::printf("\nWOLT   / Greedy mean ratio: %s (paper: %.1fx)\n",
              util::Fmt(results[0].MeanAggregate() /
                            results[2].MeanAggregate(),
                        2)
                  .c_str(),
              testbed::Fig6aImprovementRatio()[0].value);
  std::printf("WOLT-S / Greedy mean ratio: %s, wins %d/100 trials\n",
              util::Fmt(results[1].MeanAggregate() /
                            results[2].MeanAggregate(),
                        2)
                  .c_str(),
              wolts_wins);
  std::printf(
      "\nNote: the paper's 2.5x reflects a weaker online baseline; our\n"
      "Greedy re-evaluates the true aggregate on every arrival. See\n"
      "EXPERIMENTS.md for the full reproduction analysis.\n");

  util::CsvWriter csv("fig6a_cdf.csv", {"policy", "aggregate_mbps",
                                        "cumulative_probability"});
  if (csv.ok()) {
    for (const auto& pr : results) {
      for (const auto& point : util::EmpiricalCdf(pr.Aggregates())) {
        csv.AddRow({pr.policy, util::Fmt(point.value, 3),
                    util::Fmt(point.cumulative_probability, 4)});
      }
    }
    std::printf("raw CDF series written to fig6a_cdf.csv\n");
  }
  bench::PrintFooter();
  return 0;
}
