// Fig. 6a — CDF of aggregate throughput over enterprise-floor trials at
// |U| = 36, 15 extenders. The paper reports WOLT ~2.5x the greedy baseline
// and winning every trial; we report paper-faithful WOLT, the WOLT-S
// activation-subset extension, Greedy and RSSI under the physically
// validated sharing model, and dump the raw CDFs as CSV.
//
// Runs on the parallel sweep engine (src/sweep/): the trial axis is a
// SweepGrid replicate-seed axis, so --threads=N changes wall-clock only —
// every number printed and every CSV byte is identical for any N (the CI
// determinism smoke cmp's the CSV of a 1-thread and a 4-thread run).
//
// Crash safety: --journal=PATH checkpoints every completed trial to a
// write-ahead journal; SIGINT/SIGTERM (or a crash) mid-sweep leaves a
// resumable journal, and a rerun with --resume=PATH restores the finished
// trials and produces byte-identical output to an uninterrupted run.
//
// Joint channel axis: --channels=N (N > 0) runs every trial with N
// orthogonal channels available and co-channel contention scored under the
// overlap model, adding the WOLT-J joint association+recolouring policy to
// the comparison (the CI joint determinism smoke runs this path).
//
// Dynamic-workload axes: --mobility=teleport|waypoint|hotspot, --churn=R,
// --load=diurnal|bursty and --budget=U (ladder units) switch every trial to
// the trace-driven frontier path (sim::RunTraceFrontier): each trial
// generates a workload trace over its topology, replays it through a
// CentralController and scores the mean achieved throughput. Incompatible
// with --channels (the frontier controller is plan-blind). The CI dynamics
// determinism smoke cmp's the CSV of a 1-thread and a 4-thread dynamic run.
//
//   $ ./bench_fig6a_throughput_cdf [--trials=100] [--threads=1]
//                                  [--seed=2020] [--channels=0]
//                                  [--mobility=static] [--churn=0]
//                                  [--load=constant] [--budget=0]
//                                  [--csv=fig6a_cdf.csv]
//                                  [--journal=sweep.wal] [--resume=sweep.wal]
//                                  [--trace=out.json] [--metrics=out.json]
#include <cstdio>
#include <cstdlib>
#include <optional>
#include <string>
#include <vector>

#include "bench_util.h"
#include "sim/workload.h"
#include "sweep/engine.h"
#include "sweep/grid.h"
#include "testbed/traces.h"
#include "util/csv.h"
#include "util/stats.h"
#include "util/table.h"

namespace {
// Signal-handler bridge: SweepEngine::Cancel is a relaxed atomic store, so
// calling it through this file-scope pointer is async-signal-safe.
wolt::sweep::SweepEngine* g_engine = nullptr;
void CancelSweep() {
  if (g_engine) g_engine->Cancel();
}
}  // namespace

int main(int argc, char** argv) {
  using namespace wolt;
  bench::ObsSession obs(argc, argv);
  const bench::Flags flags(argc, argv,
                           {"trials", "threads", "seed", "channels",
                            "mobility", "churn", "load", "budget", "csv",
                            "journal", "resume", "trace", "metrics"});
  const int trials = static_cast<int>(flags.Int("trials", 100));
  const int threads = static_cast<int>(flags.Int("threads", 1));
  const int channels = static_cast<int>(flags.Int("channels", 0));
  const std::optional<sim::MobilityModel> mobility =
      sim::MobilityModelFromString(flags.Str("mobility", "static"));
  const std::optional<sim::LoadCurve> load =
      sim::LoadCurveFromString(flags.Str("load", "constant"));
  const double churn = std::strtod(flags.Str("churn", "0").c_str(), nullptr);
  const int budget = static_cast<int>(flags.Int("budget", 0));
  if (!mobility || !load || churn < 0.0 || budget < 0) {
    std::fprintf(stderr,
                 "error: bad dynamic-workload flags (--mobility=static|"
                 "teleport|waypoint|hotspot --load=constant|diurnal|bursty "
                 "--churn>=0 --budget>=0)\n");
    return 1;
  }
  const bool dynamic = *mobility != sim::MobilityModel::kStatic ||
                       *load != sim::LoadCurve::kConstant || churn > 0.0 ||
                       budget != 0;
  if (dynamic && channels > 0) {
    std::fprintf(stderr,
                 "error: --mobility/--churn/--load/--budget are incompatible "
                 "with --channels (the frontier controller is plan-blind)\n");
    return 1;
  }
  const std::string csv_path = flags.Str("csv", "fig6a_cdf.csv");
  const std::string resume_path = flags.Str("resume", "");

  char desc[160];
  std::snprintf(desc, sizeof(desc),
                "100 m x 100 m floor, 15 extenders, calibrated PLC "
                "capacities; %d trials, %d thread(s).",
                trials, threads);
  bench::PrintHeader("Fig. 6a — CDF of aggregate throughput (|U| = 36)",
                     desc);

  sweep::SweepGrid grid;
  grid.master_seed = flags.U64("seed", 2020);
  grid.SeedRange(static_cast<std::size_t>(trials));
  grid.users = {36};
  grid.extenders = {15};
  grid.sharing = {model::PlcSharing::kMaxMinActive};
  grid.policies = {sweep::PolicyKind::kWolt, sweep::PolicyKind::kWoltSubset,
                   sweep::PolicyKind::kGreedy, sweep::PolicyKind::kRssi};
  if (channels > 0) {
    // Joint axis: score every policy under the overlap model with this many
    // orthogonal channels, and add the joint solver to the line-up.
    grid.num_channels = {channels};
    grid.policies.push_back(sweep::PolicyKind::kJointWolt);
  }
  if (dynamic) {
    // Trace-driven frontier path: per-trial workload trace replayed through
    // a CentralController, reoptimizing on the cumulative ladder at this
    // budget. aggregate_mbps becomes the per-epoch mean.
    grid.mobility = {*mobility};
    grid.churn_rates = {churn};
    grid.load_curves = {*load};
    grid.reopt_budgets = {budget};
  }
  grid.base = bench::EnterpriseParams(36);

  sweep::SweepOptions options;
  options.threads = threads;
  options.collect_metrics = obs.metrics_enabled();
  if (!resume_path.empty()) {
    options.journal_path = resume_path;
    options.resume = true;
  } else {
    options.journal_path = flags.Str("journal", "");
  }
  sweep::SweepEngine engine(options);
  g_engine = &engine;
  bench::CancelOnSignal::Install(/*cancel=*/nullptr, &CancelSweep);
  const sweep::SweepResult sweep_result = engine.Run(grid);
  if (sweep_result.resumed_tasks > 0) {
    std::printf("resumed %zu already-journaled task(s) from %s\n",
                sweep_result.resumed_tasks, resume_path.c_str());
  }
  if (sweep_result.cancelled) {
    // The engine has already flushed and closed the journal with every
    // finished task; nothing partial was emitted.
    if (!options.journal_path.empty()) {
      std::fprintf(stderr,
                   "\ninterrupted (signal %d): sweep cancelled; resumable "
                   "from %s via --resume=%s\n",
                   bench::CancelOnSignal::SignalNumber(),
                   options.journal_path.c_str(), options.journal_path.c_str());
    } else {
      std::fprintf(stderr,
                   "\ninterrupted (signal %d): sweep cancelled; rerun with "
                   "--journal=PATH to make interrupted runs resumable\n",
                   bench::CancelOnSignal::SignalNumber());
    }
    return bench::CancelOnSignal::Raised() ? bench::CancelOnSignal::ExitCode()
                                           : 1;
  }
  if (obs.metrics_enabled()) obs.Merge(sweep_result.metrics);
  const auto results = sweep::ToPolicyTrials(grid, sweep_result);

  bench::PrintPolicySummary(results);
  std::printf("\nCDF (aggregate Mbit/s at selected percentiles):\n");
  util::Table cdf({"policy", "p10", "p25", "p50", "p75", "p90"});
  for (const auto& pr : results) {
    const auto xs = pr.Aggregates();
    cdf.AddRow({pr.policy, util::Fmt(util::Percentile(xs, 10), 1),
                util::Fmt(util::Percentile(xs, 25), 1),
                util::Fmt(util::Percentile(xs, 50), 1),
                util::Fmt(util::Percentile(xs, 75), 1),
                util::Fmt(util::Percentile(xs, 90), 1)});
  }
  cdf.Print();

  int wolts_wins = 0;
  for (std::size_t t = 0; t < results[1].trials.size(); ++t) {
    if (results[1].trials[t].aggregate_mbps >=
        results[2].trials[t].aggregate_mbps) {
      ++wolts_wins;
    }
  }
  std::printf("\nWOLT   / Greedy mean ratio: %s (paper: %.1fx)\n",
              util::Fmt(results[0].MeanAggregate() /
                            results[2].MeanAggregate(),
                        2)
                  .c_str(),
              testbed::Fig6aImprovementRatio()[0].value);
  std::printf("WOLT-S / Greedy mean ratio: %s, wins %d/%d trials\n",
              util::Fmt(results[1].MeanAggregate() /
                            results[2].MeanAggregate(),
                        2)
                  .c_str(),
              wolts_wins, trials);
  std::printf(
      "\nNote: the paper's 2.5x reflects a weaker online baseline; our\n"
      "Greedy re-evaluates the true aggregate on every arrival. See\n"
      "EXPERIMENTS.md for the full reproduction analysis.\n");
  std::printf("sweep wall time: %.2f s (%d threads)\n",
              sweep_result.wall_seconds, threads);

  util::CsvWriter csv(csv_path, {"policy", "aggregate_mbps",
                                 "cumulative_probability"});
  for (const auto& pr : results) {
    for (const auto& point : util::EmpiricalCdf(pr.Aggregates())) {
      csv.AddRow({pr.policy, util::Fmt(point.value, 6),
                  util::Fmt(point.cumulative_probability, 4)});
    }
  }
  if (!csv.ok() || !csv.Commit()) {
    std::fprintf(stderr, "error: cannot write %s\n", csv_path.c_str());
    return 1;
  }
  std::printf("raw CDF series written to %s\n", csv_path.c_str());
  bench::PrintFooter();
  return 0;
}
