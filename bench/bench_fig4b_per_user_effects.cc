// Fig. 4b — per-user effects of WOLT on the emulated testbed: the fraction
// of users that gain/lose throughput when switching from each baseline to
// WOLT. Paper: ~35% of users improve vs Greedy, ~55% improve vs RSSI.
#include <cstdio>
#include <vector>

#include "bench_util.h"
#include "core/greedy.h"
#include "core/rssi.h"
#include "core/wolt.h"
#include "testbed/traces.h"
#include "util/rng.h"
#include "util/table.h"

int main() {
  using namespace wolt;
  bench::PrintHeader(
      "Fig. 4b — per-user win/loss of WOLT vs the baselines",
      "Same 25 emulated-testbed topologies as Fig. 4a; per-user throughput\n"
      "compared pairwise between WOLT and each baseline.");

  const testbed::LabTestbed lab;
  util::Rng rng(2020);
  const auto topologies = lab.GenerateTopologies(25, rng);

  core::WoltPolicy wolt;
  core::GreedyPolicy greedy;
  core::RssiPolicy rssi;
  std::vector<core::AssociationPolicy*> policies = {&wolt, &greedy, &rssi};
  const auto results = sim::RunNetworkTrials(topologies, policies);

  const sim::WinLoss vs_greedy = sim::CompareUsers(results[0], results[1]);
  const sim::WinLoss vs_rssi = sim::CompareUsers(results[0], results[2]);

  const auto& ref = testbed::Fig4bUserWinFractions();
  util::Table table({"comparison", "users_better", "users_worse",
                     "users_equal", "paper_better"});
  table.AddRow({"WOLT vs Greedy", util::FmtPct(vs_greedy.better),
                util::FmtPct(vs_greedy.worse), util::FmtPct(vs_greedy.equal),
                util::FmtPct(ref[0].value)});
  table.AddRow({"WOLT vs RSSI", util::FmtPct(vs_rssi.better),
                util::FmtPct(vs_rssi.worse), util::FmtPct(vs_rssi.equal),
                util::FmtPct(ref[1].value)});
  table.Print();
  std::printf(
      "\nExpected shape: a substantial minority of users individually lose\n"
      "under WOLT (it optimizes the aggregate, not each user), with more\n"
      "users improving vs RSSI than vs Greedy.\n");
  bench::PrintFooter();
  return 0;
}
