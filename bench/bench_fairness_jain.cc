// §V-E fairness table — Jain's fairness index of per-user throughputs on
// the enterprise floor. Paper: WOLT 0.66, Greedy 0.52, RSSI 0.65 — WOLT is
// at least as fair as the baselines despite optimizing only the aggregate.
#include <cstdio>
#include <vector>

#include "bench_util.h"
#include "core/greedy.h"
#include "core/rssi.h"
#include "core/wolt.h"
#include "testbed/traces.h"
#include "util/rng.h"
#include "util/table.h"

int main() {
  using namespace wolt;
  bench::PrintHeader(
      "§V-E — Jain's fairness index (simulation, |U| = 36)",
      "Fairness of per-user throughputs; WOLT does not optimize fairness\n"
      "yet must match or beat the baselines.");

  const sim::ScenarioGenerator gen(bench::EnterpriseParams(36));
  core::WoltPolicy wolt;
  core::WoltOptions so;
  so.subset_search = true;
  core::WoltPolicy wolts(so);
  core::GreedyPolicy greedy;
  core::RssiPolicy rssi;
  std::vector<core::AssociationPolicy*> policies = {&wolt, &wolts, &greedy,
                                                    &rssi};
  util::Rng rng(2020);
  const auto results = sim::RunStaticTrials(gen, policies, 100, rng);

  const auto& ref = testbed::JainFairnessReference();
  const auto paper = [&](const std::string& name) {
    for (const auto& p : ref) {
      if (p.label == name) return util::Fmt(p.value, 2);
    }
    return std::string("(extension)");
  };

  util::Table table({"policy", "jain_measured", "jain_paper"});
  for (const auto& pr : results) {
    table.AddRow({pr.policy, util::Fmt(pr.MeanJain(), 2), paper(pr.policy)});
  }
  table.Print();
  std::printf(
      "\nExpected shape: WOLT and RSSI near parity (~0.65), Greedy clearly\n"
      "less fair (~0.52).\n");
  bench::PrintFooter();
  return 0;
}
