// Fig. 6b — online behaviour: users arrive/depart by a Poisson process and
// the population grows ~36 -> 66 -> 102 across three epochs; the aggregate
// throughput per policy is reported at every epoch boundary.
#include <cstdio>
#include <vector>

#include "bench_util.h"
#include "core/greedy.h"
#include "core/rssi.h"
#include "core/wolt.h"
#include "sim/dynamics.h"
#include "testbed/traces.h"
#include "util/rng.h"
#include "util/stats.h"
#include "util/table.h"

int main(int argc, char** argv) {
  using namespace wolt;
  // --trace=out.json captures one span per online epoch and per policy
  // reassociation (the EXPERIMENTS.md fig6b trace recipe); --metrics=out.json
  // captures solver/controller counters for the whole run.
  bench::ObsSession obs(argc, argv);
  bench::PrintHeader(
      "Fig. 6b — aggregate throughput over epochs (online arrivals)",
      "Poisson arrivals (rate 3), epoch = 12 time units, net ~+33 users\n"
      "per epoch; population target 36 / 66 / 102 (paper's trajectory).");

  const sim::ScenarioGenerator gen(bench::EnterpriseParams(0));
  const int kTrials = 10;

  // Accumulate per-epoch means across trials.
  const std::vector<std::string> names = {"WOLT", "WOLT-S", "Greedy", "RSSI"};
  std::vector<std::vector<double>> aggregates(3,
                                              std::vector<double>(4, 0.0));
  std::vector<double> population(3, 0.0);
  util::Rng rng(2020);
  for (int trial = 0; trial < kTrials; ++trial) {
    core::WoltPolicy wolt;
    core::WoltOptions so;
    so.subset_search = true;
    core::WoltPolicy wolts(so);
    core::GreedyPolicy greedy;
    core::RssiPolicy rssi;
    std::vector<core::AssociationPolicy*> policies = {&wolt, &wolts, &greedy,
                                                      &rssi};
    sim::DynamicsParams params;
    util::Rng trial_rng = rng.Fork();
    const auto history =
        sim::RunDynamicSimulation(gen, policies, params, trial_rng);
    for (std::size_t e = 0; e < history.size(); ++e) {
      population[e] += static_cast<double>(history[e].population) / kTrials;
      for (std::size_t p = 0; p < names.size(); ++p) {
        aggregates[e][p] += history[e].per_policy[p].aggregate_mbps / kTrials;
      }
    }
  }

  const auto& ref = testbed::Fig6bPopulationTrajectory();
  util::Table table({"epoch", "population(mean)", "paper_population",
                     "WOLT_mbps", "WOLT-S_mbps", "Greedy_mbps", "RSSI_mbps"});
  for (std::size_t e = 0; e < 3; ++e) {
    table.AddRow({std::to_string(e + 1), util::Fmt(population[e], 1),
                  util::Fmt(ref[e].value, 0),
                  util::Fmt(aggregates[e][0], 1),
                  util::Fmt(aggregates[e][1], 1),
                  util::Fmt(aggregates[e][2], 1),
                  util::Fmt(aggregates[e][3], 1)});
  }
  table.Print();
  std::printf(
      "\nExpected shape: population tracks the paper's trajectory; the\n"
      "aggregate grows with the population and saturates; WOLT-S leads.\n");
  bench::PrintFooter();
  return 0;
}
