// Chaos soak harness — the robustness experiment for the §V-A control
// plane. Two parts:
//
//   1. Soak: N seeded mixed-fault scenarios (lossy/corrupting/reordering
//      wire + extender crashes, flaps and capacity drift + mid-run
//      departures) through the full client/probe/controller loop. Reports
//      how hard the fault universe hit and whether every degradation
//      invariant held (no escape, id consistency, aggregate >= the
//      evacuate-dead-extenders baseline, bounded churn, reconvergence).
//
//   2. Kill-the-busiest recovery: the RunFailureTrials experiment — how
//      much throughput each policy wins back after the busiest extenders'
//      backhauls die (WOLT evacuates; Greedy/RSSI strand their users).
//
//   $ ./bench_chaos_soak [num_scenarios] [threads]   (default 100, 1)
//
// Scenarios run on the work-stealing thread pool; each is seeded from its
// own index, so the results — and every number below — are identical for
// any thread count.
#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "bench_util.h"
#include "core/greedy.h"
#include "core/rssi.h"
#include "core/wolt.h"
#include "fault/chaos.h"
#include "sim/runner.h"
#include "util/rng.h"
#include "util/table.h"

namespace {
std::atomic<bool> g_cancel{false};
}  // namespace

int main(int argc, char** argv) {
  using namespace wolt;
  int num_scenarios = 100;
  int threads = 1;
  if (argc > 1) {
    const int n = std::atoi(argv[1]);
    if (n > 0) num_scenarios = n;
  }
  if (argc > 2) {
    const int t = std::atoi(argv[2]);
    if (t > 0) threads = t;
  }
  bench::CancelOnSignal::Install(&g_cancel);

  bench::PrintHeader(
      "Chaos soak — control-plane resilience under mixed faults",
      "Seeded scenarios: lossy wire (loss/dup/corrupt/reorder) + extender\n"
      "crash/flap/drift + mid-run departures; warmup -> faults -> settle.");

  const fault::ChaosParams params = fault::DefaultChaosParams();
  const auto results =
      fault::RunChaosSoakParallel(params, /*base_seed=*/1, num_scenarios,
                                  threads, &g_cancel);
  if (bench::CancelOnSignal::Raised()) {
    std::fprintf(stderr,
                 "\ninterrupted (signal %d): soak cancelled after draining "
                 "in-flight scenarios; rerun to get full results (scenarios "
                 "are cheap and purely seed-derived, so there is nothing to "
                 "resume)\n",
                 bench::CancelOnSignal::SignalNumber());
    return bench::CancelOnSignal::ExitCode();
  }

  int completed = 0, ids_ok = 0, match_ok = 0, margin_ok = 0, quiesced = 0;
  double worst_margin = 0.0;
  std::size_t lost = 0, corrupted = 0, crashes = 0, flaps = 0, drifts = 0;
  std::size_t retries = 0, given_up = 0, evictions = 0, departures = 0;
  std::size_t rejects = 0, moves = 0;
  double prefault = 0.0, final_agg = 0.0;
  for (const auto& r : results) {
    completed += r.completed && r.error.empty();
    ids_ok += r.ids_consistent;
    match_ok += r.clients_match_controller;
    margin_ok += r.aggregate_ge_evacuation;
    quiesced += r.quiesced;
    worst_margin = std::min(worst_margin, r.worst_margin);
    lost += r.wire_stats.lost;
    corrupted += r.wire_stats.corrupted;
    crashes += r.health_stats.crashes;
    flaps += r.health_stats.flaps;
    drifts += r.health_stats.drifts;
    retries += r.retries_sent;
    given_up += r.directives_given_up;
    evictions += r.evictions;
    departures += r.departures;
    rejects += r.decode_rejects + r.status_rejects;
    moves += r.total_reassignments;
    prefault += r.prefault_aggregate / static_cast<double>(results.size());
    final_agg += r.final_aggregate / static_cast<double>(results.size());
  }

  const int n = static_cast<int>(results.size());
  util::Table inv({"invariant", "passed", "of"});
  inv.AddRow({"completed (no exception escaped)", std::to_string(completed),
              std::to_string(n)});
  inv.AddRow({"controller ids == surviving clients", std::to_string(ids_ok),
              std::to_string(n)});
  inv.AddRow({"believed == actual association", std::to_string(match_ok),
              std::to_string(n)});
  inv.AddRow({"reopt aggregate >= evacuation baseline",
              std::to_string(margin_ok), std::to_string(n)});
  inv.AddRow({"reconverged + quiesced after faults", std::to_string(quiesced),
              std::to_string(n)});
  inv.Print();

  std::printf("\nfault volume across %d scenarios:\n", n);
  util::Table vol({"metric", "total"});
  vol.AddRow({"wire messages lost", std::to_string(lost)});
  vol.AddRow({"wire messages corrupted", std::to_string(corrupted)});
  vol.AddRow({"backhaul crashes", std::to_string(crashes)});
  vol.AddRow({"backhaul flaps", std::to_string(flaps)});
  vol.AddRow({"capacity drifts", std::to_string(drifts)});
  vol.AddRow({"mid-run departures", std::to_string(departures)});
  vol.AddRow({"messages rejected (decode+status)", std::to_string(rejects)});
  vol.AddRow({"directive retries sent", std::to_string(retries)});
  vol.AddRow({"directives given up", std::to_string(given_up)});
  vol.AddRow({"ghost users evicted", std::to_string(evictions)});
  vol.AddRow({"total reassignments", std::to_string(moves)});
  vol.Print();
  std::printf(
      "\nworst reopt-vs-evacuation margin: %.6f Mbit/s (>= 0 required)\n"
      "mean ground-truth aggregate: %.1f pre-fault -> %.1f post-settle\n",
      worst_margin, prefault, final_agg);

  // --- Part 2: kill-the-busiest recovery ---------------------------------
  std::printf(
      "\nRecovery after killing the 2 busiest extenders (15 extenders,\n"
      "36 users, 20 topologies; recovery = re-associated / healthy):\n");
  core::WoltPolicy wolt;
  core::WoltOptions so;
  so.subset_search = true;
  core::WoltPolicy wolts(so);
  core::GreedyPolicy greedy;
  core::RssiPolicy rssi;
  std::vector<core::AssociationPolicy*> policies = {&wolt, &wolts, &greedy,
                                                    &rssi};
  const sim::ScenarioGenerator gen(bench::EnterpriseParams(36));
  util::Rng rng(77);
  const auto recovery =
      sim::RunFailureTrials(gen, policies, /*num_trials=*/20,
                            /*kill_count=*/2, rng);
  util::Table rec({"policy", "healthy_mbps", "degraded_mbps", "recovered_mbps",
                   "recovery", "stranded", "moves"});
  for (const auto& pr : recovery) {
    double healthy = 0, degraded = 0, recovered = 0, stranded = 0, mv = 0;
    for (const auto& t : pr.trials) {
      healthy += t.healthy_mbps / static_cast<double>(pr.trials.size());
      degraded += t.degraded_mbps / static_cast<double>(pr.trials.size());
      recovered += t.recovered_mbps / static_cast<double>(pr.trials.size());
      stranded += static_cast<double>(t.stranded_users) /
                  static_cast<double>(pr.trials.size());
      mv += static_cast<double>(t.reassignments) /
            static_cast<double>(pr.trials.size());
    }
    rec.AddRow({pr.policy, util::Fmt(healthy, 1), util::Fmt(degraded, 1),
                util::Fmt(recovered, 1), util::Fmt(pr.MeanRecoveryRatio(), 3),
                util::Fmt(stranded, 1), util::Fmt(mv, 1)});
  }
  rec.Print();
  std::printf(
      "\nExpected shape: every invariant passes; WOLT variants recover most\n"
      "of the healthy aggregate by evacuating dead extenders, while\n"
      "Greedy/RSSI never move existing users and strand theirs.\n");

  const bool ok = completed == n && ids_ok == n && match_ok == n &&
                  margin_ok == n && quiesced == n;
  bench::PrintFooter();
  return ok ? 0 : 1;
}
