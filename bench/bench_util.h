// Shared helpers for the figure-reproduction benches. Every bench prints a
// header naming the paper artefact it regenerates, a table whose rows mirror
// the series the paper reports (paper value next to measured value), and
// optionally dumps raw series as CSV next to the binary.
#pragma once

#include <cstdio>
#include <string>
#include <vector>

#include "model/evaluator.h"
#include "sim/runner.h"
#include "sim/scenario.h"
#include "testbed/lab.h"
#include "util/table.h"

namespace wolt::bench {

inline void PrintHeader(const std::string& artefact,
                        const std::string& description) {
  std::printf("==============================================================\n");
  std::printf("%s\n", artefact.c_str());
  std::printf("%s\n", description.c_str());
  std::printf("==============================================================\n");
}

inline void PrintFooter() { std::printf("\n"); }

// The paper's §V-A enterprise simulation scenario: 100 m x 100 m, 15
// extenders, calibrated PLC capacities.
inline sim::ScenarioParams EnterpriseParams(std::size_t num_users = 36) {
  sim::ScenarioParams p;
  p.num_extenders = 15;
  p.num_users = num_users;
  return p;
}

// Mean-aggregate summary table over aligned policy trials.
inline void PrintPolicySummary(const std::vector<sim::PolicyTrials>& results,
                               const std::string& value_header = "mean_aggregate_mbps") {
  util::Table table({"policy", value_header, "mean_jain", "trials"});
  for (const auto& pr : results) {
    table.AddRow({pr.policy, util::Fmt(pr.MeanAggregate(), 1),
                  util::Fmt(pr.MeanJain(), 3),
                  std::to_string(pr.trials.size())});
  }
  table.Print();
}

}  // namespace wolt::bench
