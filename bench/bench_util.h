// Shared helpers for the figure-reproduction benches. Every bench prints a
// header naming the paper artefact it regenerates, a table whose rows mirror
// the series the paper reports (paper value next to measured value), and
// optionally dumps raw series as CSV next to the binary.
#pragma once

#include <signal.h>

#include <atomic>
#include <csignal>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "model/evaluator.h"
#include "obs/obs.h"
#include "obs/trace.h"
#include "sim/runner.h"
#include "sim/scenario.h"
#include "testbed/lab.h"
#include "util/fileio.h"
#include "util/table.h"

namespace wolt::bench {

// Minimal --name=value flag parser for the figure benches. Unknown flags
// abort with a message (a typo silently ignored would quietly change what a
// recorded run measured). Positional (non --) arguments are kept in order.
class Flags {
 public:
  Flags(int argc, char** argv, const std::vector<std::string>& known) {
    for (int i = 1; i < argc; ++i) {
      const std::string arg = argv[i];
      if (arg.rfind("--", 0) != 0) {
        positional_.push_back(arg);
        continue;
      }
      const std::size_t eq = arg.find('=');
      const std::string name = arg.substr(2, eq == std::string::npos
                                                 ? std::string::npos
                                                 : eq - 2);
      bool ok = false;
      for (const std::string& k : known) ok = ok || k == name;
      if (!ok) {
        std::fprintf(stderr, "unknown flag --%s\n", name.c_str());
        std::exit(2);
      }
      values_[name] = eq == std::string::npos ? "" : arg.substr(eq + 1);
    }
  }

  bool Has(const std::string& name) const { return values_.count(name) > 0; }

  std::string Str(const std::string& name, const std::string& def) const {
    const auto it = values_.find(name);
    return it == values_.end() ? def : it->second;
  }

  long long Int(const std::string& name, long long def) const {
    const auto it = values_.find(name);
    if (it == values_.end()) return def;
    return std::atoll(it->second.c_str());
  }

  std::uint64_t U64(const std::string& name, std::uint64_t def) const {
    const auto it = values_.find(name);
    if (it == values_.end()) return def;
    return std::strtoull(it->second.c_str(), nullptr, 10);
  }

  const std::vector<std::string>& positional() const { return positional_; }

 private:
  std::map<std::string, std::string> values_;
  std::vector<std::string> positional_;
};

// Observability session for bench binaries: --trace=out.json installs a
// process-global tracer (spans dumped as Chrome trace_event JSON on exit),
// --metrics=out.json installs a MetricsScope over an owned registry on the
// main thread (the instrumentation hooks feed it) and dumps the snapshot
// JSON plus a summary table on exit. Construct one at the top of main()
// BEFORE benchmark::Initialize or Flags (both flags are recognized here and
// can be stripped with Strip() for parsers that reject unknown flags).
class ObsSession {
 public:
  ObsSession(int argc, char** argv) {
    for (int i = 1; i < argc; ++i) {
      const std::string arg = argv[i];
      if (arg.rfind("--trace=", 0) == 0) {
        trace_path_ = arg.substr(8);
      } else if (arg.rfind("--metrics=", 0) == 0) {
        metrics_path_ = arg.substr(10);
      }
    }
    if (!trace_path_.empty()) {
      tracer_.emplace();
      obs::Tracer::SetGlobal(&*tracer_);
    }
    if (!metrics_path_.empty()) {
      scope_.emplace(registry_);
    }
  }

  ~ObsSession() {
    scope_.reset();
    if (!metrics_path_.empty()) {
      obs::MetricsSnapshot snap = registry_.Snapshot();
      snap.Merge(extra_);
      wolt::io::CountWriteError(util::WriteFileAtomic(metrics_path_, snap.Json()),
                                metrics_path_);
      std::printf("\nmetrics -> %s\n%s", metrics_path_.c_str(),
                  snap.TableString().c_str());
    }
    if (tracer_) {
      obs::Tracer::SetGlobal(nullptr);
      tracer_->WriteChromeTrace(trace_path_);
      std::printf("\ntrace -> %s (%zu events)\n%s", trace_path_.c_str(),
                  tracer_->NumEvents(),
                  tracer_->SummaryTableString().c_str());
    }
  }

  ObsSession(const ObsSession&) = delete;
  ObsSession& operator=(const ObsSession&) = delete;

  // Removes --trace=/--metrics= from argv (in place) so flag parsers that
  // reject unknown flags (google-benchmark) never see them.
  static void Strip(int& argc, char** argv) {
    int w = 1;
    for (int i = 1; i < argc; ++i) {
      const std::string arg = argv[i];
      if (arg.rfind("--trace=", 0) == 0 || arg.rfind("--metrics=", 0) == 0) {
        continue;
      }
      argv[w++] = argv[i];
    }
    argc = w;
  }

  const obs::MetricsRegistry& registry() const { return registry_; }

  bool metrics_enabled() const { return !metrics_path_.empty(); }

  // For benches whose work runs inside the sweep engine: worker threads
  // never see this session's main-thread scope, so the bench must run the
  // engine with collect_metrics=true and fold the engine's merged snapshot
  // in here; it is written alongside the session's own at exit.
  void Merge(const obs::MetricsSnapshot& snap) { extra_.Merge(snap); }

 private:
  std::string trace_path_;
  std::string metrics_path_;
  obs::MetricsRegistry registry_;
  obs::MetricsSnapshot extra_;
  std::optional<obs::Tracer> tracer_;
  std::optional<obs::ScopedMetrics> scope_;
};

// SIGINT/SIGTERM -> cooperative cancellation for long-running bench CLIs.
// Install() registers async-signal-safe handlers that set a lock-free flag
// and flip the provided cancel token; a sweep/soak observing the token
// drains its in-flight tasks, flushes its journal, and returns with
// cancelled=true, after which the bench should report resumability and
// exit with code 128+signo (the shell convention for death-by-signal).
class CancelOnSignal {
 public:
  // `cancel` must outlive the process's last signal (file-scope or
  // main()-scope object); null is allowed when only `hook` is used. `hook`
  // runs inside the handler, so it must be async-signal-safe — a relaxed
  // atomic store (e.g. SweepEngine::Cancel through a file-scope pointer)
  // qualifies. Re-installation replaces both. Capturing lambdas do not
  // convert to the hook type by design: captures would not be signal-safe.
  //
  // The handler itself is async-signal-safe by construction: one
  // sig_atomic_t store, one lock-free atomic store, one indirect call —
  // no stdio, no allocation, no locks, no function-local static guards.
  // Installed via sigaction (defined behavior in multithreaded programs,
  // unlike std::signal) with SA_RESTART so slow syscalls on other threads
  // resume instead of surfacing spurious EINTR.
  static void Install(std::atomic<bool>* cancel, void (*hook)() = nullptr) {
    // Written before the handler is registered, read-only afterwards — the
    // handler can never observe a half-installed state.
    token_ = cancel;
    hook_ = hook;
    struct sigaction sa;
    std::memset(&sa, 0, sizeof sa);
    sa.sa_handler = &CancelOnSignal::Handle;
    sigemptyset(&sa.sa_mask);
    sa.sa_flags = SA_RESTART;
    sigaction(SIGINT, &sa, nullptr);
    sigaction(SIGTERM, &sa, nullptr);
  }

  static bool Raised() { return signo_ != 0; }
  static int SignalNumber() { return static_cast<int>(signo_); }
  static int ExitCode() { return 128 + SignalNumber(); }

 private:
  static_assert(std::atomic<bool>::is_always_lock_free,
                "the cancel token store must be async-signal-safe");

  static void Handle(int sig) {
    signo_ = sig;
    if (std::atomic<bool>* c = token_) {
      c->store(true, std::memory_order_relaxed);
    }
    if (void (*h)() = hook_) h();
  }

  // The flag the run loop polls. volatile sig_atomic_t: the only type the
  // language guarantees a handler may write while interrupted code reads.
  static inline volatile std::sig_atomic_t signo_ = 0;
  static inline std::atomic<bool>* token_ = nullptr;
  static inline void (*hook_)() = nullptr;
};

inline void PrintHeader(const std::string& artefact,
                        const std::string& description) {
  std::printf("==============================================================\n");
  std::printf("%s\n", artefact.c_str());
  std::printf("%s\n", description.c_str());
  std::printf("==============================================================\n");
}

inline void PrintFooter() { std::printf("\n"); }

// The paper's §V-A enterprise simulation scenario: 100 m x 100 m, 15
// extenders, calibrated PLC capacities.
inline sim::ScenarioParams EnterpriseParams(std::size_t num_users = 36) {
  sim::ScenarioParams p;
  p.num_extenders = 15;
  p.num_users = num_users;
  return p;
}

// Mean-aggregate summary table over aligned policy trials.
inline void PrintPolicySummary(const std::vector<sim::PolicyTrials>& results,
                               const std::string& value_header = "mean_aggregate_mbps") {
  util::Table table({"policy", value_header, "mean_jain", "trials"});
  for (const auto& pr : results) {
    table.AddRow({pr.policy, util::Fmt(pr.MeanAggregate(), 1),
                  util::Fmt(pr.MeanJain(), 3),
                  std::to_string(pr.trials.size())});
  }
  table.Print();
}

}  // namespace wolt::bench
