file(REMOVE_RECURSE
  "libwolt.a"
)
