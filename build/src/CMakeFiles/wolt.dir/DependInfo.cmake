
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/assign/brute_force.cc" "src/CMakeFiles/wolt.dir/assign/brute_force.cc.o" "gcc" "src/CMakeFiles/wolt.dir/assign/brute_force.cc.o.d"
  "/root/repo/src/assign/hungarian.cc" "src/CMakeFiles/wolt.dir/assign/hungarian.cc.o" "gcc" "src/CMakeFiles/wolt.dir/assign/hungarian.cc.o.d"
  "/root/repo/src/assign/local_search.cc" "src/CMakeFiles/wolt.dir/assign/local_search.cc.o" "gcc" "src/CMakeFiles/wolt.dir/assign/local_search.cc.o.d"
  "/root/repo/src/assign/nlp.cc" "src/CMakeFiles/wolt.dir/assign/nlp.cc.o" "gcc" "src/CMakeFiles/wolt.dir/assign/nlp.cc.o.d"
  "/root/repo/src/core/controller.cc" "src/CMakeFiles/wolt.dir/core/controller.cc.o" "gcc" "src/CMakeFiles/wolt.dir/core/controller.cc.o.d"
  "/root/repo/src/core/greedy.cc" "src/CMakeFiles/wolt.dir/core/greedy.cc.o" "gcc" "src/CMakeFiles/wolt.dir/core/greedy.cc.o.d"
  "/root/repo/src/core/optimal.cc" "src/CMakeFiles/wolt.dir/core/optimal.cc.o" "gcc" "src/CMakeFiles/wolt.dir/core/optimal.cc.o.d"
  "/root/repo/src/core/policy.cc" "src/CMakeFiles/wolt.dir/core/policy.cc.o" "gcc" "src/CMakeFiles/wolt.dir/core/policy.cc.o.d"
  "/root/repo/src/core/rssi.cc" "src/CMakeFiles/wolt.dir/core/rssi.cc.o" "gcc" "src/CMakeFiles/wolt.dir/core/rssi.cc.o.d"
  "/root/repo/src/core/wolt.cc" "src/CMakeFiles/wolt.dir/core/wolt.cc.o" "gcc" "src/CMakeFiles/wolt.dir/core/wolt.cc.o.d"
  "/root/repo/src/model/assignment.cc" "src/CMakeFiles/wolt.dir/model/assignment.cc.o" "gcc" "src/CMakeFiles/wolt.dir/model/assignment.cc.o.d"
  "/root/repo/src/model/evaluator.cc" "src/CMakeFiles/wolt.dir/model/evaluator.cc.o" "gcc" "src/CMakeFiles/wolt.dir/model/evaluator.cc.o.d"
  "/root/repo/src/model/io.cc" "src/CMakeFiles/wolt.dir/model/io.cc.o" "gcc" "src/CMakeFiles/wolt.dir/model/io.cc.o.d"
  "/root/repo/src/model/network.cc" "src/CMakeFiles/wolt.dir/model/network.cc.o" "gcc" "src/CMakeFiles/wolt.dir/model/network.cc.o.d"
  "/root/repo/src/plc/capacity.cc" "src/CMakeFiles/wolt.dir/plc/capacity.cc.o" "gcc" "src/CMakeFiles/wolt.dir/plc/capacity.cc.o.d"
  "/root/repo/src/plc/channel.cc" "src/CMakeFiles/wolt.dir/plc/channel.cc.o" "gcc" "src/CMakeFiles/wolt.dir/plc/channel.cc.o.d"
  "/root/repo/src/plc/csma1901.cc" "src/CMakeFiles/wolt.dir/plc/csma1901.cc.o" "gcc" "src/CMakeFiles/wolt.dir/plc/csma1901.cc.o.d"
  "/root/repo/src/plc/tdma.cc" "src/CMakeFiles/wolt.dir/plc/tdma.cc.o" "gcc" "src/CMakeFiles/wolt.dir/plc/tdma.cc.o.d"
  "/root/repo/src/plc/timeshare.cc" "src/CMakeFiles/wolt.dir/plc/timeshare.cc.o" "gcc" "src/CMakeFiles/wolt.dir/plc/timeshare.cc.o.d"
  "/root/repo/src/sim/des.cc" "src/CMakeFiles/wolt.dir/sim/des.cc.o" "gcc" "src/CMakeFiles/wolt.dir/sim/des.cc.o.d"
  "/root/repo/src/sim/dynamics.cc" "src/CMakeFiles/wolt.dir/sim/dynamics.cc.o" "gcc" "src/CMakeFiles/wolt.dir/sim/dynamics.cc.o.d"
  "/root/repo/src/sim/hifi.cc" "src/CMakeFiles/wolt.dir/sim/hifi.cc.o" "gcc" "src/CMakeFiles/wolt.dir/sim/hifi.cc.o.d"
  "/root/repo/src/sim/runner.cc" "src/CMakeFiles/wolt.dir/sim/runner.cc.o" "gcc" "src/CMakeFiles/wolt.dir/sim/runner.cc.o.d"
  "/root/repo/src/sim/scenario.cc" "src/CMakeFiles/wolt.dir/sim/scenario.cc.o" "gcc" "src/CMakeFiles/wolt.dir/sim/scenario.cc.o.d"
  "/root/repo/src/testbed/lab.cc" "src/CMakeFiles/wolt.dir/testbed/lab.cc.o" "gcc" "src/CMakeFiles/wolt.dir/testbed/lab.cc.o.d"
  "/root/repo/src/testbed/traces.cc" "src/CMakeFiles/wolt.dir/testbed/traces.cc.o" "gcc" "src/CMakeFiles/wolt.dir/testbed/traces.cc.o.d"
  "/root/repo/src/util/csv.cc" "src/CMakeFiles/wolt.dir/util/csv.cc.o" "gcc" "src/CMakeFiles/wolt.dir/util/csv.cc.o.d"
  "/root/repo/src/util/rng.cc" "src/CMakeFiles/wolt.dir/util/rng.cc.o" "gcc" "src/CMakeFiles/wolt.dir/util/rng.cc.o.d"
  "/root/repo/src/util/stats.cc" "src/CMakeFiles/wolt.dir/util/stats.cc.o" "gcc" "src/CMakeFiles/wolt.dir/util/stats.cc.o.d"
  "/root/repo/src/util/table.cc" "src/CMakeFiles/wolt.dir/util/table.cc.o" "gcc" "src/CMakeFiles/wolt.dir/util/table.cc.o.d"
  "/root/repo/src/wifi/channels.cc" "src/CMakeFiles/wolt.dir/wifi/channels.cc.o" "gcc" "src/CMakeFiles/wolt.dir/wifi/channels.cc.o.d"
  "/root/repo/src/wifi/dcf_sim.cc" "src/CMakeFiles/wolt.dir/wifi/dcf_sim.cc.o" "gcc" "src/CMakeFiles/wolt.dir/wifi/dcf_sim.cc.o.d"
  "/root/repo/src/wifi/mcs.cc" "src/CMakeFiles/wolt.dir/wifi/mcs.cc.o" "gcc" "src/CMakeFiles/wolt.dir/wifi/mcs.cc.o.d"
  "/root/repo/src/wifi/pathloss.cc" "src/CMakeFiles/wolt.dir/wifi/pathloss.cc.o" "gcc" "src/CMakeFiles/wolt.dir/wifi/pathloss.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
