# Empty dependencies file for wolt.
# This may be replaced when dependencies are built.
