# Empty dependencies file for bench_fig4b_per_user_effects.
# This may be replaced when dependencies are built.
