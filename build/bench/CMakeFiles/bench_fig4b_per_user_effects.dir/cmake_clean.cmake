file(REMOVE_RECURSE
  "CMakeFiles/bench_fig4b_per_user_effects.dir/bench_fig4b_per_user_effects.cc.o"
  "CMakeFiles/bench_fig4b_per_user_effects.dir/bench_fig4b_per_user_effects.cc.o.d"
  "bench_fig4b_per_user_effects"
  "bench_fig4b_per_user_effects.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig4b_per_user_effects.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
