# Empty dependencies file for bench_fig6a_throughput_cdf.
# This may be replaced when dependencies are built.
