# Empty dependencies file for bench_fig5_user_extremes.
# This may be replaced when dependencies are built.
