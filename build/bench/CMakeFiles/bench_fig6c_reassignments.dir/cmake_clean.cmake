file(REMOVE_RECURSE
  "CMakeFiles/bench_fig6c_reassignments.dir/bench_fig6c_reassignments.cc.o"
  "CMakeFiles/bench_fig6c_reassignments.dir/bench_fig6c_reassignments.cc.o.d"
  "bench_fig6c_reassignments"
  "bench_fig6c_reassignments.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig6c_reassignments.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
