# Empty dependencies file for bench_fig6c_reassignments.
# This may be replaced when dependencies are built.
