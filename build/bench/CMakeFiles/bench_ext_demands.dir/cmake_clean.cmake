file(REMOVE_RECURSE
  "CMakeFiles/bench_ext_demands.dir/bench_ext_demands.cc.o"
  "CMakeFiles/bench_ext_demands.dir/bench_ext_demands.cc.o.d"
  "bench_ext_demands"
  "bench_ext_demands.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ext_demands.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
