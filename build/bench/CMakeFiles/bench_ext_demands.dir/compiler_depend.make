# Empty compiler generated dependencies file for bench_ext_demands.
# This may be replaced when dependencies are built.
