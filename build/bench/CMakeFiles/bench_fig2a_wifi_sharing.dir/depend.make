# Empty dependencies file for bench_fig2a_wifi_sharing.
# This may be replaced when dependencies are built.
