# Empty dependencies file for bench_fig2b_plc_isolation.
# This may be replaced when dependencies are built.
