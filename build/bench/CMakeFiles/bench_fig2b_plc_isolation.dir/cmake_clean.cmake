file(REMOVE_RECURSE
  "CMakeFiles/bench_fig2b_plc_isolation.dir/bench_fig2b_plc_isolation.cc.o"
  "CMakeFiles/bench_fig2b_plc_isolation.dir/bench_fig2b_plc_isolation.cc.o.d"
  "bench_fig2b_plc_isolation"
  "bench_fig2b_plc_isolation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig2b_plc_isolation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
