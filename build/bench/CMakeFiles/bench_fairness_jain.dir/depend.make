# Empty dependencies file for bench_fairness_jain.
# This may be replaced when dependencies are built.
