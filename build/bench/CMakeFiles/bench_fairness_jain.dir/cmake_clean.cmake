file(REMOVE_RECURSE
  "CMakeFiles/bench_fairness_jain.dir/bench_fairness_jain.cc.o"
  "CMakeFiles/bench_fairness_jain.dir/bench_fairness_jain.cc.o.d"
  "bench_fairness_jain"
  "bench_fairness_jain.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fairness_jain.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
