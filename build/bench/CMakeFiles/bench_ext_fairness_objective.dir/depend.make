# Empty dependencies file for bench_ext_fairness_objective.
# This may be replaced when dependencies are built.
