file(REMOVE_RECURSE
  "CMakeFiles/bench_ext_fairness_objective.dir/bench_ext_fairness_objective.cc.o"
  "CMakeFiles/bench_ext_fairness_objective.dir/bench_ext_fairness_objective.cc.o.d"
  "bench_ext_fairness_objective"
  "bench_ext_fairness_objective.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ext_fairness_objective.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
