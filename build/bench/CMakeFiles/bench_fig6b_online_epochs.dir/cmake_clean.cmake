file(REMOVE_RECURSE
  "CMakeFiles/bench_fig6b_online_epochs.dir/bench_fig6b_online_epochs.cc.o"
  "CMakeFiles/bench_fig6b_online_epochs.dir/bench_fig6b_online_epochs.cc.o.d"
  "bench_fig6b_online_epochs"
  "bench_fig6b_online_epochs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig6b_online_epochs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
