# Empty compiler generated dependencies file for bench_fig6b_online_epochs.
# This may be replaced when dependencies are built.
