# Empty dependencies file for bench_fig4a_testbed_aggregate.
# This may be replaced when dependencies are built.
