# Empty dependencies file for bench_fig2c_plc_sharing.
# This may be replaced when dependencies are built.
