# Empty compiler generated dependencies file for bench_fig4c_sim_fidelity.
# This may be replaced when dependencies are built.
