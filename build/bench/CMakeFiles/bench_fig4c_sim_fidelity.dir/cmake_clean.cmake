file(REMOVE_RECURSE
  "CMakeFiles/bench_fig4c_sim_fidelity.dir/bench_fig4c_sim_fidelity.cc.o"
  "CMakeFiles/bench_fig4c_sim_fidelity.dir/bench_fig4c_sim_fidelity.cc.o.d"
  "bench_fig4c_sim_fidelity"
  "bench_fig4c_sim_fidelity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig4c_sim_fidelity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
