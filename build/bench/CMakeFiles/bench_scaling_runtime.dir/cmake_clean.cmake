file(REMOVE_RECURSE
  "CMakeFiles/bench_scaling_runtime.dir/bench_scaling_runtime.cc.o"
  "CMakeFiles/bench_scaling_runtime.dir/bench_scaling_runtime.cc.o.d"
  "bench_scaling_runtime"
  "bench_scaling_runtime.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_scaling_runtime.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
