file(REMOVE_RECURSE
  "CMakeFiles/csma1901_test.dir/csma1901_test.cc.o"
  "CMakeFiles/csma1901_test.dir/csma1901_test.cc.o.d"
  "csma1901_test"
  "csma1901_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/csma1901_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
