# Empty compiler generated dependencies file for csma1901_test.
# This may be replaced when dependencies are built.
