file(REMOVE_RECURSE
  "CMakeFiles/demands_test.dir/demands_test.cc.o"
  "CMakeFiles/demands_test.dir/demands_test.cc.o.d"
  "demands_test"
  "demands_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/demands_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
