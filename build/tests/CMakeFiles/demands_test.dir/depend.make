# Empty dependencies file for demands_test.
# This may be replaced when dependencies are built.
