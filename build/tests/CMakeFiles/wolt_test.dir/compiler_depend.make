# Empty compiler generated dependencies file for wolt_test.
# This may be replaced when dependencies are built.
