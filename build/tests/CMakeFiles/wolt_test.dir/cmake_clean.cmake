file(REMOVE_RECURSE
  "CMakeFiles/wolt_test.dir/wolt_test.cc.o"
  "CMakeFiles/wolt_test.dir/wolt_test.cc.o.d"
  "wolt_test"
  "wolt_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wolt_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
