# Empty dependencies file for pathloss_mcs_test.
# This may be replaced when dependencies are built.
