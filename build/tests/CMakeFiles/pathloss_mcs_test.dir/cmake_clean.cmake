file(REMOVE_RECURSE
  "CMakeFiles/pathloss_mcs_test.dir/pathloss_mcs_test.cc.o"
  "CMakeFiles/pathloss_mcs_test.dir/pathloss_mcs_test.cc.o.d"
  "pathloss_mcs_test"
  "pathloss_mcs_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pathloss_mcs_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
