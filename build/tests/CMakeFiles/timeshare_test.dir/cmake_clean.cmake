file(REMOVE_RECURSE
  "CMakeFiles/timeshare_test.dir/timeshare_test.cc.o"
  "CMakeFiles/timeshare_test.dir/timeshare_test.cc.o.d"
  "timeshare_test"
  "timeshare_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/timeshare_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
