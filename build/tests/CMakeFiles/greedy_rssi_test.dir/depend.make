# Empty dependencies file for greedy_rssi_test.
# This may be replaced when dependencies are built.
