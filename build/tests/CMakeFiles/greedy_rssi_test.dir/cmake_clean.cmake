file(REMOVE_RECURSE
  "CMakeFiles/greedy_rssi_test.dir/greedy_rssi_test.cc.o"
  "CMakeFiles/greedy_rssi_test.dir/greedy_rssi_test.cc.o.d"
  "greedy_rssi_test"
  "greedy_rssi_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/greedy_rssi_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
