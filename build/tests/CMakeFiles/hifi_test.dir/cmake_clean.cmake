file(REMOVE_RECURSE
  "CMakeFiles/hifi_test.dir/hifi_test.cc.o"
  "CMakeFiles/hifi_test.dir/hifi_test.cc.o.d"
  "hifi_test"
  "hifi_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hifi_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
