file(REMOVE_RECURSE
  "CMakeFiles/dcf_sim_test.dir/dcf_sim_test.cc.o"
  "CMakeFiles/dcf_sim_test.dir/dcf_sim_test.cc.o.d"
  "dcf_sim_test"
  "dcf_sim_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dcf_sim_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
