# Empty compiler generated dependencies file for dcf_sim_test.
# This may be replaced when dependencies are built.
