file(REMOVE_RECURSE
  "CMakeFiles/lab_test.dir/lab_test.cc.o"
  "CMakeFiles/lab_test.dir/lab_test.cc.o.d"
  "lab_test"
  "lab_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lab_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
