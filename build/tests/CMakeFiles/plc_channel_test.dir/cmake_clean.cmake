file(REMOVE_RECURSE
  "CMakeFiles/plc_channel_test.dir/plc_channel_test.cc.o"
  "CMakeFiles/plc_channel_test.dir/plc_channel_test.cc.o.d"
  "plc_channel_test"
  "plc_channel_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/plc_channel_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
