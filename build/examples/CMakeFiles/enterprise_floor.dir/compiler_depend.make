# Empty compiler generated dependencies file for enterprise_floor.
# This may be replaced when dependencies are built.
