file(REMOVE_RECURSE
  "CMakeFiles/enterprise_floor.dir/enterprise_floor.cpp.o"
  "CMakeFiles/enterprise_floor.dir/enterprise_floor.cpp.o.d"
  "enterprise_floor"
  "enterprise_floor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/enterprise_floor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
