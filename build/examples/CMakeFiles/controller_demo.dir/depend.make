# Empty dependencies file for controller_demo.
# This may be replaced when dependencies are built.
