file(REMOVE_RECURSE
  "CMakeFiles/controller_demo.dir/controller_demo.cpp.o"
  "CMakeFiles/controller_demo.dir/controller_demo.cpp.o.d"
  "controller_demo"
  "controller_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/controller_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
