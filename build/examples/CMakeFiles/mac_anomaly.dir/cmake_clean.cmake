file(REMOVE_RECURSE
  "CMakeFiles/mac_anomaly.dir/mac_anomaly.cpp.o"
  "CMakeFiles/mac_anomaly.dir/mac_anomaly.cpp.o.d"
  "mac_anomaly"
  "mac_anomaly.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mac_anomaly.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
