# Empty dependencies file for mac_anomaly.
# This may be replaced when dependencies are built.
