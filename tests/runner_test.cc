#include "sim/runner.h"

#include <gtest/gtest.h>

#include <stdexcept>

#include "core/greedy.h"
#include "core/rssi.h"
#include "core/wolt.h"
#include "testbed/lab.h"

namespace wolt::sim {
namespace {

ScenarioGenerator SmallScenario(std::size_t users = 12) {
  ScenarioParams p;
  p.num_extenders = 5;
  p.num_users = users;
  return ScenarioGenerator(p);
}

TEST(RunnerTest, RejectsEmptyPolicyList) {
  util::Rng rng(1);
  EXPECT_THROW(RunStaticTrials(SmallScenario(), {}, 3, rng),
               std::invalid_argument);
}

TEST(RunnerTest, ProducesOneRecordPerTrialPerPolicy) {
  core::WoltPolicy wolt;
  core::RssiPolicy rssi;
  std::vector<core::AssociationPolicy*> policies = {&wolt, &rssi};
  util::Rng rng(2);
  const auto results = RunStaticTrials(SmallScenario(), policies, 7, rng);
  ASSERT_EQ(results.size(), 2u);
  EXPECT_EQ(results[0].policy, "WOLT");
  EXPECT_EQ(results[1].policy, "RSSI");
  for (const auto& pr : results) {
    EXPECT_EQ(pr.trials.size(), 7u);
    for (const auto& t : pr.trials) {
      EXPECT_GT(t.aggregate_mbps, 0.0);
      EXPECT_EQ(t.user_throughput_mbps.size(), 12u);
    }
  }
}

TEST(RunnerTest, PoliciesSeeIdenticalNetworksPerTrial) {
  // RSSI twice must produce identical records (same networks, same policy).
  core::RssiPolicy rssi_a, rssi_b;
  std::vector<core::AssociationPolicy*> policies = {&rssi_a, &rssi_b};
  util::Rng rng(3);
  const auto results = RunStaticTrials(SmallScenario(), policies, 5, rng);
  for (std::size_t t = 0; t < 5; ++t) {
    EXPECT_DOUBLE_EQ(results[0].trials[t].aggregate_mbps,
                     results[1].trials[t].aggregate_mbps);
  }
}

TEST(RunnerTest, SummaryStatisticsAreConsistent) {
  core::WoltPolicy wolt;
  std::vector<core::AssociationPolicy*> policies = {&wolt};
  util::Rng rng(4);
  const auto results = RunStaticTrials(SmallScenario(), policies, 10, rng);
  const auto aggregates = results[0].Aggregates();
  EXPECT_EQ(aggregates.size(), 10u);
  double sum = 0.0;
  for (double a : aggregates) sum += a;
  EXPECT_NEAR(results[0].MeanAggregate(), sum / 10.0, 1e-9);
  EXPECT_GT(results[0].MeanJain(), 0.0);
  EXPECT_LE(results[0].MeanJain(), 1.0 + 1e-9);
}

TEST(RunnerTest, RunNetworkTrialsOnCaseStudy) {
  core::WoltPolicy wolt;
  core::GreedyPolicy greedy;
  core::RssiPolicy rssi;
  std::vector<core::AssociationPolicy*> policies = {&wolt, &greedy, &rssi};
  const std::vector<model::Network> nets = {testbed::CaseStudyNetwork()};
  const auto results = RunNetworkTrials(nets, policies);
  EXPECT_NEAR(results[0].trials[0].aggregate_mbps, 40.0, 1e-9);  // WOLT
  EXPECT_NEAR(results[1].trials[0].aggregate_mbps, 30.0, 1e-9);  // Greedy
  EXPECT_NEAR(results[2].trials[0].aggregate_mbps, 240.0 / 11.0, 1e-9);
}

TEST(CompareUsersTest, FractionsSumToOne) {
  core::WoltPolicy wolt;
  core::GreedyPolicy greedy;
  std::vector<core::AssociationPolicy*> policies = {&wolt, &greedy};
  util::Rng rng(5);
  const auto results = RunStaticTrials(SmallScenario(), policies, 8, rng);
  const WinLoss wl = CompareUsers(results[0], results[1]);
  EXPECT_NEAR(wl.better + wl.worse + wl.equal, 1.0, 1e-9);
  EXPECT_GE(wl.better, 0.0);
  EXPECT_GE(wl.worse, 0.0);
}

TEST(CompareUsersTest, IdenticalPoliciesAllEqual) {
  core::RssiPolicy a, b;
  std::vector<core::AssociationPolicy*> policies = {&a, &b};
  util::Rng rng(6);
  const auto results = RunStaticTrials(SmallScenario(), policies, 4, rng);
  const WinLoss wl = CompareUsers(results[0], results[1]);
  EXPECT_DOUBLE_EQ(wl.equal, 1.0);
}

TEST(CompareUsersTest, MismatchedTrialsThrow) {
  PolicyTrials a, b;
  a.trials.resize(2);
  b.trials.resize(3);
  EXPECT_THROW(CompareUsers(a, b), std::invalid_argument);
}

}  // namespace
}  // namespace wolt::sim
