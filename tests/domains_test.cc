// Tests for the multi-domain PLC extension: extenders on electrically
// separated power-line segments (phases, breaker panels) time-share only
// within their own domain.
#include <gtest/gtest.h>

#include "core/wolt.h"
#include "model/evaluator.h"
#include "model/io.h"
#include "testbed/lab.h"
#include "util/rng.h"

namespace wolt::model {
namespace {

// Two copies of the case-study network side by side.
Network TwoSegmentNetwork() {
  Network net(4, 4);
  for (int copy = 0; copy < 2; ++copy) {
    const std::size_t eo = static_cast<std::size_t>(copy) * 2;  // extender base
    const std::size_t uo = static_cast<std::size_t>(copy) * 2;  // user base
    net.SetPlcRate(eo + 0, 60.0);
    net.SetPlcRate(eo + 1, 20.0);
    net.SetWifiRate(uo + 0, eo + 0, 15.0);
    net.SetWifiRate(uo + 0, eo + 1, 10.0);
    net.SetWifiRate(uo + 1, eo + 0, 40.0);
    net.SetWifiRate(uo + 1, eo + 1, 20.0);
  }
  return net;
}

Assignment OptimalPerCopy() {
  Assignment a(4);
  a.Assign(0, 1);
  a.Assign(1, 0);
  a.Assign(2, 3);
  a.Assign(3, 2);
  return a;
}

TEST(PlcDomainTest, DefaultsToSingleDomain) {
  const Network net = testbed::CaseStudyNetwork();
  EXPECT_EQ(net.PlcDomain(0), 0);
  EXPECT_EQ(net.PlcDomain(1), 0);
}

TEST(PlcDomainTest, NegativeDomainRejected) {
  Network net(1, 1);
  EXPECT_THROW(net.SetPlcDomain(0, -1), std::invalid_argument);
}

TEST(PlcDomainTest, SeparateSegmentsDoNotContend) {
  // One shared medium: the two copies halve each other. Two segments:
  // each copy independently achieves its Fig. 3d optimum of 40.
  Network shared = TwoSegmentNetwork();
  Network split = TwoSegmentNetwork();
  split.SetPlcDomain(2, 1);
  split.SetPlcDomain(3, 1);
  const Assignment a = OptimalPerCopy();
  const Evaluator evaluator;
  const double shared_agg = evaluator.AggregateThroughput(shared, a);
  const double split_agg = evaluator.AggregateThroughput(split, a);
  EXPECT_NEAR(split_agg, 80.0, 1e-9);  // 2x the single-copy optimum
  EXPECT_LT(shared_agg, split_agg - 10.0);
}

TEST(PlcDomainTest, SplitExactlyDoublesTheSingleCopy) {
  Network split = TwoSegmentNetwork();
  split.SetPlcDomain(2, 1);
  split.SetPlcDomain(3, 1);
  const Evaluator evaluator;
  const EvalResult r = evaluator.Evaluate(split, OptimalPerCopy());
  // Per-extender results match the single-copy case study exactly.
  EXPECT_NEAR(r.extenders[0].end_to_end_mbps, 30.0, 1e-9);
  EXPECT_NEAR(r.extenders[1].end_to_end_mbps, 10.0, 1e-9);
  EXPECT_NEAR(r.extenders[2].end_to_end_mbps, 30.0, 1e-9);
  EXPECT_NEAR(r.extenders[3].end_to_end_mbps, 10.0, 1e-9);
  EXPECT_EQ(r.extenders[0].bottleneck, Bottleneck::kPlc);
}

TEST(PlcDomainTest, EqualAllCountsPerDomain) {
  Network split = TwoSegmentNetwork();
  split.SetPlcDomain(2, 1);
  split.SetPlcDomain(3, 1);
  EvalOptions opts;
  opts.plc_sharing = PlcSharing::kEqualAll;
  // Only user 1 assigned, on extender 0 (domain 0): its share is c/2 over
  // its own domain's two extenders, not c/4 over all four.
  Assignment a(4);
  a.Assign(1, 0);
  const EvalResult r = Evaluator(opts).Evaluate(split, a);
  EXPECT_NEAR(r.extenders[0].plc_throughput_mbps, 30.0, 1e-9);
}

TEST(PlcDomainTest, WoltExploitsExtraSegments) {
  // With two segments WOLT's Phase-I utility sees c_j/2 per domain (not
  // c_j/4) and the full pipeline reaches the doubled optimum.
  Network split = TwoSegmentNetwork();
  split.SetPlcDomain(2, 1);
  split.SetPlcDomain(3, 1);
  core::WoltPolicy wolt;
  const Assignment a = wolt.AssociateFresh(split);
  EXPECT_NEAR(Evaluator().AggregateThroughput(split, a), 80.0, 1e-9);
}

TEST(PlcDomainTest, DomainSurvivesSerialization) {
  Network split = TwoSegmentNetwork();
  split.SetPlcDomain(3, 2);
  const auto loaded = NetworkFromString(NetworkToString(split));
  ASSERT_TRUE(loaded.has_value());
  EXPECT_EQ(loaded->PlcDomain(0), 0);
  EXPECT_EQ(loaded->PlcDomain(3), 2);
}

TEST(PlcDomainTest, RandomSplitNeverReducesAggregate) {
  // Property: moving extenders onto separate segments (less contention)
  // can only help, for any fixed assignment.
  util::Rng rng(7);
  for (int trial = 0; trial < 20; ++trial) {
    Network net(8, 4);
    Assignment a(8);
    for (std::size_t j = 0; j < 4; ++j) {
      net.SetPlcRate(j, rng.Uniform(20.0, 160.0));
    }
    for (std::size_t i = 0; i < 8; ++i) {
      const std::size_t e = static_cast<std::size_t>(rng.UniformInt(0, 3));
      net.SetWifiRate(i, e, rng.Uniform(5.0, 65.0));
      a.Assign(i, e);
    }
    const double single = Evaluator().AggregateThroughput(net, a);
    Network split = net;
    for (std::size_t j = 0; j < 4; ++j) {
      split.SetPlcDomain(j, rng.UniformInt(0, 1));
    }
    const double multi = Evaluator().AggregateThroughput(split, a);
    EXPECT_GE(multi, single - 1e-9) << "trial=" << trial;
  }
}

}  // namespace
}  // namespace wolt::model
