// Differential battery over seeded small instances: on networks small
// enough to brute-force, the solver chain must obey a strict dominance
// order under every PLC sharing mode —
//
//   BruteForce (relaxed optimum)  >=  WOLT  >=  best(Greedy, RSSI)
//
// and the observability counters recorded while WOLT runs must satisfy the
// move-accounting identities the hook layer promises by construction
// (obs/obs.h): every generated candidate is either pruned or evaluated, and
// only evaluated candidates can be accepted.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <map>
#include <string>

#include "assign/brute_force.h"
#include "core/greedy.h"
#include "core/rssi.h"
#include "core/wolt.h"
#include "model/evaluator.h"
#include "obs/metrics.h"
#include "obs/obs.h"
#include "sim/scenario.h"
#include "util/rng.h"
#include "util/thread_pool.h"

namespace wolt {
namespace {

constexpr int kNumSeeds = 200;
constexpr double kTol = 1e-9;

// Instance shapes stay brute-forceable: <= 8 users, <= 4 extenders, and the
// relaxed search space (|A|+1)^|U| capped so the whole battery runs in
// seconds, not minutes.
struct Shape {
  std::size_t users;
  std::size_t extenders;
};

Shape ShapeForSeed(int seed) {
  Shape s;
  s.users = 2 + static_cast<std::size_t>(seed % 7);            // 2..8
  s.extenders = 2 + static_cast<std::size_t>((seed / 7) % 3);  // 2..4
  auto space = [](const Shape& sh) {
    std::uint64_t n = 1;
    for (std::size_t i = 0; i < sh.users; ++i) n *= sh.extenders + 1;
    return n;
  };
  while (space(s) > 60'000 && s.users > 2) --s.users;
  return s;
}

model::Network MakeNetwork(int seed, const Shape& shape) {
  sim::ScenarioParams p;
  // A dense floor so most users hear most extenders (interesting trade-offs
  // instead of forced assignments).
  p.width_m = 40.0;
  p.height_m = 40.0;
  p.num_users = shape.users;
  p.num_extenders = shape.extenders;
  sim::ScenarioGenerator gen(p);
  util::Rng rng(0x0b5e + static_cast<std::uint64_t>(seed) * 2654435761u);
  return gen.Generate(rng);
}

[[maybe_unused]] std::uint64_t CounterValue(const obs::MetricsSnapshot& snap,
                                            const std::string& name) {
  for (const auto& c : snap.counters) {
    if (c.name == name) return c.value;
  }
  return 0;
}

class SolverDifferentialTest
    : public ::testing::TestWithParam<model::PlcSharing> {};

TEST_P(SolverDifferentialTest, DominanceAndCounterInvariants) {
  const model::PlcSharing sharing = GetParam();
  model::EvalOptions eval;
  eval.plc_sharing = sharing;
  const model::Evaluator evaluator(eval);

  double wolt_total = 0.0, rssi_total = 0.0, greedy_total = 0.0,
         bf_total = 0.0;
  for (int seed = 0; seed < kNumSeeds; ++seed) {
    const Shape shape = ShapeForSeed(seed);
    const model::Network net = MakeNetwork(seed, shape);

    // The strongest WOLT configuration: Phase II searches the true
    // end-to-end objective under the same sharing model the instance is
    // scored with, and the activation-subset extension repairs
    // over-activation on these small dense floors. The paper-default
    // wifi-sum Phase II optimizes a proxy and can lose to RSSI on
    // adversarial small instances, so it is not the variant this dominance
    // battery pins down.
    core::WoltOptions wo;
    wo.eval = eval;
    wo.phase2_objective = assign::Phase2Objective::kEndToEnd;
    wo.subset_search = true;
    core::WoltPolicy wolt(wo);
    core::GreedyPolicy greedy(eval);
    core::RssiPolicy rssi;

    // WOLT runs under a fresh per-instance metrics scope so the counter
    // identities can be asserted for exactly this solve.
    obs::MetricsRegistry registry;
    model::Assignment wolt_assign(net.NumUsers());
    {
      obs::ScopedMetrics scoped(registry);
      wolt_assign = wolt.AssociateFresh(net);
    }
    [[maybe_unused]] const obs::MetricsSnapshot snap = registry.Snapshot();

    const double wolt_mbps = evaluator.AggregateThroughput(net, wolt_assign);
    const double greedy_mbps =
        evaluator.AggregateThroughput(net, greedy.AssociateFresh(net));
    const double rssi_mbps =
        evaluator.AggregateThroughput(net, rssi.AssociateFresh(net));

    // Relaxed brute force (users may stay unassigned) dominates every
    // heuristic, including partial assignments.
    assign::BruteForceOptions bo;
    bo.allow_unassigned = true;
    bo.eval = eval;
    const assign::BruteForceResult bf = assign::SolveBruteForce(net, bo);

    EXPECT_GE(bf.best_aggregate_mbps, wolt_mbps - kTol)
        << "seed=" << seed << " sharing=" << static_cast<int>(sharing);
    EXPECT_GE(bf.best_aggregate_mbps, greedy_mbps - kTol)
        << "seed=" << seed << " sharing=" << static_cast<int>(sharing);
    EXPECT_GE(bf.best_aggregate_mbps, rssi_mbps - kTol)
        << "seed=" << seed << " sharing=" << static_cast<int>(sharing);

    // WOLT must not lose to the baselines. Per instance a small relative
    // slack is allowed — Phase II is a local search, and on rare
    // adversarial small instances its local optimum lands a hair under a
    // baseline (3 of 600 instances at the time of writing, worst 3.2% under
    // Greedy). The naive RSSI baseline gets a tight 2% bar; this repo's
    // Greedy re-evaluates the true aggregate per insertion (far stronger
    // than the paper's online baseline, see bench_fig6a) and gets 5%.
    // Aggregate dominance over the whole battery is asserted strictly below.
    EXPECT_GE(wolt_mbps, 0.98 * rssi_mbps - kTol)
        << "seed=" << seed << " sharing=" << static_cast<int>(sharing);
    EXPECT_GE(wolt_mbps, 0.95 * greedy_mbps - kTol)
        << "seed=" << seed << " sharing=" << static_cast<int>(sharing);
    wolt_total += wolt_mbps;
    rssi_total += rssi_mbps;
    greedy_total += greedy_mbps;
    bf_total += bf.best_aggregate_mbps;

    // Counter identities for the WOLT solve (obs/obs.h contract). With
    // WOLT_OBS=OFF the hooks compile out and the registry stays empty, so
    // there is nothing to assert.
#if WOLT_OBS_ENABLED
    const std::uint64_t rel_gen = CounterValue(snap, "ls.relocate.generated");
    const std::uint64_t rel_pruned = CounterValue(snap, "ls.relocate.pruned");
    const std::uint64_t rel_eval = CounterValue(snap, "ls.relocate.evaluated");
    const std::uint64_t rel_acc = CounterValue(snap, "ls.relocate.accepted");
    const std::uint64_t swp_gen = CounterValue(snap, "ls.swap.generated");
    const std::uint64_t swp_pruned = CounterValue(snap, "ls.swap.pruned");
    const std::uint64_t swp_eval = CounterValue(snap, "ls.swap.evaluated");
    const std::uint64_t swp_acc = CounterValue(snap, "ls.swap.accepted");

    EXPECT_EQ(rel_pruned + rel_eval, rel_gen) << "seed=" << seed;
    EXPECT_EQ(swp_pruned + swp_eval, swp_gen) << "seed=" << seed;
    EXPECT_LE(rel_acc, rel_eval) << "seed=" << seed;
    EXPECT_LE(swp_acc, swp_eval) << "seed=" << seed;
    EXPECT_GE(CounterValue(snap, "hungarian.solves"), 1u) << "seed=" << seed;
#endif
  }

  // Aggregate dominance over the battery: strict, no slack.
  EXPECT_GT(wolt_total, rssi_total);
  EXPECT_GT(wolt_total, greedy_total);
  EXPECT_GE(bf_total, wolt_total - kTol * kNumSeeds);
}

// Steady-state arena contract: a WoltPolicy retains its solve arena across
// Associate calls, so after one warm-up solve every later solve of the same
// instance reuses the warmed blocks — the "arena.grows" counter must stay
// exactly flat over the whole window. That counter is how "zero heap
// allocations in the steady-state solve loop" is asserted rather than
// trusted. Running this test under the sanitize preset additionally proves
// the reuse is clean: Reset() poisons the retained blocks under ASan, so
// any pointer that survives a solve boundary faults as a use-after-reset.
TEST(SolverArenaSteadyState, RepeatedSolvesStopGrowingTheArena) {
#if WOLT_OBS_ENABLED
  const model::Network net = MakeNetwork(7, Shape{8, 4});

  core::WoltPolicy wolt;
  obs::MetricsRegistry registry;
  obs::ScopedMetrics scoped(registry);

  const model::Assignment first = wolt.AssociateFresh(net);
  const std::uint64_t warm =
      CounterValue(registry.Snapshot(), "arena.grows");
  EXPECT_GT(warm, 0u) << "solve did not route through the arena";

  for (int round = 0; round < 10; ++round) {
    const model::Assignment again = wolt.AssociateFresh(net);
    // Same instance, deterministic solver: the answer cannot drift.
    for (std::size_t i = 0; i < net.NumUsers(); ++i) {
      EXPECT_EQ(again.ExtenderOf(i), first.ExtenderOf(i)) << "round=" << round;
    }
  }
  EXPECT_EQ(CounterValue(registry.Snapshot(), "arena.grows"), warm)
      << "steady-state solves allocated through the arena";
#else
  GTEST_SKIP() << "obs counters compiled out";
#endif
}

// The same zero-grow contract for the in-solve parallel multi-start: each
// start's arena warms once, then stays fixed while repeated parallel solves
// reuse it (the per-start arenas are reset by their worker each solve).
TEST(SolverArenaSteadyState, ParallelMultiStartStopsGrowingTheArenas) {
#if WOLT_OBS_ENABLED
  const model::Network net = MakeNetwork(11, Shape{8, 4});

  util::ThreadPool pool(4);
  core::WoltOptions wo;
  wo.phase2_pool = &pool;
  core::WoltPolicy wolt(wo);
  core::WoltPolicy serial_wolt;

  obs::MetricsRegistry registry;
  obs::ScopedMetrics scoped(registry);

  const model::Assignment serial = serial_wolt.AssociateFresh(net);
  const model::Assignment first = wolt.AssociateFresh(net);
  // The parallel solve must agree with the serial one exactly.
  for (std::size_t i = 0; i < net.NumUsers(); ++i) {
    EXPECT_EQ(first.ExtenderOf(i), serial.ExtenderOf(i));
  }

  const std::uint64_t warm =
      CounterValue(registry.Snapshot(), "arena.grows");
  for (int round = 0; round < 10; ++round) {
    wolt.AssociateFresh(net);
  }
  EXPECT_EQ(CounterValue(registry.Snapshot(), "arena.grows"), warm)
      << "steady-state parallel solves allocated through an arena";
#else
  GTEST_SKIP() << "obs counters compiled out";
#endif
}

INSTANTIATE_TEST_SUITE_P(AllSharingModes, SolverDifferentialTest,
                         ::testing::Values(model::PlcSharing::kMaxMinActive,
                                           model::PlcSharing::kEqualActive,
                                           model::PlcSharing::kEqualAll),
                         [](const auto& info) {
                           switch (info.param) {
                             case model::PlcSharing::kMaxMinActive:
                               return "MaxMinActive";
                             case model::PlcSharing::kEqualActive:
                               return "EqualActive";
                             case model::PlcSharing::kEqualAll:
                               return "EqualAll";
                           }
                           return "Unknown";
                         });

}  // namespace
}  // namespace wolt
