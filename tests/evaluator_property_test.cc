// Property-based invariant suite for model::Evaluator: ~300 randomized
// (network, assignment) scenarios, each checked under all three PLC sharing
// modes. The properties are the physics the flow model must never violate,
// whatever the topology:
//   * raising any backhaul capacity c_j never lowers aggregate throughput;
//   * no user ever exceeds its WiFi PHY rate r_ij or its offered demand;
//   * bottleneck attribution is consistent with the reported throughputs
//     (kIdle <=> no users, kWifi => WiFi side binds, kPlc => PLC side
//     binds, dead backhaul => kPlc with zero throughput);
//   * PLC airtime shares are a partition: within each contention domain
//     they sum to at most 1;
//   * users with identical rate rows and demands on the same extender get
//     identical throughput.
#include "model/evaluator.h"

#include <gtest/gtest.h>

#include <cmath>
#include <cstddef>
#include <string>
#include <vector>

#include "model/assignment.h"
#include "model/network.h"
#include "util/rng.h"

namespace wolt::model {
namespace {

constexpr double kAbsTol = 1e-6;
constexpr double kRelTol = 1e-9;

const PlcSharing kAllModes[] = {PlcSharing::kMaxMinActive,
                                PlcSharing::kEqualActive,
                                PlcSharing::kEqualAll};

struct Scenario {
  Network net;
  Assignment assign;
};

// A random enterprise-ish instance: 1-6 extenders (occasionally with a dead
// backhaul or a second PLC domain), 1-12 users with partial reachability and
// a mix of saturated and finite demands, and a random valid assignment that
// leaves some users unassociated.
Scenario RandomScenario(util::Rng& rng) {
  const std::size_t num_extenders =
      static_cast<std::size_t>(rng.UniformInt(1, 6));
  const std::size_t num_users = static_cast<std::size_t>(rng.UniformInt(1, 12));
  Scenario s;
  s.net = Network(num_users, num_extenders);
  const bool two_domains = num_extenders >= 2 && rng.UniformInt(0, 3) == 0;
  for (std::size_t j = 0; j < num_extenders; ++j) {
    const bool dead = rng.UniformInt(0, 9) == 0;
    s.net.SetPlcRate(j, dead ? 0.0 : rng.Uniform(10.0, 1000.0));
    if (two_domains) {
      s.net.SetPlcDomain(j, static_cast<int>(j % 2));
    }
  }
  for (std::size_t i = 0; i < num_users; ++i) {
    bool reachable = false;
    for (std::size_t j = 0; j < num_extenders; ++j) {
      if (rng.UniformInt(0, 2) == 0) continue;  // out of WiFi range
      s.net.SetWifiRate(i, j, rng.Uniform(1.0, 300.0));
      reachable = true;
    }
    if (!reachable) {  // guarantee at least one link
      s.net.SetWifiRate(i, static_cast<std::size_t>(rng.UniformInt(
                               0, static_cast<int>(num_extenders) - 1)),
                        rng.Uniform(1.0, 300.0));
    }
    if (rng.UniformInt(0, 1) == 0) {
      s.net.SetUserDemand(i, rng.Uniform(1.0, 200.0));
    }  // else saturated (demand 0)
  }
  s.assign = Assignment(num_users);
  for (std::size_t i = 0; i < num_users; ++i) {
    if (rng.UniformInt(0, 7) == 0) continue;  // leave unassociated
    std::vector<std::size_t> candidates;
    for (std::size_t j = 0; j < num_extenders; ++j) {
      if (s.net.WifiRate(i, j) > 0.0) candidates.push_back(j);
    }
    if (candidates.empty()) continue;
    s.assign.Assign(i, candidates[static_cast<std::size_t>(rng.UniformInt(
                           0, static_cast<int>(candidates.size()) - 1))]);
  }
  return s;
}

void CheckInvariants(const Scenario& s, PlcSharing mode,
                     const std::string& what) {
  Evaluator evaluator(EvalOptions{.plc_sharing = mode});
  const EvalResult res = evaluator.Evaluate(s.net, s.assign);

  ASSERT_EQ(res.user_throughput_mbps.size(), s.net.NumUsers()) << what;
  ASSERT_EQ(res.extenders.size(), s.net.NumExtenders()) << what;

  // Per-user caps: never above the PHY rate to the assigned extender, never
  // above the offered demand, exactly zero when unassociated.
  double user_sum = 0.0;
  for (std::size_t i = 0; i < s.net.NumUsers(); ++i) {
    const double x = res.user_throughput_mbps[i];
    EXPECT_GE(x, 0.0) << what << " user " << i;
    user_sum += x;
    if (!s.assign.IsAssigned(i)) {
      EXPECT_EQ(x, 0.0) << what << " unassigned user " << i;
      continue;
    }
    const auto j = static_cast<std::size_t>(s.assign.ExtenderOf(i));
    EXPECT_LE(x, s.net.WifiRate(i, j) + kAbsTol) << what << " user " << i;
    const double demand = s.net.UserDemand(i);
    if (demand > 0.0) {
      EXPECT_LE(x, demand + kAbsTol) << what << " user " << i;
    }
  }
  EXPECT_NEAR(res.aggregate_mbps, user_sum,
              kAbsTol + kRelTol * std::abs(user_sum))
      << what;

  // Bottleneck attribution and airtime partition.
  const std::vector<int> load = s.assign.LoadVector(s.net.NumExtenders());
  std::vector<double> domain_time;
  int active = 0;
  for (std::size_t j = 0; j < s.net.NumExtenders(); ++j) {
    const ExtenderReport& rep = res.extenders[j];
    const std::string where = what + " extender " + std::to_string(j);
    EXPECT_EQ(rep.num_users, load[j]) << where;
    if (rep.num_users > 0) ++active;

    const auto domain = static_cast<std::size_t>(s.net.PlcDomain(j));
    if (domain >= domain_time.size()) domain_time.resize(domain + 1, 0.0);
    domain_time[domain] += rep.plc_time_share;
    EXPECT_GE(rep.plc_time_share, -kAbsTol) << where;
    EXPECT_LE(rep.plc_time_share, 1.0 + kAbsTol) << where;

    if (rep.num_users == 0) {
      EXPECT_EQ(rep.bottleneck, Bottleneck::kIdle) << where;
      EXPECT_EQ(rep.end_to_end_mbps, 0.0) << where;
      continue;
    }
    EXPECT_NE(rep.bottleneck, Bottleneck::kIdle) << where;
    const double expect_end =
        std::min(rep.wifi_throughput_mbps, rep.plc_throughput_mbps);
    EXPECT_NEAR(rep.end_to_end_mbps, expect_end,
                kAbsTol + kRelTol * std::abs(expect_end))
        << where;
    switch (rep.bottleneck) {
      case Bottleneck::kWifi:
        EXPECT_LE(rep.wifi_throughput_mbps,
                  rep.plc_throughput_mbps + kAbsTol)
            << where;
        break;
      case Bottleneck::kPlc:
        EXPECT_LE(rep.plc_throughput_mbps,
                  rep.wifi_throughput_mbps + kAbsTol)
            << where;
        break;
      case Bottleneck::kBalanced:
        EXPECT_NEAR(rep.wifi_throughput_mbps, rep.plc_throughput_mbps,
                    kAbsTol + 1e-6 * std::abs(rep.wifi_throughput_mbps))
            << where;
        break;
      case Bottleneck::kIdle:
        break;  // excluded above
    }
    if (s.net.PlcRate(j) == 0.0) {  // dead backhaul: PLC binds at zero
      EXPECT_EQ(rep.bottleneck, Bottleneck::kPlc) << where;
      EXPECT_EQ(rep.end_to_end_mbps, 0.0) << where;
    }
  }
  EXPECT_EQ(res.active_extenders, active) << what;
  for (std::size_t d = 0; d < domain_time.size(); ++d) {
    EXPECT_LE(domain_time[d], 1.0 + kAbsTol) << what << " domain " << d;
  }
}

// Monotonicity holds for raising a *positive* capacity. Reviving a dead
// backhaul (c_j = 0 -> small) is genuinely non-monotone: the extender
// re-enters the PLC contention set and claims airtime from productive
// cells while contributing almost nothing — so dead extenders are not
// mutated here.
void CheckCapacityMonotonicity(const Scenario& s, PlcSharing mode,
                               util::Rng& rng, const std::string& what) {
  std::vector<std::size_t> alive;
  for (std::size_t j = 0; j < s.net.NumExtenders(); ++j) {
    if (s.net.PlcRate(j) > 0.0) alive.push_back(j);
  }
  if (alive.empty()) return;

  Evaluator evaluator(EvalOptions{.plc_sharing = mode});
  const double before = evaluator.Evaluate(s.net, s.assign).aggregate_mbps;

  Network boosted = s.net;
  const std::size_t j = alive[static_cast<std::size_t>(
      rng.UniformInt(0, static_cast<int>(alive.size()) - 1))];
  const double factor = rng.Uniform(1.1, 5.0);
  boosted.SetPlcRate(j, s.net.PlcRate(j) * factor);
  const double after = evaluator.Evaluate(boosted, s.assign).aggregate_mbps;

  EXPECT_GE(after, before - (kAbsTol + kRelTol * std::abs(before)))
      << what << ": raising c_" << j << " by x" << factor << " dropped "
      << before << " -> " << after;
}

// 100 scenarios x 3 sharing modes = 300 randomized property checks.
TEST(EvaluatorPropertyTest, RandomizedInvariantsAcrossSharingModes) {
  util::Rng rng(20260806);
  for (int trial = 0; trial < 100; ++trial) {
    const Scenario s = RandomScenario(rng);
    for (const PlcSharing mode : kAllModes) {
      CheckInvariants(s, mode,
                      "trial " + std::to_string(trial) + " mode " +
                          std::string(ToString(mode)));
    }
  }
}

TEST(EvaluatorPropertyTest, RaisingBackhaulNeverLowersAggregate) {
  util::Rng rng(424242);
  for (int trial = 0; trial < 100; ++trial) {
    const Scenario s = RandomScenario(rng);
    for (const PlcSharing mode : kAllModes) {
      CheckCapacityMonotonicity(s, mode, rng,
                                "trial " + std::to_string(trial) + " mode " +
                                    std::string(ToString(mode)));
    }
  }
}

// The joint-solver contract: an all-distinct channel plan must be
// *bit-identical* to running with no plan at all. The scenarios here never
// set extender positions, so every extender sits at the origin — all inside
// carrier-sense range of each other — and orthogonality alone must reduce
// every contention domain to a singleton (peers = 1.0, an unconditional
// division whose result is exact).
TEST(EvaluatorPropertyTest, OrthogonalPlanBitIdenticalToNoPlan) {
  util::Rng rng(20260807);
  for (int trial = 0; trial < 100; ++trial) {
    const Scenario s = RandomScenario(rng);
    std::vector<int> plan(s.net.NumExtenders());
    for (std::size_t j = 0; j < plan.size(); ++j) plan[j] = static_cast<int>(j);
    for (const PlcSharing mode : kAllModes) {
      const Evaluator plain(EvalOptions{.plc_sharing = mode});
      EvalOptions channelled{.plc_sharing = mode};
      channelled.wifi_channel = plan;
      channelled.carrier_sense_range_m = 60.0;
      const EvalResult base = plain.Evaluate(s.net, s.assign);
      const EvalResult under_plan =
          Evaluator(channelled).Evaluate(s.net, s.assign);
      const std::string what = "trial " + std::to_string(trial) + " mode " +
                               std::string(ToString(mode));
      EXPECT_EQ(under_plan.aggregate_mbps, base.aggregate_mbps) << what;
      ASSERT_EQ(under_plan.user_throughput_mbps.size(),
                base.user_throughput_mbps.size())
          << what;
      for (std::size_t i = 0; i < base.user_throughput_mbps.size(); ++i) {
        EXPECT_EQ(under_plan.user_throughput_mbps[i],
                  base.user_throughput_mbps[i])
            << what << " user " << i;
      }
    }
  }
}

TEST(EvaluatorPropertyTest, SymmetricUsersGetEqualShares) {
  util::Rng rng(777);
  for (int trial = 0; trial < 30; ++trial) {
    const std::size_t num_users = static_cast<std::size_t>(rng.UniformInt(2, 8));
    Network net(num_users, 2);
    net.SetPlcRate(0, rng.Uniform(20.0, 500.0));
    net.SetPlcRate(1, rng.Uniform(20.0, 500.0));
    const double rate = rng.Uniform(5.0, 300.0);
    const double demand =
        rng.UniformInt(0, 1) == 0 ? 0.0 : rng.Uniform(1.0, 100.0);
    Assignment assign(num_users);
    for (std::size_t i = 0; i < num_users; ++i) {
      net.SetWifiRate(i, 0, rate);  // identical rows...
      net.SetWifiRate(i, 1, rate / 2.0);
      net.SetUserDemand(i, demand);  // ...and identical demands
      assign.Assign(i, 0);           // all on the same cell
    }
    for (const PlcSharing mode : kAllModes) {
      const Evaluator evaluator(EvalOptions{.plc_sharing = mode});
      const EvalResult res = evaluator.Evaluate(net, assign);
      for (std::size_t i = 1; i < num_users; ++i) {
        EXPECT_NEAR(res.user_throughput_mbps[i], res.user_throughput_mbps[0],
                    kAbsTol + kRelTol * res.user_throughput_mbps[0])
            << "trial " << trial << " mode " << ToString(mode) << " user "
            << i;
      }
    }
  }
}

}  // namespace
}  // namespace wolt::model
