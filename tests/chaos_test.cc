// Chaos soak: 100 seeded mixed-fault scenarios through the full control
// plane (lossy wire + backhaul faults + mid-run departures). Every scenario
// must complete without an exception escaping, keep the controller's user
// set consistent with the surviving clients, never do worse than evacuating
// the dead extenders, keep churn bounded, and reconverge once the faults
// clear. Run under the `sanitize` preset this is the acceptance gate.
#include "fault/chaos.h"

#include <gtest/gtest.h>

#include <cstddef>

namespace wolt::fault {
namespace {

// Small topology so 100 seeds stay fast under ASan; fault rates are the
// aggressive defaults.
ChaosParams SoakParams() {
  ChaosParams p = DefaultChaosParams();
  p.scenario.num_extenders = 5;
  p.scenario.num_users = 12;
  p.fault_epochs = 4;
  return p;
}

void ExpectInvariants(const ChaosResult& r, std::uint64_t seed) {
  EXPECT_TRUE(r.completed) << "seed " << seed << ": " << r.error;
  EXPECT_EQ(r.error, "") << "seed " << seed;
  EXPECT_TRUE(r.ids_consistent) << "seed " << seed;
  EXPECT_TRUE(r.clients_match_controller) << "seed " << seed;
  EXPECT_TRUE(r.aggregate_ge_evacuation)
      << "seed " << seed << " worst margin " << r.worst_margin;
  EXPECT_TRUE(r.quiesced) << "seed " << seed;
  // Churn bound: one epoch can move at most every user once.
  EXPECT_LE(r.max_epoch_reassignments, r.initial_users) << "seed " << seed;
  if (r.surviving_users > 0 && r.prefault_aggregate > 0.0) {
    EXPECT_GT(r.final_aggregate, 0.0) << "seed " << seed;
  }
}

TEST(ChaosSoakTest, HundredSeedsSurviveMixedFaults) {
  const ChaosParams params = SoakParams();
  const auto results = RunChaosSoak(params, /*base_seed=*/1000, /*count=*/100);
  ASSERT_EQ(results.size(), 100u);
  std::size_t total_faults = 0;
  for (std::size_t k = 0; k < results.size(); ++k) {
    ExpectInvariants(results[k], 1000 + k);
    total_faults += results[k].wire_stats.lost +
                    results[k].wire_stats.corrupted +
                    results[k].health_stats.crashes +
                    results[k].health_stats.flaps;
  }
  // The soak must actually exercise the fault paths, not vacuously pass.
  EXPECT_GT(total_faults, 100u * 10u);
}

TEST(ChaosTest, DeterministicReplay) {
  const ChaosParams params = SoakParams();
  const ChaosResult a = RunChaosScenario(params, 4242);
  const ChaosResult b = RunChaosScenario(params, 4242);
  EXPECT_EQ(a.error, b.error);
  EXPECT_EQ(a.surviving_users, b.surviving_users);
  EXPECT_EQ(a.departures, b.departures);
  EXPECT_EQ(a.evictions, b.evictions);
  EXPECT_EQ(a.retries_sent, b.retries_sent);
  EXPECT_EQ(a.total_reassignments, b.total_reassignments);
  EXPECT_EQ(a.wire_stats.sent, b.wire_stats.sent);
  EXPECT_EQ(a.wire_stats.lost, b.wire_stats.lost);
  EXPECT_EQ(a.health_stats.crashes, b.health_stats.crashes);
  EXPECT_DOUBLE_EQ(a.prefault_aggregate, b.prefault_aggregate);
  EXPECT_DOUBLE_EQ(a.final_aggregate, b.final_aggregate);
  EXPECT_DOUBLE_EQ(a.worst_margin, b.worst_margin);
}

TEST(ChaosTest, RetriesHealHeavyDirectiveLoss) {
  // Backhaul crashes force evacuations while half of all directives vanish;
  // nobody leaves. The ack/retry machinery (plus scan reconciliation) must
  // still converge every client once the faults clear.
  ChaosParams p = SoakParams();
  p.health = HealthParams{};
  p.health.crash_rate = 0.3;
  p.health.repair_rate = 0.2;
  p.departure_prob = 0.0;
  p.wire = FaultPlaneParams{};
  p.wire.ForClass(MessageClass::kDirective).loss = 0.5;
  const auto results = RunChaosSoak(p, 7000, 20);
  std::size_t retries = 0;
  for (std::size_t k = 0; k < results.size(); ++k) {
    ExpectInvariants(results[k], 7000 + k);
    EXPECT_EQ(results[k].surviving_users, results[k].initial_users);
    EXPECT_EQ(results[k].unassociated_clients, 0u);
    retries += results[k].retries_sent;
  }
  EXPECT_GT(retries, 0u);
}

TEST(ChaosTest, StalenessEvictionReapsGhostsWhenGoodbyesAreLost) {
  // Every departure notice is lost: the only way the controller's user set
  // can match reality is the staleness eviction path.
  ChaosParams p = SoakParams();
  p.health = HealthParams{};
  p.departure_prob = 0.9;
  p.wire = FaultPlaneParams{};
  p.wire.ForClass(MessageClass::kDeparture).loss = 1.0;
  const auto results = RunChaosSoak(p, 8000, 20);
  std::size_t evictions = 0, departures = 0;
  for (std::size_t k = 0; k < results.size(); ++k) {
    ExpectInvariants(results[k], 8000 + k);
    evictions += results[k].evictions;
    departures += results[k].departures;
  }
  EXPECT_GT(departures, 0u);
  // Lost goodbyes leave ghosts; eviction must have reaped every one of
  // them (ids_consistent above), so the counts line up.
  EXPECT_EQ(evictions, departures);
}

}  // namespace
}  // namespace wolt::fault
