// Unit coverage of the fleet journal's framing and recovery semantics:
// round-trip, checkpoint trimming, torn-tail tolerance, duplicate-record
// first-wins, foreign-artefact rejection, and resume truncation.
#include <gtest/gtest.h>

#include <cstdint>
#include <filesystem>
#include <fstream>
#include <string>

#include "recover/fleet_journal.h"
#include "recover/journal.h"
#include "util/codec.h"

namespace wolt::recover {
namespace {

namespace fs = std::filesystem;

std::string TempPath(const std::string& name) {
  return (fs::temp_directory_path() / name).string();
}

FleetJournalHeader TestHeader() {
  FleetJournalHeader h;
  h.fingerprint = 0xABCDEF;
  h.num_shards = 4;
  h.rounds = 8;
  return h;
}

ShardRoundRecord TestShardRecord(std::uint64_t round, std::uint32_t shard) {
  ShardRoundRecord r;
  r.round = round;
  r.shard = shard;
  r.state = 0;
  r.tier = shard % 2 == 0 ? 0 : -1;
  r.truth_aggregate = 12.5 + round;
  r.processed = 7;
  r.decode_rejects = 1;
  r.directives = 2;
  r.outbound = 2;
  r.restarted = round == 3 ? 1 : 0;
  return r;
}

FleetRoundRecord TestFleetRecord(std::uint64_t round) {
  FleetRoundRecord r;
  r.round = round;
  r.enqueued = 32;
  r.delivered = 28;
  r.shed = 3;
  r.discarded = 1;
  r.backlog = 0;
  r.reopt_scheduled = 4;
  r.reopt_units = 16;
  return r;
}

// Writes rounds [0, rounds) with a snapshot after each; returns the path.
std::string WriteJournal(const std::string& name, std::uint64_t rounds,
                         std::uint64_t snapshot_every = 1) {
  const std::string path = TempPath(name);
  FleetJournalWriter w(path, TestHeader(), {});
  EXPECT_TRUE(w.ok());
  for (std::uint64_t round = 0; round < rounds; ++round) {
    for (std::uint32_t s = 0; s < TestHeader().num_shards; ++s) {
      w.AppendShardRound(TestShardRecord(round, s));
    }
    w.AppendFleetRound(TestFleetRecord(round));
    if ((round + 1) % snapshot_every == 0) {
      w.AppendSnapshot(round, "state-after-round-" + std::to_string(round));
    }
  }
  w.Close();
  return path;
}

TEST(FleetJournal, RoundTripsRecordsAndCheckpoint) {
  const std::string path = WriteJournal("wolt_fleet_journal_rt.wal", 3);
  const FleetJournalReadResult got = ReadFleetJournal(path);
  ASSERT_TRUE(got.ok) << got.error;
  EXPECT_EQ(got.header.fingerprint, TestHeader().fingerprint);
  EXPECT_EQ(got.header.num_shards, 4u);
  EXPECT_EQ(got.header.rounds, 8u);
  ASSERT_EQ(got.shard_records.size(), 12u);
  ASSERT_EQ(got.fleet_records.size(), 3u);
  EXPECT_TRUE(got.has_checkpoint);
  EXPECT_EQ(got.checkpoint_round, 2u);
  EXPECT_EQ(got.checkpoint_blob, "state-after-round-2");
  EXPECT_EQ(got.torn_bytes, 0u);
  EXPECT_EQ(got.duplicates, 0u);
  EXPECT_EQ(got.discarded_records, 0u);

  const ShardRoundRecord& r = got.shard_records[5];  // round 1, shard 1
  EXPECT_EQ(r.round, 1u);
  EXPECT_EQ(r.shard, 1u);
  EXPECT_EQ(r.tier, -1);
  EXPECT_DOUBLE_EQ(r.truth_aggregate, 13.5);
  EXPECT_EQ(r.processed, 7u);
  fs::remove(path);
}

TEST(FleetJournal, RecordsPastTheCheckpointAreDiscarded) {
  // Snapshot only after round 1 of 3: rounds 2's records are past the
  // resume point and must be dropped (the resumed run regenerates them).
  const std::string path = TempPath("wolt_fleet_journal_trim.wal");
  {
    FleetJournalWriter w(path, TestHeader(), {});
    for (std::uint64_t round = 0; round < 3; ++round) {
      for (std::uint32_t s = 0; s < 4; ++s) {
        w.AppendShardRound(TestShardRecord(round, s));
      }
      w.AppendFleetRound(TestFleetRecord(round));
      if (round == 1) w.AppendSnapshot(round, "cp");
    }
  }
  const FleetJournalReadResult got = ReadFleetJournal(path);
  ASSERT_TRUE(got.ok) << got.error;
  EXPECT_TRUE(got.has_checkpoint);
  EXPECT_EQ(got.checkpoint_round, 1u);
  EXPECT_EQ(got.shard_records.size(), 8u);   // rounds 0-1 only
  EXPECT_EQ(got.fleet_records.size(), 2u);
  EXPECT_EQ(got.discarded_records, 5u);      // round 2: 4 shard + 1 fleet
  fs::remove(path);
}

TEST(FleetJournal, NoCheckpointMeansNoRecords) {
  const std::string path = TempPath("wolt_fleet_journal_nocp.wal");
  {
    FleetJournalWriter w(path, TestHeader(), {});
    w.AppendShardRound(TestShardRecord(0, 0));
    w.AppendFleetRound(TestFleetRecord(0));
  }
  const FleetJournalReadResult got = ReadFleetJournal(path);
  ASSERT_TRUE(got.ok) << got.error;
  EXPECT_FALSE(got.has_checkpoint);
  EXPECT_TRUE(got.shard_records.empty());
  EXPECT_TRUE(got.fleet_records.empty());
  EXPECT_EQ(got.discarded_records, 2u);
  fs::remove(path);
}

TEST(FleetJournal, ToleratesTruncatedTail) {
  const std::string path = WriteJournal("wolt_fleet_journal_trunc.wal", 3);
  std::error_code ec;
  const std::uint64_t size = fs::file_size(path, ec);
  ASSERT_FALSE(ec);
  fs::resize_file(path, size - 7, ec);
  ASSERT_FALSE(ec);

  const FleetJournalReadResult got = ReadFleetJournal(path);
  ASSERT_TRUE(got.ok) << got.error;
  EXPECT_GT(got.torn_bytes, 0u);
  // The torn frame was the round-2 snapshot: recovery falls back to the
  // round-1 checkpoint.
  EXPECT_TRUE(got.has_checkpoint);
  EXPECT_EQ(got.checkpoint_round, 1u);
  EXPECT_EQ(got.shard_records.size(), 8u);
  fs::remove(path);
}

TEST(FleetJournal, ToleratesGarbageTail) {
  const std::string path = WriteJournal("wolt_fleet_journal_garbage.wal", 2);
  {
    std::ofstream out(path, std::ios::binary | std::ios::app);
    out << "garbage-from-a-dying-disk";
  }
  const FleetJournalReadResult got = ReadFleetJournal(path);
  ASSERT_TRUE(got.ok) << got.error;
  EXPECT_EQ(got.torn_bytes, 25u);
  EXPECT_TRUE(got.has_checkpoint);
  EXPECT_EQ(got.checkpoint_round, 1u);
  fs::remove(path);
}

TEST(FleetJournal, CorruptedPayloadEndsTheValidPrefix) {
  const std::string path = WriteJournal("wolt_fleet_journal_flip.wal", 3);
  // Flip one byte inside the round-2 region (past the round-1 snapshot):
  // its checksum fails, everything after is torn tail.
  std::string bytes;
  {
    std::ifstream in(path, std::ios::binary);
    std::ostringstream buf;
    buf << in.rdbuf();
    bytes = buf.str();
  }
  bytes[bytes.size() - 10] ^= 0x5A;
  {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  }
  const FleetJournalReadResult got = ReadFleetJournal(path);
  ASSERT_TRUE(got.ok) << got.error;
  EXPECT_GT(got.torn_bytes, 0u);
  EXPECT_TRUE(got.has_checkpoint);
  EXPECT_LE(got.checkpoint_round, 2u);
  fs::remove(path);
}

TEST(FleetJournal, DuplicateRecordsFirstWins) {
  const std::string path = TempPath("wolt_fleet_journal_dup.wal");
  {
    FleetJournalWriter w(path, TestHeader(), {});
    ShardRoundRecord first = TestShardRecord(0, 0);
    first.processed = 111;
    w.AppendShardRound(first);
    ShardRoundRecord dup = TestShardRecord(0, 0);
    dup.processed = 222;
    w.AppendShardRound(dup);
    w.AppendFleetRound(TestFleetRecord(0));
    w.AppendFleetRound(TestFleetRecord(0));
    w.AppendSnapshot(0, "cp");
  }
  const FleetJournalReadResult got = ReadFleetJournal(path);
  ASSERT_TRUE(got.ok) << got.error;
  EXPECT_EQ(got.duplicates, 2u);
  ASSERT_EQ(got.shard_records.size(), 1u);
  EXPECT_EQ(got.shard_records[0].processed, 111u);
  EXPECT_EQ(got.fleet_records.size(), 1u);
  fs::remove(path);
}

TEST(FleetJournal, RejectsFilesWithoutAFleetHeader) {
  const std::string garbage = TempPath("wolt_fleet_journal_bad.wal");
  {
    std::ofstream out(garbage, std::ios::binary);
    out << "this is not a journal";
  }
  EXPECT_FALSE(ReadFleetJournal(garbage).ok);
  fs::remove(garbage);

  EXPECT_FALSE(ReadFleetJournal(TempPath("wolt_fleet_journal_enoent")).ok);

  // A *sweep* journal must never pass as a fleet journal: distinct magics.
  const std::string sweep_path = TempPath("wolt_fleet_journal_sweep.wal");
  {
    JournalWriter w(sweep_path, JournalHeader{}, {});
    ASSERT_TRUE(w.ok());
  }
  EXPECT_FALSE(ReadFleetJournal(sweep_path).ok);
  fs::remove(sweep_path);
}

TEST(FleetJournal, ResumeWriterTruncatesBackToTheCheckpoint) {
  const std::string path = TempPath("wolt_fleet_journal_resume.wal");
  {
    FleetJournalWriter w(path, TestHeader(), {});
    w.AppendShardRound(TestShardRecord(0, 0));
    w.AppendFleetRound(TestFleetRecord(0));
    w.AppendSnapshot(0, "cp");
    w.AppendShardRound(TestShardRecord(1, 0));  // past the checkpoint
  }
  FleetJournalReadResult existing = ReadFleetJournal(path);
  ASSERT_TRUE(existing.ok);
  ASSERT_TRUE(existing.has_checkpoint);
  ASSERT_LT(existing.checkpoint_bytes, fs::file_size(path));
  {
    FleetJournalWriter w(path, existing, {});
    ASSERT_TRUE(w.ok());
  }
  EXPECT_EQ(fs::file_size(path), existing.checkpoint_bytes);
  // And without a checkpoint, resume keeps only the header.
  {
    FleetJournalWriter fresh(path, TestHeader(), {});
    fresh.AppendShardRound(TestShardRecord(0, 0));
  }
  FleetJournalReadResult no_cp = ReadFleetJournal(path);
  ASSERT_TRUE(no_cp.ok);
  ASSERT_FALSE(no_cp.has_checkpoint);
  {
    FleetJournalWriter w(path, no_cp, {});
    ASSERT_TRUE(w.ok());
  }
  EXPECT_EQ(fs::file_size(path), no_cp.header_bytes);
  fs::remove(path);
}

TEST(FleetJournal, AfterAppendHookSeesEveryFlushedFrame) {
  const std::string path = TempPath("wolt_fleet_journal_hook.wal");
  std::size_t calls = 0;
  std::size_t last = 0;
  {
    FleetJournalWriter::Options opts;
    opts.after_append = [&](std::size_t n) {
      ++calls;
      last = n;
    };
    FleetJournalWriter w(path, TestHeader(), opts);
    w.AppendShardRound(TestShardRecord(0, 0));
    w.AppendSnapshot(0, "cp");
  }
  // Header + record + snapshot = 3 appends, reported in order.
  EXPECT_EQ(calls, 3u);
  EXPECT_EQ(last, 3u);
  fs::remove(path);
}

}  // namespace
}  // namespace wolt::recover
