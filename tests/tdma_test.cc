#include "plc/tdma.h"

#include <gtest/gtest.h>

#include <stdexcept>
#include <vector>

#include "plc/timeshare.h"
#include "util/rng.h"

namespace wolt::plc {
namespace {

TEST(TdmaTest, RejectsBadInputs) {
  const std::vector<double> r = {100.0};
  const std::vector<double> d = {50.0};
  const std::vector<double> w = {1.0};
  EXPECT_THROW(ScheduleTdma(r, {}, w), std::invalid_argument);
  EXPECT_THROW(ScheduleTdma(r, d, {}), std::invalid_argument);
  EXPECT_THROW(ScheduleTdma(r, d, w, {0}), std::invalid_argument);
  // Backlogged extender with zero weight.
  EXPECT_THROW(ScheduleTdma(r, d, std::vector<double>{0.0}),
               std::invalid_argument);
  // Backlogged extender with zero rate.
  EXPECT_THROW(
      ScheduleTdma(std::vector<double>{0.0}, d, w),
      std::invalid_argument);
}

TEST(TdmaTest, SingleSaturatedExtenderGetsAllSlots) {
  const std::vector<double> r = {100.0};
  const std::vector<double> d = {1e9};
  const TdmaSchedule s = ScheduleTdmaEqual(r, d);
  EXPECT_EQ(s.slots[0], 50);
  EXPECT_DOUBLE_EQ(s.time_share[0], 1.0);
  EXPECT_NEAR(s.throughput[0], 100.0, 1e-9);
  EXPECT_EQ(s.unused_slots, 0);
}

TEST(TdmaTest, EqualWeightsSplitEqually) {
  const std::vector<double> r = {60.0, 160.0};
  const std::vector<double> d = {1e9, 1e9};
  const TdmaSchedule s = ScheduleTdmaEqual(r, d);
  EXPECT_EQ(s.slots[0], 25);
  EXPECT_EQ(s.slots[1], 25);
  EXPECT_NEAR(s.throughput[0], 30.0, 1e-9);
  EXPECT_NEAR(s.throughput[1], 80.0, 1e-9);
}

TEST(TdmaTest, WeightsSkewTheSchedule) {
  const std::vector<double> r = {100.0, 100.0};
  const std::vector<double> d = {1e9, 1e9};
  const std::vector<double> w = {3.0, 1.0};
  const TdmaSchedule s = ScheduleTdma(r, d, w);
  // QoS: 3:1 slot split.
  EXPECT_NEAR(static_cast<double>(s.slots[0]) / s.slots[1], 3.0, 0.2);
  EXPECT_GT(s.throughput[0], 2.5 * s.throughput[1]);
}

TEST(TdmaTest, DemandCappedSlotsAreReapportioned) {
  // Extender 0 only needs a quarter of the beacon; extender 1 is
  // saturated and receives the released slots (the TDMA analogue of the
  // max-min leftover redistribution).
  const std::vector<double> r = {60.0, 20.0};
  const std::vector<double> d = {15.0, 1e9};
  const TdmaSchedule s = ScheduleTdmaEqual(r, d);
  EXPECT_NEAR(s.throughput[0], 15.0, 1.0);
  // Fig. 3c fluid answer is 15; slot quantization keeps it close.
  EXPECT_NEAR(s.throughput[1], 15.0, 1.0);
  EXPECT_EQ(s.unused_slots, 0);
}

TEST(TdmaTest, AllDemandsMetLeavesSlackSlots) {
  const std::vector<double> r = {100.0, 100.0};
  const std::vector<double> d = {10.0, 10.0};
  const TdmaSchedule s = ScheduleTdmaEqual(r, d);
  EXPECT_NEAR(s.throughput[0], 10.0, 1e-9);
  EXPECT_NEAR(s.throughput[1], 10.0, 1e-9);
  EXPECT_GT(s.unused_slots, 0);
}

TEST(TdmaTest, ZeroDemandGetsNoSlots) {
  const std::vector<double> r = {100.0, 100.0};
  const std::vector<double> d = {0.0, 1e9};
  const TdmaSchedule s = ScheduleTdmaEqual(r, d);
  EXPECT_EQ(s.slots[0], 0);
  EXPECT_EQ(s.slots[1], 50);
}

TEST(TdmaTest, ConvergesToFluidMaxMinWithFinerSlots) {
  util::Rng rng(11);
  for (int trial = 0; trial < 20; ++trial) {
    const int n = rng.UniformInt(2, 6);
    std::vector<double> r(static_cast<std::size_t>(n));
    std::vector<double> d(static_cast<std::size_t>(n));
    for (int j = 0; j < n; ++j) {
      r[static_cast<std::size_t>(j)] = rng.Uniform(20.0, 200.0);
      d[static_cast<std::size_t>(j)] =
          rng.Bernoulli(0.3) ? rng.Uniform(1.0, 40.0) : 1e9;
    }
    const TimeShareResult fluid = MaxMinTimeShare(r, d);
    const TdmaSchedule fine = ScheduleTdmaEqual(r, d, {2000});
    for (int j = 0; j < n; ++j) {
      EXPECT_NEAR(fine.throughput[static_cast<std::size_t>(j)],
                  fluid.throughput[static_cast<std::size_t>(j)],
                  0.02 * r[static_cast<std::size_t>(j)] + 0.5)
          << "trial=" << trial << " j=" << j;
    }
  }
}

class TdmaPropertyTest : public ::testing::TestWithParam<int> {};

TEST_P(TdmaPropertyTest, SlotConservationAndCaps) {
  util::Rng rng(static_cast<std::uint64_t>(GetParam()) * 271);
  const int n = rng.UniformInt(1, 8);
  std::vector<double> r(static_cast<std::size_t>(n));
  std::vector<double> d(static_cast<std::size_t>(n));
  std::vector<double> w(static_cast<std::size_t>(n));
  for (int j = 0; j < n; ++j) {
    r[static_cast<std::size_t>(j)] = rng.Uniform(10.0, 300.0);
    d[static_cast<std::size_t>(j)] =
        rng.Bernoulli(0.25) ? 0.0 : rng.Uniform(1.0, 200.0);
    w[static_cast<std::size_t>(j)] = rng.Uniform(0.5, 4.0);
  }
  const TdmaParams params{50};
  const TdmaSchedule s = ScheduleTdma(r, d, w, params);
  int used = 0;
  for (int j = 0; j < n; ++j) {
    const std::size_t k = static_cast<std::size_t>(j);
    ASSERT_GE(s.slots[k], 0);
    used += s.slots[k];
    // Throughput never exceeds demand or slot capacity.
    ASSERT_LE(s.throughput[k], d[k] + 1e-9);
    ASSERT_LE(s.throughput[k], s.time_share[k] * r[k] + 1e-9);
    if (d[k] == 0.0) {
      ASSERT_EQ(s.slots[k], 0);
    }
  }
  ASSERT_EQ(used + s.unused_slots, params.slots_per_beacon);
}

INSTANTIATE_TEST_SUITE_P(Seeds, TdmaPropertyTest, ::testing::Range(1, 31));

}  // namespace
}  // namespace wolt::plc
