#include "assign/nlp.h"

#include <gtest/gtest.h>

#include <cmath>
#include <numeric>
#include <stdexcept>
#include <vector>

#include "assign/brute_force.h"
#include "assign/local_search.h"
#include "testbed/lab.h"
#include "util/rng.h"

namespace wolt::assign {
namespace {

model::Network RandomNetwork(util::Rng& rng, std::size_t users,
                             std::size_t exts) {
  model::Network net(users, exts);
  for (std::size_t j = 0; j < exts; ++j) {
    net.SetPlcRate(j, rng.Uniform(20.0, 160.0));
  }
  for (std::size_t i = 0; i < users; ++i) {
    for (std::size_t j = 0; j < exts; ++j) {
      net.SetWifiRate(i, j, rng.Uniform(5.0, 65.0));
    }
  }
  return net;
}

TEST(SimplexProjectionTest, AlreadyOnSimplexIsFixedPoint) {
  const std::vector<double> v = {0.2, 0.3, 0.5};
  const std::vector<bool> allowed = {true, true, true};
  const std::vector<double> p = ProjectToSimplex(v, allowed);
  for (std::size_t i = 0; i < v.size(); ++i) {
    EXPECT_NEAR(p[i], v[i], 1e-12);
  }
}

TEST(SimplexProjectionTest, ProjectionSumsToOneAndNonNegative) {
  util::Rng rng(3);
  for (int trial = 0; trial < 200; ++trial) {
    const int n = rng.UniformInt(1, 8);
    std::vector<double> v(static_cast<std::size_t>(n));
    std::vector<bool> allowed(static_cast<std::size_t>(n), false);
    int num_allowed = 0;
    for (int i = 0; i < n; ++i) {
      v[static_cast<std::size_t>(i)] = rng.Uniform(-5.0, 5.0);
      if (rng.Bernoulli(0.8) || (i == n - 1 && num_allowed == 0)) {
        allowed[static_cast<std::size_t>(i)] = true;
        ++num_allowed;
      }
    }
    const std::vector<double> p = ProjectToSimplex(v, allowed);
    double sum = 0.0;
    for (std::size_t i = 0; i < p.size(); ++i) {
      ASSERT_GE(p[i], -1e-12);
      if (!allowed[i]) {
        ASSERT_EQ(p[i], 0.0);
      }
      sum += p[i];
    }
    ASSERT_NEAR(sum, 1.0, 1e-9);
  }
}

TEST(SimplexProjectionTest, LargestEntryDominatesProjection) {
  const std::vector<double> v = {10.0, 0.0, 0.0};
  const std::vector<bool> allowed = {true, true, true};
  const std::vector<double> p = ProjectToSimplex(v, allowed);
  EXPECT_NEAR(p[0], 1.0, 1e-12);
}

TEST(SimplexProjectionTest, RejectsNoAllowedEntries) {
  EXPECT_THROW(ProjectToSimplex({1.0}, {false}), std::invalid_argument);
  EXPECT_THROW(ProjectToSimplex({1.0}, {false, true}),
               std::invalid_argument);
}

TEST(NlpTest, CaseStudyPhase2MatchesDiscreteSolver) {
  // Fix user 1 on extender 0 (a Phase-I-like seed), let the NLP place
  // user 2: WiFi-sum is maximized on extender 1.
  const model::Network net = testbed::CaseStudyNetwork();
  model::Assignment fixed(2);
  fixed.Assign(0, 0);
  const NlpResult r = SolvePhase2Nlp(net, fixed, {1});
  EXPECT_TRUE(r.converged);
  EXPECT_EQ(r.rounded.ExtenderOf(0), 0);
  EXPECT_EQ(r.rounded.ExtenderOf(1), 1);
  EXPECT_LT(r.max_fractionality, 0.01);  // Theorem 3: integral optimum
}

TEST(NlpTest, SolutionsAreNearIntegral) {
  // Theorem 3 empirically: converged points are (near-)integral across
  // random instances.
  for (int seed = 1; seed <= 15; ++seed) {
    util::Rng rng(static_cast<std::uint64_t>(seed) * 389);
    const model::Network net = RandomNetwork(rng, 6, 3);
    model::Assignment fixed(6);
    fixed.Assign(0, 0);
    fixed.Assign(1, 1);
    fixed.Assign(2, 2);
    const NlpResult r = SolvePhase2Nlp(net, fixed, {3, 4, 5});
    EXPECT_LT(r.max_fractionality, 0.05) << "seed=" << seed;
    EXPECT_TRUE(r.rounded.IsCompleteFor(net));
  }
}

TEST(NlpTest, RoundedObjectiveNearContinuous) {
  for (int seed = 1; seed <= 15; ++seed) {
    util::Rng rng(static_cast<std::uint64_t>(seed) * 641);
    const model::Network net = RandomNetwork(rng, 5, 2);
    model::Assignment fixed(5);
    fixed.Assign(0, 0);
    fixed.Assign(1, 1);
    const NlpResult r = SolvePhase2Nlp(net, fixed, {2, 3, 4});
    // Rounding an integral optimum must not lose objective value.
    EXPECT_GE(r.objective_rounded, r.objective_continuous * 0.97)
        << "seed=" << seed;
  }
}

TEST(NlpTest, MatchesBruteForceOnSmallInstances) {
  int hits = 0;
  const int cases = 20;
  for (int seed = 1; seed <= cases; ++seed) {
    util::Rng rng(static_cast<std::uint64_t>(seed) * 947);
    const model::Network net = RandomNetwork(rng, 5, 3);
    model::Assignment fixed(5);
    fixed.Assign(0, 0);
    const NlpResult r = SolvePhase2Nlp(net, fixed, {1, 2, 3, 4});

    const BruteForceResult bf = SolveBruteForceObjective(
        net, fixed, [&](const model::Assignment& cand) {
          return Phase2Value(net, cand, Phase2Objective::kWifiSum, {});
        });
    EXPECT_LE(r.objective_rounded, bf.best_aggregate_mbps + 1e-6);
    if (r.objective_rounded >= bf.best_aggregate_mbps - 1e-3) ++hits;
  }
  // Projected gradient is a local method; it should still find the global
  // optimum in the large majority of these small instances.
  EXPECT_GE(hits, cases * 3 / 4);
}

TEST(NlpTest, RejectsBadInputs) {
  const model::Network net = testbed::CaseStudyNetwork();
  model::Assignment fixed(2);
  fixed.Assign(0, 0);
  // Movable user already fixed.
  EXPECT_THROW(SolvePhase2Nlp(net, fixed, {0}), std::invalid_argument);
  // Unreachable movable user.
  model::Network island(1, 1);
  island.SetPlcRate(0, 100.0);
  EXPECT_THROW(SolvePhase2Nlp(island, model::Assignment(1), {0}),
               std::invalid_argument);
}

TEST(NlpTest, EmptyMovableSetIsNoop) {
  const model::Network net = testbed::CaseStudyNetwork();
  model::Assignment fixed(2);
  fixed.Assign(0, 0);
  fixed.Assign(1, 1);
  const NlpResult r = SolvePhase2Nlp(net, fixed, {});
  EXPECT_EQ(r.rounded, fixed);
}

TEST(NlpTest, RespectsReachabilityInRounding) {
  model::Network net(2, 2);
  net.SetPlcRate(0, 100.0);
  net.SetPlcRate(1, 100.0);
  net.SetWifiRate(0, 0, 30.0);
  net.SetWifiRate(1, 1, 30.0);  // user1 can only reach ext1
  model::Assignment fixed(2);
  fixed.Assign(0, 0);
  const NlpResult r = SolvePhase2Nlp(net, fixed, {1});
  EXPECT_EQ(r.rounded.ExtenderOf(1), 1);
}

}  // namespace
}  // namespace wolt::assign
