// End-to-end integration tests mirroring the paper's headline claims at a
// scale that keeps ctest fast. The full-scale reproductions live in bench/.
#include <gtest/gtest.h>

#include <vector>

#include "core/greedy.h"
#include "core/optimal.h"
#include "core/rssi.h"
#include "core/wolt.h"
#include "model/evaluator.h"
#include "plc/capacity.h"
#include "sim/dynamics.h"
#include "sim/runner.h"
#include "sim/scenario.h"
#include "testbed/lab.h"
#include "util/rng.h"

namespace wolt {
namespace {

TEST(IntegrationTest, TestbedWoltBeatsBothBaselines) {
  // Fig. 4a shape: over random lab topologies WOLT's mean aggregate exceeds
  // Greedy's and RSSI's, and RSSI is the weakest.
  const testbed::LabTestbed lab;
  util::Rng rng(101);
  const auto topologies = lab.GenerateTopologies(25, rng);
  core::WoltPolicy wolt;
  core::GreedyPolicy greedy;
  core::RssiPolicy rssi;
  std::vector<core::AssociationPolicy*> policies = {&wolt, &greedy, &rssi};
  const auto results = sim::RunNetworkTrials(topologies, policies);
  const double wolt_mean = results[0].MeanAggregate();
  const double greedy_mean = results[1].MeanAggregate();
  const double rssi_mean = results[2].MeanAggregate();
  EXPECT_GT(wolt_mean, greedy_mean);
  EXPECT_GT(wolt_mean, rssi_mean);
  EXPECT_GT(greedy_mean, rssi_mean);
}

TEST(IntegrationTest, EnterpriseSimSubsetWoltDominatesGreedy) {
  // Fig. 6a shape, achieved by the WOLT-S extension: per-trial dominance
  // over the online greedy baseline on the enterprise floor under the
  // physical sharing model. (Paper-faithful WOLT converges to the
  // all-extenders-active aggregate at this scale — see EXPERIMENTS.md.)
  sim::ScenarioParams p;
  p.num_extenders = 15;
  p.num_users = 36;
  const sim::ScenarioGenerator gen(p);
  core::WoltOptions so;
  so.subset_search = true;
  core::WoltPolicy wolts(so);
  core::GreedyPolicy greedy;
  std::vector<core::AssociationPolicy*> policies = {&wolts, &greedy};
  util::Rng rng(202);
  const auto results = sim::RunStaticTrials(gen, policies, 20, rng);
  int wins = 0;
  for (std::size_t t = 0; t < 20; ++t) {
    if (results[0].trials[t].aggregate_mbps >=
        results[1].trials[t].aggregate_mbps) {
      ++wins;
    }
  }
  EXPECT_GE(wins, 17);  // paper: WOLT wins in all trials
  EXPECT_GT(results[0].MeanAggregate(), results[1].MeanAggregate());
}

TEST(IntegrationTest, EnterpriseSimPhysicalModelBoundedGap) {
  // Reproduction finding (documented in EXPERIMENTS.md): under the
  // physically-validated max-min active-extender sharing, WOLT's
  // all-extenders-active Phase I costs aggregate at 15-extender scale; the
  // gap to greedy must stay bounded.
  sim::ScenarioParams p;
  p.num_extenders = 15;
  p.num_users = 36;
  const sim::ScenarioGenerator gen(p);
  core::WoltPolicy wolt;
  core::GreedyPolicy greedy;
  std::vector<core::AssociationPolicy*> policies = {&wolt, &greedy};
  util::Rng rng(202);
  const auto results = sim::RunStaticTrials(gen, policies, 20, rng);
  EXPECT_GT(results[0].MeanAggregate(), 0.7 * results[1].MeanAggregate());
}

TEST(IntegrationTest, FairnessOrderingMatchesPaper) {
  // §V-E: Jain index ordering WOLT >= RSSI > Greedy (0.66 / 0.65 / 0.52).
  sim::ScenarioParams p;
  p.num_extenders = 15;
  p.num_users = 36;
  const sim::ScenarioGenerator gen(p);
  core::WoltPolicy wolt;
  core::GreedyPolicy greedy;
  core::RssiPolicy rssi;
  std::vector<core::AssociationPolicy*> policies = {&wolt, &greedy, &rssi};
  util::Rng rng(303);
  const auto results = sim::RunStaticTrials(gen, policies, 20, rng);
  EXPECT_GT(results[0].MeanJain(), results[1].MeanJain());  // WOLT > Greedy
}

TEST(IntegrationTest, SmallScaleSimMatchesOptimalClosely) {
  // Fig. 4c spirit: at testbed scale the full WOLT pipeline lands within a
  // few percent of brute-force optimum.
  testbed::LabParams lp;
  lp.num_users = 5;  // keep 3^5 brute force instant
  const testbed::LabTestbed lab(lp);
  util::Rng rng(404);
  const model::Evaluator evaluator;
  double ratio_sum = 0.0;
  const int cases = 10;
  for (int t = 0; t < cases; ++t) {
    const model::Network net = lab.GenerateTopology(rng);
    core::WoltPolicy wolt;
    core::OptimalPolicy optimal;
    const double w =
        evaluator.AggregateThroughput(net, wolt.AssociateFresh(net));
    const double o =
        evaluator.AggregateThroughput(net, optimal.AssociateFresh(net));
    EXPECT_LE(w, o + 1e-9);
    ratio_sum += w / o;
  }
  EXPECT_GE(ratio_sum / cases, 0.92);
}

TEST(IntegrationTest, NoisyCapacityEstimatesBarelyHurtWolt) {
  // The deployment pipeline (§V-A): WOLT consumes iperf3-style capacity
  // estimates, not ground truth. 5% probe noise must not change decisions
  // materially.
  const testbed::LabTestbed lab;
  const plc::CapacityEstimator estimator;
  util::Rng rng(505);
  const model::Evaluator evaluator;
  double truth_total = 0.0, noisy_total = 0.0;
  for (int t = 0; t < 15; ++t) {
    const model::Network net = lab.GenerateTopology(rng);
    // Build the "estimated" network: same WiFi rates, estimated c_j.
    model::Network estimated = net;
    for (std::size_t j = 0; j < net.NumExtenders(); ++j) {
      estimated.SetPlcRate(j, estimator.Estimate(net.PlcRate(j), rng));
    }
    core::WoltPolicy wolt;
    const model::Assignment truth_assign = wolt.AssociateFresh(net);
    const model::Assignment noisy_assign = wolt.AssociateFresh(estimated);
    // Both evaluated on the TRUE network.
    truth_total += evaluator.AggregateThroughput(net, truth_assign);
    noisy_total += evaluator.AggregateThroughput(net, noisy_assign);
  }
  EXPECT_GT(noisy_total, truth_total * 0.93);
}

TEST(IntegrationTest, DynamicScenarioEndToEnd) {
  // Fig. 6b/6c shape at reduced scale: WOLT stays ahead over epochs while
  // keeping churn near one swap per arrival.
  sim::ScenarioParams p;
  p.num_extenders = 8;
  p.num_users = 0;
  const sim::ScenarioGenerator gen(p);
  model::EvalOptions paper_model;
  paper_model.plc_sharing = model::PlcSharing::kEqualAll;
  core::WoltPolicy wolt;
  core::GreedyPolicy greedy(paper_model);
  std::vector<core::AssociationPolicy*> policies = {&wolt, &greedy};
  sim::DynamicsParams params;
  params.eval = paper_model;
  util::Rng rng(606);
  const auto history = sim::RunDynamicSimulation(gen, policies, params, rng);
  ASSERT_EQ(history.size(), 3u);
  std::size_t total_arrivals = 0, total_reassignments = 0;
  for (const auto& epoch : history) {
    EXPECT_GE(epoch.per_policy[0].aggregate_mbps,
              epoch.per_policy[1].aggregate_mbps * 0.95);
    total_arrivals += epoch.arrivals;
    total_reassignments += epoch.per_policy[0].reassignments;
  }
  EXPECT_LE(total_reassignments,
            2 * total_arrivals + 3 * gen.params().num_extenders);
}

TEST(IntegrationTest, PolicyInterfacePolymorphism) {
  // The public API: all policies usable through the base pointer.
  const model::Network net = testbed::CaseStudyNetwork();
  std::vector<core::PolicyPtr> policies;
  policies.push_back(std::make_unique<core::WoltPolicy>());
  policies.push_back(std::make_unique<core::GreedyPolicy>());
  policies.push_back(std::make_unique<core::RssiPolicy>());
  policies.push_back(std::make_unique<core::OptimalPolicy>());
  const model::Evaluator evaluator;
  std::vector<double> aggregates;
  for (const auto& p : policies) {
    aggregates.push_back(
        evaluator.AggregateThroughput(net, p->AssociateFresh(net)));
  }
  EXPECT_NEAR(aggregates[0], 40.0, 1e-9);          // WOLT
  EXPECT_NEAR(aggregates[1], 30.0, 1e-9);          // Greedy
  EXPECT_NEAR(aggregates[2], 240.0 / 11.0, 1e-9);  // RSSI
  EXPECT_NEAR(aggregates[3], 40.0, 1e-9);          // Optimal
}

}  // namespace
}  // namespace wolt
