// Differential suite for the structure-of-arrays evaluator kernel: over a
// 300-scenario randomized corpus (the same instance family the property
// suite uses — dead backhauls, multiple PLC domains, partial reachability,
// finite demands, unassigned users), Evaluator::Evaluate must produce a
// result BIT-IDENTICAL to Evaluator::EvaluateReference in every field,
// under all three PLC sharing modes and with WiFi co-channel contention.
// No tolerances anywhere: the SoA kernel is a layout change, not a
// numerical one, so any ULP of drift is a bug.
//
// Also pins the scratch contracts the kernel relies on: the cached
// NetworkSoA view is invalidated by network mutation (Version() bump), and
// repeated saturated evaluations through a warm scratch never grow it.
#include <gtest/gtest.h>

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "model/assignment.h"
#include "model/evaluator.h"
#include "model/network.h"
#include "model/soa.h"
#include "util/rng.h"

namespace wolt::model {
namespace {

constexpr int kNumScenarios = 300;

const PlcSharing kAllModes[] = {PlcSharing::kMaxMinActive,
                                PlcSharing::kEqualActive,
                                PlcSharing::kEqualAll};

struct Scenario {
  Network net;
  Assignment assign;
};

// Mirrors the property suite's generator: 1-6 extenders (occasionally with
// a dead backhaul or a second PLC domain), 1-12 users with partial
// reachability, a mix of saturated and finite demands, and a random valid
// assignment that leaves some users unassociated.
Scenario RandomScenario(util::Rng& rng, bool with_demands) {
  const std::size_t num_extenders =
      static_cast<std::size_t>(rng.UniformInt(1, 6));
  const std::size_t num_users =
      static_cast<std::size_t>(rng.UniformInt(1, 12));
  Scenario s;
  s.net = Network(num_users, num_extenders);
  const bool two_domains = num_extenders >= 2 && rng.UniformInt(0, 3) == 0;
  for (std::size_t j = 0; j < num_extenders; ++j) {
    const bool dead = rng.UniformInt(0, 9) == 0;
    s.net.SetPlcRate(j, dead ? 0.0 : rng.Uniform(10.0, 1000.0));
    if (two_domains) {
      s.net.SetPlcDomain(j, static_cast<int>(j % 2));
    }
    if (rng.UniformInt(0, 4) == 0) {
      s.net.SetMaxUsers(j, rng.UniformInt(1, 4));
    }
  }
  for (std::size_t i = 0; i < num_users; ++i) {
    bool reachable = false;
    for (std::size_t j = 0; j < num_extenders; ++j) {
      if (rng.UniformInt(0, 2) == 0) continue;  // out of WiFi range
      s.net.SetWifiRate(i, j, rng.Uniform(1.0, 300.0));
      reachable = true;
    }
    if (!reachable) {  // guarantee at least one link
      s.net.SetWifiRate(i, static_cast<std::size_t>(rng.UniformInt(
                               0, static_cast<int>(num_extenders) - 1)),
                        rng.Uniform(1.0, 300.0));
    }
    if (with_demands && rng.UniformInt(0, 1) == 0) {
      s.net.SetUserDemand(i, rng.Uniform(1.0, 200.0));
    }  // else saturated (demand 0)
  }
  s.assign = Assignment(num_users);
  for (std::size_t i = 0; i < num_users; ++i) {
    if (rng.UniformInt(0, 7) == 0) continue;  // leave unassociated
    std::vector<std::size_t> candidates;
    for (std::size_t j = 0; j < num_extenders; ++j) {
      if (s.net.WifiRate(i, j) > 0.0) candidates.push_back(j);
    }
    if (candidates.empty()) continue;
    s.assign.Assign(i, candidates[static_cast<std::size_t>(rng.UniformInt(
                           0, static_cast<int>(candidates.size()) - 1))]);
  }
  return s;
}

// Every field, compared with EXPECT_EQ — exact, including the FP ones.
void ExpectBitIdentical(const EvalResult& fast, const EvalResult& ref,
                        const std::string& what) {
  ASSERT_EQ(fast.extenders.size(), ref.extenders.size()) << what;
  ASSERT_EQ(fast.user_throughput_mbps.size(), ref.user_throughput_mbps.size())
      << what;
  EXPECT_EQ(fast.aggregate_mbps, ref.aggregate_mbps) << what;
  EXPECT_EQ(fast.active_extenders, ref.active_extenders) << what;
  for (std::size_t j = 0; j < ref.extenders.size(); ++j) {
    const ExtenderReport& f = fast.extenders[j];
    const ExtenderReport& r = ref.extenders[j];
    EXPECT_EQ(f.num_users, r.num_users) << what << " ext " << j;
    EXPECT_EQ(f.wifi_throughput_mbps, r.wifi_throughput_mbps)
        << what << " ext " << j;
    EXPECT_EQ(f.plc_time_share, r.plc_time_share) << what << " ext " << j;
    EXPECT_EQ(f.plc_throughput_mbps, r.plc_throughput_mbps)
        << what << " ext " << j;
    EXPECT_EQ(f.end_to_end_mbps, r.end_to_end_mbps) << what << " ext " << j;
    EXPECT_EQ(f.bottleneck, r.bottleneck) << what << " ext " << j;
  }
  for (std::size_t i = 0; i < ref.user_throughput_mbps.size(); ++i) {
    EXPECT_EQ(fast.user_throughput_mbps[i], ref.user_throughput_mbps[i])
        << what << " user " << i;
  }
}

class EvaluatorSoaTest : public ::testing::TestWithParam<PlcSharing> {};

TEST_P(EvaluatorSoaTest, BitIdenticalToReferenceSaturated) {
  util::Rng rng(0x50a0 + static_cast<std::uint64_t>(GetParam()) * 977u);
  EvalScratch fast_scratch;  // warm across scenarios: exercises SoA reuse
  EvalScratch ref_scratch;
  for (int k = 0; k < kNumScenarios; ++k) {
    const Scenario s = RandomScenario(rng, /*with_demands=*/false);
    Evaluator evaluator(EvalOptions{.plc_sharing = GetParam()});
    const EvalResult fast = evaluator.Evaluate(s.net, s.assign, fast_scratch);
    const EvalResult ref =
        evaluator.EvaluateReference(s.net, s.assign, ref_scratch);
    ExpectBitIdentical(fast, ref, "saturated scenario " + std::to_string(k));
  }
}

TEST_P(EvaluatorSoaTest, BitIdenticalToReferenceWithDemands) {
  util::Rng rng(0xd0a0 + static_cast<std::uint64_t>(GetParam()) * 977u);
  EvalScratch fast_scratch;
  EvalScratch ref_scratch;
  for (int k = 0; k < kNumScenarios; ++k) {
    const Scenario s = RandomScenario(rng, /*with_demands=*/true);
    Evaluator evaluator(EvalOptions{.plc_sharing = GetParam()});
    const EvalResult fast = evaluator.Evaluate(s.net, s.assign, fast_scratch);
    const EvalResult ref =
        evaluator.EvaluateReference(s.net, s.assign, ref_scratch);
    ExpectBitIdentical(fast, ref, "demand scenario " + std::to_string(k));
  }
}

TEST_P(EvaluatorSoaTest, BitIdenticalUnderWifiContention) {
  util::Rng rng(0xc0a0 + static_cast<std::uint64_t>(GetParam()) * 977u);
  EvalScratch fast_scratch;
  EvalScratch ref_scratch;
  for (int k = 0; k < kNumScenarios / 3; ++k) {
    const Scenario s = RandomScenario(rng, /*with_demands=*/false);
    EvalOptions opts{.plc_sharing = GetParam()};
    // All cells share one WiFi channel — the harshest contention layout.
    opts.wifi_contention_domain.assign(s.net.NumExtenders(), 0);
    Evaluator evaluator(opts);
    const EvalResult fast = evaluator.Evaluate(s.net, s.assign, fast_scratch);
    const EvalResult ref =
        evaluator.EvaluateReference(s.net, s.assign, ref_scratch);
    ExpectBitIdentical(fast, ref, "contention scenario " + std::to_string(k));
  }
}

INSTANTIATE_TEST_SUITE_P(AllSharingModes, EvaluatorSoaTest,
                         ::testing::Values(PlcSharing::kMaxMinActive,
                                           PlcSharing::kEqualActive,
                                           PlcSharing::kEqualAll),
                         [](const auto& info) {
                           switch (info.param) {
                             case PlcSharing::kMaxMinActive:
                               return "MaxMinActive";
                             case PlcSharing::kEqualActive:
                               return "EqualActive";
                             case PlcSharing::kEqualAll:
                               return "EqualAll";
                           }
                           return "Unknown";
                         });

// The cached view tracks network mutation: evaluating, mutating a rate, and
// evaluating again must reflect the new rate (a stale SoA view would not).
TEST(NetworkSoaCache, InvalidatedByNetworkMutation) {
  Network net(2, 2);
  net.SetPlcRate(0, 500.0);
  net.SetPlcRate(1, 500.0);
  net.SetWifiRate(0, 0, 100.0);
  net.SetWifiRate(1, 1, 100.0);
  Assignment assign(2);
  assign.Assign(0, 0);
  assign.Assign(1, 1);

  Evaluator evaluator;
  EvalScratch scratch;
  const double before = evaluator.Evaluate(net, assign, scratch).aggregate_mbps;
  net.SetWifiRate(0, 0, 200.0);  // bumps Version(); the view must rebuild
  const double after = evaluator.Evaluate(net, assign, scratch).aggregate_mbps;
  EXPECT_GT(after, before);

  EvalScratch fresh;
  EXPECT_EQ(after, evaluator.Evaluate(net, assign, fresh).aggregate_mbps);
}

// A matching view is reused, a mutated network forces a rebuild.
TEST(NetworkSoaCache, RefreshIsANoOpWhileVersionMatches) {
  Network net(3, 2);
  net.SetPlcRate(0, 500.0);
  net.SetPlcRate(1, 300.0);
  for (std::size_t i = 0; i < 3; ++i) {
    net.SetWifiRate(i, 0, 50.0 + static_cast<double>(i));
    net.SetWifiRate(i, 1, 80.0);
  }
  NetworkSoA soa;
  EXPECT_TRUE(soa.Refresh(net));    // first build
  EXPECT_FALSE(soa.Refresh(net));   // cached
  EXPECT_TRUE(soa.Matches(net));
  net.SetPlcRate(1, 350.0);
  EXPECT_FALSE(soa.Matches(net));
  EXPECT_TRUE(soa.Refresh(net));    // rebuilt after mutation
  EXPECT_EQ(soa.plc_rate[1], 350.0);
}

}  // namespace
}  // namespace wolt::model
