// The sweep engine's determinism contract: over a 200-task grid, the merged
// results of 1-, 2-, 4- and 8-thread runs are bit-identical (exact double
// equality, not tolerance comparison) — including when task completion
// order is deliberately shuffled with per-task sleeps — and reporter output
// is byte-identical across thread counts. Cancellation stops claiming work
// but never corrupts the tasks that did run.
#include <gtest/gtest.h>

#include <chrono>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "sweep/engine.h"
#include "sweep/grid.h"
#include "sweep/report.h"
#include "util/rng.h"

namespace wolt::sweep {
namespace {

// 25 seeds x 2 users x 1 extenders x 2 sharing x 2 policies = 200 tasks.
SweepGrid TestGrid() {
  SweepGrid grid;
  grid.master_seed = 0xD5EEDULL;
  grid.SeedRange(25);
  grid.users = {16, 24};
  grid.extenders = {8};
  grid.sharing = {model::PlcSharing::kMaxMinActive, model::PlcSharing::kEqualAll};
  grid.policies = {PolicyKind::kWolt, PolicyKind::kRssi};
  return grid;
}

SweepResult RunGrid(const SweepGrid& grid, int threads, std::size_t chunk = 0,
                    std::function<void(std::size_t)> before_task = {}) {
  SweepOptions opt;
  opt.threads = threads;
  opt.chunk = chunk;
  opt.before_task = std::move(before_task);
  SweepEngine engine(opt);
  return engine.Run(grid);
}

void ExpectAccumBitIdentical(const util::Accumulator& a,
                             const util::Accumulator& b,
                             const std::string& what) {
  EXPECT_EQ(a.Count(), b.Count()) << what;
  EXPECT_EQ(a.Mean(), b.Mean()) << what;
  EXPECT_EQ(a.Variance(), b.Variance()) << what;
  EXPECT_EQ(a.Min(), b.Min()) << what;
  EXPECT_EQ(a.Max(), b.Max()) << what;
  EXPECT_EQ(a.Sum(), b.Sum()) << what;
  EXPECT_EQ(a.SumSquares(), b.SumSquares()) << what;
  ASSERT_EQ(a.Samples().size(), b.Samples().size()) << what;
  for (std::size_t i = 0; i < a.Samples().size(); ++i) {
    EXPECT_EQ(a.Samples()[i], b.Samples()[i]) << what << " sample " << i;
  }
}

void ExpectBitIdentical(const SweepResult& a, const SweepResult& b,
                        const std::string& what) {
  EXPECT_EQ(a.cancelled, b.cancelled) << what;
  ASSERT_EQ(a.tasks.size(), b.tasks.size()) << what;
  for (std::size_t i = 0; i < a.tasks.size(); ++i) {
    const std::string where = what + " task " + std::to_string(i);
    EXPECT_EQ(a.tasks[i].completed, b.tasks[i].completed) << where;
    EXPECT_EQ(a.tasks[i].error, b.tasks[i].error) << where;
    EXPECT_EQ(a.tasks[i].aggregate_mbps, b.tasks[i].aggregate_mbps) << where;
    EXPECT_EQ(a.tasks[i].jain_fairness, b.tasks[i].jain_fairness) << where;
    ExpectAccumBitIdentical(a.tasks[i].user_throughput,
                            b.tasks[i].user_throughput, where);
  }
  ASSERT_EQ(a.groups.size(), b.groups.size()) << what;
  for (std::size_t g = 0; g < a.groups.size(); ++g) {
    const std::string where = what + " group " + std::to_string(g);
    ExpectAccumBitIdentical(a.groups[g].aggregate_mbps,
                            b.groups[g].aggregate_mbps, where + " aggregate");
    ExpectAccumBitIdentical(a.groups[g].jain, b.groups[g].jain,
                            where + " jain");
    ExpectAccumBitIdentical(a.groups[g].user_throughput,
                            b.groups[g].user_throughput, where + " users");
  }
  // The reporters must emit the same bytes (timings excluded by default).
  EXPECT_EQ(TaskCsvString(a), TaskCsvString(b)) << what;
  EXPECT_EQ(GroupCsvString(a), GroupCsvString(b)) << what;
  EXPECT_EQ(JsonString(a), JsonString(b)) << what;
}

TEST(SweepDeterminismTest, ThreadCountNeverChangesResults) {
  const SweepGrid grid = TestGrid();
  ASSERT_EQ(grid.NumTasks(), 200u);

  const SweepResult baseline = RunGrid(grid, 1);
  ASSERT_FALSE(baseline.cancelled);
  for (const TaskResult& task : baseline.tasks) {
    ASSERT_TRUE(task.completed);
    ASSERT_TRUE(task.error.empty()) << task.error;
    EXPECT_GT(task.aggregate_mbps, 0.0);
  }

  for (int threads : {2, 4, 8}) {
    const SweepResult parallel = RunGrid(grid, threads);
    ExpectBitIdentical(baseline, parallel,
                       "threads=" + std::to_string(threads));
  }
}

TEST(SweepDeterminismTest, ShuffledCompletionOrderChangesNothing) {
  const SweepGrid grid = TestGrid();
  const SweepResult baseline = RunGrid(grid, 1);

  // chunk=1 + deterministic per-task sleeps (keyed on the hashed task index,
  // NOT thread identity) scrambles which executor claims which task and the
  // order results land in memory.
  const auto jitter = [](std::size_t index) {
    const std::uint64_t h = util::HashCombine64(index, 0x5117F1EULL);
    std::this_thread::sleep_for(std::chrono::microseconds(h % 700));
  };
  const SweepResult shuffled = RunGrid(grid, 4, /*chunk=*/1, jitter);
  ExpectBitIdentical(baseline, shuffled, "shuffled");
}

TEST(SweepDeterminismTest, RepeatedRunsAreIdentical) {
  const SweepGrid grid = TestGrid();
  SweepEngine engine(SweepOptions{.threads = 4});
  const SweepResult first = engine.Run(grid);
  const SweepResult second = engine.Run(grid);  // engine state must not leak
  ExpectBitIdentical(first, second, "rerun");
}

TEST(SweepDeterminismTest, CancellationPreservesCompletedTasks) {
  const SweepGrid grid = TestGrid();
  const SweepResult baseline = RunGrid(grid, 1);

  SweepEngine* live = nullptr;
  SweepOptions opt;
  opt.threads = 4;
  opt.chunk = 1;
  opt.before_task = [&live](std::size_t index) {
    if (index == 60) live->Cancel();
  };
  SweepEngine engine(opt);
  live = &engine;
  const SweepResult cancelled = engine.Run(grid);

  EXPECT_TRUE(cancelled.cancelled);
  std::size_t completed = 0;
  for (std::size_t i = 0; i < cancelled.tasks.size(); ++i) {
    if (!cancelled.tasks[i].completed) continue;
    ++completed;
    EXPECT_EQ(cancelled.tasks[i].aggregate_mbps,
              baseline.tasks[i].aggregate_mbps)
        << "task " << i;
    EXPECT_EQ(cancelled.tasks[i].jain_fairness, baseline.tasks[i].jain_fairness)
        << "task " << i;
  }
  EXPECT_GE(completed, 1u);
  EXPECT_LT(completed, grid.NumTasks());
}

TEST(SweepDeterminismTest, ToPolicyTrialsStableAcrossThreads) {
  SweepGrid grid;
  grid.master_seed = 77;
  grid.SeedRange(8);
  grid.users = {12};
  grid.extenders = {6};
  grid.sharing = {model::PlcSharing::kMaxMinActive};
  grid.policies = {PolicyKind::kWolt, PolicyKind::kGreedy, PolicyKind::kRssi};

  const auto seq = ToPolicyTrials(grid, RunGrid(grid, 1));
  const auto par = ToPolicyTrials(grid, RunGrid(grid, 8));
  ASSERT_EQ(seq.size(), par.size());
  ASSERT_EQ(seq.size(), grid.policies.size());
  for (std::size_t p = 0; p < seq.size(); ++p) {
    EXPECT_EQ(seq[p].policy, par[p].policy);
    ASSERT_EQ(seq[p].trials.size(), par[p].trials.size());
    ASSERT_EQ(seq[p].trials.size(), grid.seeds.size());
    for (std::size_t t = 0; t < seq[p].trials.size(); ++t) {
      EXPECT_EQ(seq[p].trials[t].aggregate_mbps,
                par[p].trials[t].aggregate_mbps);
      EXPECT_EQ(seq[p].trials[t].user_throughput_mbps,
                par[p].trials[t].user_throughput_mbps);
    }
  }
}

}  // namespace
}  // namespace wolt::sweep
