#include "assign/hungarian.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <stdexcept>
#include <vector>

#include "util/rng.h"

namespace wolt::assign {
namespace {

// Exhaustive reference for small instances: max-utility assignment of a
// distinct column to every row.
double BruteForceBest(const Matrix& utilities) {
  const std::size_t rows = utilities.rows();
  const std::size_t cols = utilities.cols();
  std::vector<std::size_t> perm(cols);
  for (std::size_t c = 0; c < cols; ++c) perm[c] = c;
  double best = -1e30;
  do {
    double total = 0.0;
    bool feasible = true;
    for (std::size_t r = 0; r < rows; ++r) {
      if (utilities(r, perm[r]) == kForbidden) {
        feasible = false;
        break;
      }
      total += utilities(r, perm[r]);
    }
    if (feasible) best = std::max(best, total);
  } while (std::next_permutation(perm.begin(), perm.end()));
  return best;
}

TEST(HungarianTest, RejectsBadShapes) {
  EXPECT_THROW(SolveAssignmentMax({}), std::invalid_argument);
  EXPECT_THROW(SolveAssignmentMax({{}}), std::invalid_argument);
  EXPECT_THROW(SolveAssignmentMax({{1.0}, {2.0, 3.0}}),
               std::invalid_argument);
  // rows > cols rejected.
  EXPECT_THROW(SolveAssignmentMax({{1.0}, {2.0}}), std::invalid_argument);
}

TEST(HungarianTest, TrivialSingleCell) {
  const HungarianResult r = SolveAssignmentMax({{7.0}});
  EXPECT_EQ(r.col_of_row[0], 0);
  EXPECT_DOUBLE_EQ(r.total_utility, 7.0);
  EXPECT_TRUE(r.feasible);
}

TEST(HungarianTest, KnownSquareInstance) {
  // Classic: optimal picks the anti-diagonal.
  const Matrix u = {{1.0, 2.0, 3.0},
                    {2.0, 4.0, 6.0},
                    {3.0, 6.0, 9.0}};
  const HungarianResult r = SolveAssignmentMax(u);
  // Optimal total is 3 + 4 + 3? Verify against brute force instead of
  // hand-deriving.
  EXPECT_DOUBLE_EQ(r.total_utility, BruteForceBest(u));
}

TEST(HungarianTest, AssignmentIsAPartialInjection) {
  const Matrix u = {{5.0, 1.0, 8.0, 2.0}, {7.0, 6.0, 1.0, 3.0}};
  const HungarianResult r = SolveAssignmentMax(u);
  std::set<int> cols(r.col_of_row.begin(), r.col_of_row.end());
  EXPECT_EQ(cols.size(), r.col_of_row.size());  // distinct columns
  for (int c : r.col_of_row) {
    EXPECT_GE(c, 0);
    EXPECT_LT(c, 4);
  }
}

TEST(HungarianTest, RectangularPicksBestColumns) {
  // One row, many columns: must take the max.
  const Matrix u = {{3.0, 9.0, 1.0, 4.0}};
  const HungarianResult r = SolveAssignmentMax(u);
  EXPECT_EQ(r.col_of_row[0], 1);
  EXPECT_DOUBLE_EQ(r.total_utility, 9.0);
}

TEST(HungarianTest, ForbiddenPairsAvoidedWhenPossible) {
  const Matrix u = {{kForbidden, 5.0}, {4.0, kForbidden}};
  const HungarianResult r = SolveAssignmentMax(u);
  EXPECT_TRUE(r.feasible);
  EXPECT_EQ(r.col_of_row[0], 1);
  EXPECT_EQ(r.col_of_row[1], 0);
  EXPECT_DOUBLE_EQ(r.total_utility, 9.0);
}

TEST(HungarianTest, InfeasibleInstanceFlagged) {
  const Matrix u = {{kForbidden, kForbidden}, {4.0, 2.0}};
  const HungarianResult r = SolveAssignmentMax(u);
  EXPECT_FALSE(r.feasible);
}

TEST(HungarianTest, MinimizationTwin) {
  const Matrix costs = {{4.0, 1.0, 3.0},
                        {2.0, 0.0, 5.0},
                        {3.0, 2.0, 2.0}};
  const HungarianResult r = SolveAssignmentMin(costs);
  // Known optimum: rows pick cols (1,0,2) => 1+2+2 = 5.
  EXPECT_DOUBLE_EQ(r.total_utility, 5.0);
}

TEST(HungarianTest, NegativeUtilitiesHandled) {
  const Matrix u = {{-1.0, -5.0}, {-3.0, -2.0}};
  const HungarianResult r = SolveAssignmentMax(u);
  EXPECT_DOUBLE_EQ(r.total_utility, BruteForceBest(u));  // -3
}

// Property: Hungarian matches brute force on random instances.
class HungarianRandomTest : public ::testing::TestWithParam<int> {};

TEST_P(HungarianRandomTest, MatchesBruteForce) {
  util::Rng rng(static_cast<std::uint64_t>(GetParam()) * 104729);
  const int rows = rng.UniformInt(1, 5);
  const int cols = rng.UniformInt(rows, 7);
  Matrix u(static_cast<std::size_t>(rows), static_cast<std::size_t>(cols),
           0.0);
  for (std::size_t k = 0; k < u.size(); ++k) {
    u.data()[k] = rng.Bernoulli(0.1) ? kForbidden : rng.Uniform(0.0, 100.0);
  }
  const double reference = BruteForceBest(u);
  if (reference < -1e29) return;  // instance wholly infeasible
  const HungarianResult r = SolveAssignmentMax(u);
  if (!r.feasible) {
    // Solver may declare infeasibility only when brute force also failed —
    // checked above, so reaching here is a failure.
    FAIL() << "solver infeasible on a feasible instance";
  }
  EXPECT_NEAR(r.total_utility, reference, 1e-6);
}

INSTANTIATE_TEST_SUITE_P(Seeds, HungarianRandomTest, ::testing::Range(1, 61));

// Scaling smoke test: the O(n^3) solver handles enterprise-size matrices
// (15 extenders x 200 users) instantly.
TEST(HungarianTest, EnterpriseScaleRunsFast) {
  util::Rng rng(2024);
  const std::size_t rows = 15, cols = 200;
  Matrix u(rows, cols, 0.0);
  for (std::size_t k = 0; k < u.size(); ++k) {
    u.data()[k] = rng.Uniform(1.0, 100.0);
  }
  const HungarianResult r = SolveAssignmentMax(u);
  EXPECT_TRUE(r.feasible);
  std::set<int> cols_used(r.col_of_row.begin(), r.col_of_row.end());
  EXPECT_EQ(cols_used.size(), rows);
}

}  // namespace
}  // namespace wolt::assign
