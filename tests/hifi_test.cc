#include "sim/hifi.h"

#include <gtest/gtest.h>

#include <stdexcept>

#include "core/greedy.h"
#include "core/optimal.h"
#include "core/rssi.h"
#include "core/wolt.h"
#include "model/evaluator.h"
#include "testbed/lab.h"
#include "util/rng.h"

namespace wolt::sim {
namespace {

// The case-study rates were chosen as effective rates; use efficiency 1.0
// so the DCF sim sees them as PHY rates of comparable magnitude.
HifiParams CaseStudyParams() {
  HifiParams p;
  p.wifi_mac_efficiency = 0.65;
  return p;
}

TEST(HifiTest, RejectsBadInputs) {
  const model::Network net = testbed::CaseStudyNetwork();
  util::Rng rng(1);
  EXPECT_THROW(SimulateHifi(net, model::Assignment(5), {}, rng),
               std::invalid_argument);
  model::Assignment a(2);
  a.Assign(0, 0);
  HifiParams bad;
  bad.wifi_mac_efficiency = 0.0;
  EXPECT_THROW(SimulateHifi(net, a, bad, rng), std::invalid_argument);
  model::Network dead = net;
  dead.SetPlcRate(0, 0.0);
  EXPECT_THROW(SimulateHifi(dead, a, {}, rng), std::invalid_argument);
}

TEST(HifiTest, EmptyAssignmentYieldsZero) {
  const model::Network net = testbed::CaseStudyNetwork();
  util::Rng rng(2);
  const HifiResult r =
      SimulateHifi(net, model::Assignment(2), CaseStudyParams(), rng);
  EXPECT_DOUBLE_EQ(r.aggregate_mbps, 0.0);
}

TEST(HifiTest, TracksFlowModelOnCaseStudy) {
  const model::Network net = testbed::CaseStudyNetwork();
  util::Rng rng(3);
  const model::Evaluator evaluator;
  for (const auto& [e0, e1] : std::vector<std::pair<int, int>>{
           {0, 0}, {0, 1}, {1, 0}, {1, 1}}) {
    model::Assignment a(2);
    a.Assign(0, static_cast<std::size_t>(e0));
    a.Assign(1, static_cast<std::size_t>(e1));
    const double flow = evaluator.AggregateThroughput(net, a);
    const HifiResult hifi = SimulateHifi(net, a, CaseStudyParams(), rng);
    EXPECT_NEAR(hifi.aggregate_mbps, flow, flow * 0.25)
        << "assignment " << e0 << "," << e1;
  }
}

TEST(HifiTest, PreservesThePolicyOrdering) {
  // The reproduction's Fig. 4c claim: conclusions drawn from the flow model
  // survive at MAC level. Optimal > RSSI on the case study in both models.
  const model::Network net = testbed::CaseStudyNetwork();
  util::Rng rng(4);
  core::OptimalPolicy optimal;
  core::RssiPolicy rssi;
  const HifiResult best = SimulateHifi(net, optimal.AssociateFresh(net),
                                       CaseStudyParams(), rng);
  const HifiResult worst =
      SimulateHifi(net, rssi.AssociateFresh(net), CaseStudyParams(), rng);
  EXPECT_GT(best.aggregate_mbps, worst.aggregate_mbps * 1.3);
}

TEST(HifiTest, TracksFlowModelOnLabTopologies) {
  const testbed::LabTestbed lab;
  util::Rng rng(5);
  const model::Evaluator evaluator;
  core::WoltPolicy wolt;
  double ratio_sum = 0.0;
  const int kTopologies = 5;
  for (int t = 0; t < kTopologies; ++t) {
    util::Rng topo_rng = rng.Fork();
    const model::Network net = lab.GenerateTopology(topo_rng);
    const model::Assignment a = wolt.AssociateFresh(net);
    const double flow = evaluator.AggregateThroughput(net, a);
    const HifiResult hifi = SimulateHifi(net, a, HifiParams{}, rng);
    ratio_sum += hifi.aggregate_mbps / flow;
  }
  // MAC overhead biases the simulation slightly below the formulas; the
  // two must stay within ~20% on average.
  const double mean_ratio = ratio_sum / kTopologies;
  EXPECT_GT(mean_ratio, 0.7);
  EXPECT_LT(mean_ratio, 1.15);
}

TEST(HifiTest, UserThroughputsSumToExtenderThroughput) {
  const model::Network net = testbed::CaseStudyNetwork();
  util::Rng rng(6);
  model::Assignment a(2);
  a.Assign(0, 0);
  a.Assign(1, 0);
  const HifiResult r = SimulateHifi(net, a, CaseStudyParams(), rng);
  EXPECT_NEAR(r.user_throughput_mbps[0] + r.user_throughput_mbps[1],
              r.extender_mbps[0], 1e-9);
  // Throughput-fair cell: the two users end up close to each other.
  EXPECT_NEAR(r.user_throughput_mbps[0], r.user_throughput_mbps[1],
              0.2 * r.user_throughput_mbps[0] + 0.5);
}

TEST(HifiTest, DeterministicGivenSeed) {
  const model::Network net = testbed::CaseStudyNetwork();
  model::Assignment a(2);
  a.Assign(0, 1);
  a.Assign(1, 0);
  util::Rng r1(9), r2(9);
  const HifiResult x = SimulateHifi(net, a, CaseStudyParams(), r1);
  const HifiResult y = SimulateHifi(net, a, CaseStudyParams(), r2);
  EXPECT_DOUBLE_EQ(x.aggregate_mbps, y.aggregate_mbps);
}

}  // namespace
}  // namespace wolt::sim
