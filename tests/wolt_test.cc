#include "core/wolt.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "assign/brute_force.h"
#include "core/greedy.h"
#include "core/rssi.h"
#include "model/evaluator.h"
#include "testbed/lab.h"
#include "util/rng.h"

namespace wolt::core {
namespace {

model::Network RandomNetwork(util::Rng& rng, std::size_t users,
                             std::size_t exts) {
  model::Network net(users, exts);
  for (std::size_t j = 0; j < exts; ++j) {
    net.SetPlcRate(j, rng.Uniform(20.0, 160.0));
  }
  for (std::size_t i = 0; i < users; ++i) {
    for (std::size_t j = 0; j < exts; ++j) {
      net.SetWifiRate(i, j, rng.Uniform(5.0, 65.0));
    }
  }
  return net;
}

TEST(WoltPhase1Test, CaseStudyUtilitiesAndAssignment) {
  // Utilities u_ij = min(c_j/2, r_ij):
  //   user1: ext1 min(30,15)=15, ext2 min(10,10)=10
  //   user2: ext1 min(30,40)=30, ext2 min(10,20)=10
  // Hungarian optimum: user2->ext1 (30) + user1->ext2 (10) = 40.
  const model::Network net = testbed::CaseStudyNetwork();
  WoltPolicy wolt;
  const Phase1Result p1 = wolt.ComputePhase1(net);
  EXPECT_EQ(p1.user_of_extender[0], 1);
  EXPECT_EQ(p1.user_of_extender[1], 0);
  EXPECT_NEAR(p1.total_utility, 40.0, 1e-9);
  EXPECT_EQ(p1.u1_users, (std::vector<std::size_t>{0, 1}));
}

TEST(WoltTest, CaseStudyReachesOptimal40) {
  const model::Network net = testbed::CaseStudyNetwork();
  WoltPolicy wolt;
  const model::Assignment a = wolt.AssociateFresh(net);
  EXPECT_NEAR(model::Evaluator().AggregateThroughput(net, a), 40.0, 1e-9);
}

TEST(WoltPhase1Test, OneUserPerExtenderWhenUsersAbound) {
  util::Rng rng(11);
  const model::Network net = RandomNetwork(rng, 10, 4);
  WoltPolicy wolt;
  const Phase1Result p1 = wolt.ComputePhase1(net);
  EXPECT_EQ(p1.u1_users.size(), 4u);  // Lemma 2: exactly |A| users
  // All selected users distinct.
  std::vector<std::size_t> sorted = p1.u1_users;
  std::sort(sorted.begin(), sorted.end());
  EXPECT_TRUE(std::adjacent_find(sorted.begin(), sorted.end()) ==
              sorted.end());
}

TEST(WoltPhase1Test, FewerUsersThanExtendersAssignsAllUsers) {
  util::Rng rng(13);
  const model::Network net = RandomNetwork(rng, 2, 5);
  WoltPolicy wolt;
  const Phase1Result p1 = wolt.ComputePhase1(net);
  EXPECT_EQ(p1.u1_users.size(), 2u);
  const model::Assignment a = wolt.AssociateFresh(net);
  EXPECT_TRUE(a.IsCompleteFor(net));
}

TEST(WoltPhase1Test, DeadPlcLinkExcluded) {
  model::Network net = testbed::CaseStudyNetwork();
  net.SetPlcRate(1, 0.0);  // extender 2's power-line link is dead
  WoltPolicy wolt;
  const Phase1Result p1 = wolt.ComputePhase1(net);
  EXPECT_EQ(p1.user_of_extender[1], -1);
}

TEST(WoltTest, CompleteAssignmentOnRandomNetworks) {
  for (int seed = 1; seed <= 20; ++seed) {
    util::Rng rng(static_cast<std::uint64_t>(seed) * 211);
    const model::Network net = RandomNetwork(rng, 12, 4);
    WoltPolicy wolt;
    const model::Assignment a = wolt.AssociateFresh(net);
    EXPECT_TRUE(a.IsCompleteFor(net)) << "seed=" << seed;
  }
}

TEST(WoltTest, UnreachableUsersLeftUnassigned) {
  model::Network net(3, 2);
  net.SetPlcRate(0, 100.0);
  net.SetPlcRate(1, 100.0);
  net.SetWifiRate(0, 0, 20.0);
  net.SetWifiRate(1, 1, 20.0);
  // user 2 hears nothing.
  WoltPolicy wolt;
  const model::Assignment a = wolt.AssociateFresh(net);
  EXPECT_TRUE(a.IsAssigned(0));
  EXPECT_TRUE(a.IsAssigned(1));
  EXPECT_FALSE(a.IsAssigned(2));
}

TEST(WoltTest, MatchesBruteForceCloselyOnSmallInstances) {
  // WOLT is a heuristic for an NP-hard problem; on small random instances
  // it should land within a few percent of the exhaustive optimum and never
  // beat it.
  double total_ratio = 0.0;
  const int cases = 25;
  const model::Evaluator evaluator;
  for (int seed = 1; seed <= cases; ++seed) {
    util::Rng rng(static_cast<std::uint64_t>(seed) * 449);
    const model::Network net = RandomNetwork(rng, 6, 3);
    WoltPolicy wolt;
    const model::Assignment a = wolt.AssociateFresh(net);
    const double wolt_agg = evaluator.AggregateThroughput(net, a);
    const double opt = assign::SolveBruteForce(net).best_aggregate_mbps;
    EXPECT_LE(wolt_agg, opt + 1e-6) << "seed=" << seed;
    total_ratio += wolt_agg / opt;
  }
  EXPECT_GE(total_ratio / cases, 0.9);
}

TEST(WoltTest, BeatsRssiOnAverage) {
  const model::Evaluator evaluator;
  double wolt_total = 0.0, rssi_total = 0.0;
  for (int seed = 1; seed <= 25; ++seed) {
    util::Rng rng(static_cast<std::uint64_t>(seed) * 577);
    const model::Network net = RandomNetwork(rng, 10, 3);
    WoltPolicy wolt;
    RssiPolicy rssi;
    wolt_total += evaluator.AggregateThroughput(net, wolt.AssociateFresh(net));
    rssi_total += evaluator.AggregateThroughput(net, rssi.AssociateFresh(net));
  }
  EXPECT_GT(wolt_total, rssi_total);
}

TEST(WoltTest, NearGreedyOnUnstructuredRandomRates) {
  // On fully unstructured (uniform-random) rate matrices the paper-default
  // WOLT (WiFi-sum Phase II) can trail the end-to-end-aware greedy slightly;
  // it must stay within a few percent. The paper's structured scenarios
  // (geographic rates, diverse PLC) are covered by the Fig. 4/6 benches and
  // tests below.
  const model::Evaluator evaluator;
  double wolt_total = 0.0, greedy_total = 0.0;
  for (int seed = 1; seed <= 25; ++seed) {
    util::Rng rng(static_cast<std::uint64_t>(seed) * 613);
    const model::Network net = RandomNetwork(rng, 10, 3);
    WoltPolicy wolt;
    GreedyPolicy greedy;
    wolt_total += evaluator.AggregateThroughput(net, wolt.AssociateFresh(net));
    greedy_total +=
        evaluator.AggregateThroughput(net, greedy.AssociateFresh(net));
  }
  EXPECT_GT(wolt_total, greedy_total * 0.95);
}

TEST(WoltTest, EndToEndPhase2BeatsGreedyOnRandomRates) {
  // The end-to-end Phase-II extension closes the unstructured-rates gap.
  const model::Evaluator evaluator;
  double wolt_total = 0.0, greedy_total = 0.0;
  for (int seed = 1; seed <= 25; ++seed) {
    util::Rng rng(static_cast<std::uint64_t>(seed) * 613);
    const model::Network net = RandomNetwork(rng, 10, 3);
    WoltOptions opts;
    opts.phase2_objective = assign::Phase2Objective::kEndToEnd;
    WoltPolicy wolt(opts);
    GreedyPolicy greedy;
    wolt_total += evaluator.AggregateThroughput(net, wolt.AssociateFresh(net));
    greedy_total +=
        evaluator.AggregateThroughput(net, greedy.AssociateFresh(net));
  }
  EXPECT_GT(wolt_total, greedy_total * 0.99);
}

TEST(WoltTest, StickyReassociationBoundsChurn) {
  // Re-associating after adding one user should not shuffle everyone.
  util::Rng rng(17);
  model::Network net = RandomNetwork(rng, 12, 3);
  WoltPolicy wolt;
  const model::Assignment before = wolt.AssociateFresh(net);

  // One arrival.
  std::vector<double> rates(net.NumExtenders());
  for (std::size_t j = 0; j < rates.size(); ++j) {
    rates[j] = rng.Uniform(5.0, 65.0);
  }
  net.AddUser(model::User{}, rates);
  model::Assignment prev = before;
  prev.AppendUser();
  const model::Assignment after = wolt.Associate(net, prev);

  const std::size_t churn = model::Assignment::CountReassignments(prev, after);
  // Fig. 6c: about one swap per arrival; allow some slack plus Phase I churn
  // (at most |A| seeds can move).
  EXPECT_LE(churn, 2u + net.NumExtenders());
}

TEST(WoltTest, NonStickyStillValid) {
  util::Rng rng(19);
  const model::Network net = RandomNetwork(rng, 10, 3);
  WoltOptions opts;
  opts.sticky = false;
  WoltPolicy wolt(opts);
  EXPECT_TRUE(wolt.AssociateFresh(net).IsCompleteFor(net));
}

TEST(WoltTest, NlpPhase2Variant) {
  util::Rng rng(23);
  const model::Network net = RandomNetwork(rng, 8, 3);
  WoltOptions opts;
  opts.use_nlp_phase2 = true;
  WoltPolicy wolt(opts);
  const model::Assignment a = wolt.AssociateFresh(net);
  EXPECT_TRUE(a.IsCompleteFor(net));
  // NLP and discrete Phase II should land on comparable aggregates.
  WoltPolicy discrete;
  const double nlp_agg =
      model::Evaluator().AggregateThroughput(net, a);
  const double discrete_agg = model::Evaluator().AggregateThroughput(
      net, discrete.AssociateFresh(net));
  EXPECT_NEAR(nlp_agg, discrete_agg, discrete_agg * 0.25);
}

TEST(WoltTest, WifiOnlyUtilityAblationDegradesPlcAwareness) {
  // With rich PLC diversity the paper's min(c/|A|, r) utility should beat a
  // WiFi-only Phase I on average (this is the core insight of the paper).
  const model::Evaluator evaluator;
  double paper_total = 0.0, naive_total = 0.0;
  for (int seed = 1; seed <= 30; ++seed) {
    util::Rng rng(static_cast<std::uint64_t>(seed) * 89);
    model::Network net = RandomNetwork(rng, 8, 3);
    // Exaggerate PLC diversity: one strong link, two weak.
    net.SetPlcRate(0, 160.0);
    net.SetPlcRate(1, 25.0);
    net.SetPlcRate(2, 25.0);
    WoltPolicy paper;
    WoltOptions naive_opts;
    naive_opts.phase1_utility = Phase1Utility::kWifiOnly;
    WoltPolicy naive(naive_opts);
    paper_total +=
        evaluator.AggregateThroughput(net, paper.AssociateFresh(net));
    naive_total +=
        evaluator.AggregateThroughput(net, naive.AssociateFresh(net));
  }
  EXPECT_GE(paper_total, naive_total * 0.99);
}

TEST(WoltTest, SubsetSearchDominatesPlainWoltAtScale) {
  // Extension result: under physical (active-only max-min) PLC sharing,
  // force-activating every extender is wasteful at enterprise scale;
  // best-of-k activation must never do worse and should win clearly on
  // average.
  const model::Evaluator evaluator;
  double plain_total = 0.0, subset_total = 0.0;
  for (int seed = 1; seed <= 10; ++seed) {
    util::Rng rng(static_cast<std::uint64_t>(seed) * 1009);
    model::Network net = RandomNetwork(rng, 15, 8);
    // Diverse PLC links make over-activation costly.
    for (std::size_t j = 0; j < 8; ++j) {
      net.SetPlcRate(j, j < 2 ? 160.0 : 40.0);
    }
    WoltPolicy plain;
    WoltOptions so;
    so.subset_search = true;
    WoltPolicy subset(so);
    const double p =
        evaluator.AggregateThroughput(net, plain.AssociateFresh(net));
    const double s =
        evaluator.AggregateThroughput(net, subset.AssociateFresh(net));
    EXPECT_GE(s, p - 1e-6) << "seed=" << seed;
    plain_total += p;
    subset_total += s;
  }
  EXPECT_GT(subset_total, plain_total * 1.05);
}

TEST(WoltTest, SubsetSearchKeepsEveryoneConnected) {
  util::Rng rng(31);
  const model::Network net = RandomNetwork(rng, 12, 5);
  WoltOptions so;
  so.subset_search = true;
  WoltPolicy subset(so);
  EXPECT_TRUE(subset.AssociateFresh(net).IsCompleteFor(net));
  EXPECT_EQ(subset.Name(), "WOLT-S");
}

TEST(WoltTest, SubsetSearchMatchesCaseStudyOptimum) {
  const model::Network net = testbed::CaseStudyNetwork();
  WoltOptions so;
  so.subset_search = true;
  WoltPolicy subset(so);
  const model::Assignment a = subset.AssociateFresh(net);
  EXPECT_NEAR(model::Evaluator().AggregateThroughput(net, a), 40.0, 1e-9);
}

TEST(WoltTest, PreviousSizeMismatchThrows) {
  const model::Network net = testbed::CaseStudyNetwork();
  WoltPolicy wolt;
  EXPECT_THROW(wolt.Associate(net, model::Assignment(5)),
               std::invalid_argument);
}

TEST(WoltTest, NameIsWolt) {
  EXPECT_EQ(WoltPolicy().Name(), "WOLT");
}

}  // namespace
}  // namespace wolt::core
