#include "sim/des.h"

#include <gtest/gtest.h>

#include <stdexcept>
#include <vector>

namespace wolt::sim {
namespace {

TEST(EventQueueTest, RunsInTimeOrder) {
  EventQueue q;
  std::vector<int> order;
  q.ScheduleAt(3.0, [&] { order.push_back(3); });
  q.ScheduleAt(1.0, [&] { order.push_back(1); });
  q.ScheduleAt(2.0, [&] { order.push_back(2); });
  q.RunUntil(10.0);
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_DOUBLE_EQ(q.Now(), 10.0);
}

TEST(EventQueueTest, FifoAmongSimultaneousEvents) {
  EventQueue q;
  std::vector<int> order;
  for (int k = 0; k < 5; ++k) {
    q.ScheduleAt(1.0, [&order, k] { order.push_back(k); });
  }
  q.RunUntil(1.0);
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(EventQueueTest, RunUntilStopsAtDeadline) {
  EventQueue q;
  int fired = 0;
  q.ScheduleAt(1.0, [&] { ++fired; });
  q.ScheduleAt(5.0, [&] { ++fired; });
  q.RunUntil(2.0);
  EXPECT_EQ(fired, 1);
  EXPECT_DOUBLE_EQ(q.Now(), 2.0);
  EXPECT_EQ(q.Pending(), 1u);
  q.RunUntil(10.0);
  EXPECT_EQ(fired, 2);
}

TEST(EventQueueTest, EventsCanScheduleEvents) {
  EventQueue q;
  int count = 0;
  std::function<void()> chain = [&] {
    if (++count < 5) q.ScheduleAfter(1.0, chain);
  };
  q.ScheduleAt(0.5, chain);
  q.RunUntil(100.0);
  EXPECT_EQ(count, 5);
  EXPECT_DOUBLE_EQ(q.Now(), 100.0);
}

TEST(EventQueueTest, SchedulingIntoThePastThrows) {
  EventQueue q;
  q.ScheduleAt(5.0, [] {});
  q.RunUntil(5.0);
  EXPECT_THROW(q.ScheduleAt(1.0, [] {}), std::invalid_argument);
  EXPECT_THROW(q.ScheduleAfter(-1.0, [] {}), std::invalid_argument);
}

TEST(EventQueueTest, RunNextAdvancesClock) {
  EventQueue q;
  q.ScheduleAt(2.5, [] {});
  EXPECT_TRUE(q.RunNext());
  EXPECT_DOUBLE_EQ(q.Now(), 2.5);
  EXPECT_FALSE(q.RunNext());
}

TEST(EventQueueTest, ClearDropsPendingEvents) {
  EventQueue q;
  int fired = 0;
  q.ScheduleAt(1.0, [&] { ++fired; });
  q.ScheduleAt(2.0, [&] { ++fired; });
  q.Clear();
  EXPECT_TRUE(q.Empty());
  q.RunUntil(5.0);
  EXPECT_EQ(fired, 0);
}

TEST(EventQueueTest, ScheduleAfterUsesCurrentTime) {
  EventQueue q;
  double fire_time = -1.0;
  q.ScheduleAt(3.0, [&] {
    q.ScheduleAfter(2.0, [&] { fire_time = q.Now(); });
  });
  q.RunUntil(10.0);
  EXPECT_DOUBLE_EQ(fire_time, 5.0);
}

}  // namespace
}  // namespace wolt::sim
