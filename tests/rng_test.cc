#include "util/rng.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <numeric>
#include <set>
#include <vector>

namespace wolt::util {
namespace {

TEST(RngTest, DeterministicForSameSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 1000; ++i) {
    ASSERT_EQ(a.Next(), b.Next());
  }
}

TEST(RngTest, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int differing = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.Next() != b.Next()) ++differing;
  }
  EXPECT_GT(differing, 95);
}

TEST(RngTest, NextDoubleInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 100000; ++i) {
    const double x = rng.NextDouble();
    ASSERT_GE(x, 0.0);
    ASSERT_LT(x, 1.0);
  }
}

TEST(RngTest, NextDoubleMeanNearHalf) {
  Rng rng(7);
  double sum = 0.0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) sum += rng.NextDouble();
  EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(RngTest, UniformRespectsBounds) {
  Rng rng(11);
  for (int i = 0; i < 10000; ++i) {
    const double x = rng.Uniform(-3.0, 5.0);
    ASSERT_GE(x, -3.0);
    ASSERT_LT(x, 5.0);
  }
}

TEST(RngTest, UniformIntInclusiveAndCoversRange) {
  Rng rng(13);
  std::set<int> seen;
  for (int i = 0; i < 10000; ++i) {
    const int x = rng.UniformInt(2, 6);
    ASSERT_GE(x, 2);
    ASSERT_LE(x, 6);
    seen.insert(x);
  }
  EXPECT_EQ(seen.size(), 5u);
}

TEST(RngTest, UniformIntDegenerateRange) {
  Rng rng(13);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(rng.UniformInt(4, 4), 4);
}

TEST(RngTest, NormalMomentsMatch) {
  Rng rng(17);
  const int n = 200000;
  double sum = 0.0, sum_sq = 0.0;
  for (int i = 0; i < n; ++i) {
    const double x = rng.Normal(2.0, 3.0);
    sum += x;
    sum_sq += x * x;
  }
  const double mean = sum / n;
  const double var = sum_sq / n - mean * mean;
  EXPECT_NEAR(mean, 2.0, 0.05);
  EXPECT_NEAR(std::sqrt(var), 3.0, 0.05);
}

TEST(RngTest, ExponentialMeanMatchesRate) {
  Rng rng(19);
  const int n = 200000;
  double sum = 0.0;
  for (int i = 0; i < n; ++i) {
    const double x = rng.Exponential(4.0);
    ASSERT_GE(x, 0.0);
    sum += x;
  }
  EXPECT_NEAR(sum / n, 0.25, 0.01);
}

TEST(RngTest, LogNormalIsPositive) {
  Rng rng(23);
  for (int i = 0; i < 10000; ++i) {
    ASSERT_GT(rng.LogNormal(0.0, 0.5), 0.0);
  }
}

class RngPoissonTest : public ::testing::TestWithParam<double> {};

TEST_P(RngPoissonTest, MeanAndVarianceMatch) {
  const double mean = GetParam();
  Rng rng(29);
  const int n = 100000;
  double sum = 0.0, sum_sq = 0.0;
  for (int i = 0; i < n; ++i) {
    const int k = rng.Poisson(mean);
    ASSERT_GE(k, 0);
    sum += k;
    sum_sq += static_cast<double>(k) * k;
  }
  const double sample_mean = sum / n;
  const double sample_var = sum_sq / n - sample_mean * sample_mean;
  EXPECT_NEAR(sample_mean, mean, std::max(0.05, mean * 0.03));
  EXPECT_NEAR(sample_var, mean, std::max(0.1, mean * 0.06));
}

INSTANTIATE_TEST_SUITE_P(Means, RngPoissonTest,
                         ::testing::Values(0.5, 3.0, 12.0, 36.0, 100.0));

TEST(RngTest, PoissonZeroMeanIsZero) {
  Rng rng(31);
  EXPECT_EQ(rng.Poisson(0.0), 0);
  EXPECT_EQ(rng.Poisson(-1.0), 0);
}

TEST(RngTest, BernoulliFrequencyMatches) {
  Rng rng(37);
  int hits = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    if (rng.Bernoulli(0.3)) ++hits;
  }
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.01);
}

TEST(RngTest, ShuffleIsPermutation) {
  Rng rng(41);
  std::vector<int> v(100);
  std::iota(v.begin(), v.end(), 0);
  std::vector<int> shuffled = v;
  rng.Shuffle(shuffled);
  EXPECT_NE(shuffled, v);  // astronomically unlikely to be identity
  std::sort(shuffled.begin(), shuffled.end());
  EXPECT_EQ(shuffled, v);
}

TEST(RngTest, ForkProducesIndependentStream) {
  Rng parent(43);
  Rng child = parent.Fork();
  int matches = 0;
  for (int i = 0; i < 100; ++i) {
    if (parent.Next() == child.Next()) ++matches;
  }
  EXPECT_LT(matches, 3);
}

TEST(RngTest, SplitMix64KnownSequenceIsStable) {
  std::uint64_t s1 = 1, s2 = 1;
  for (int i = 0; i < 10; ++i) {
    ASSERT_EQ(SplitMix64(s1), SplitMix64(s2));
  }
}

TEST(RngTest, SubstreamZeroMatchesDirectSeeding) {
  // The sweep engine's determinism hinges on this identity: stream 0 of a
  // master seed IS the plain generator for that seed.
  for (std::uint64_t seed : {0ULL, 1ULL, 42ULL, 0xDEADBEEFULL}) {
    Rng direct(seed);
    Rng stream = Rng::Substream(seed, 0);
    for (int i = 0; i < 64; ++i) {
      ASSERT_EQ(direct.Next(), stream.Next()) << "seed " << seed;
    }
  }
}

TEST(RngTest, SubstreamIsPureFunctionOfSeedAndIndex) {
  Rng a = Rng::Substream(123, 7);
  Rng b = Rng::Substream(123, 7);  // derivation order / history irrelevant
  for (int i = 0; i < 64; ++i) ASSERT_EQ(a.Next(), b.Next());
}

TEST(RngTest, SubstreamsAreMutuallyIndependent) {
  // Adjacent and distant stream indices must not share output prefixes.
  std::vector<std::uint64_t> firsts;
  for (std::uint64_t k : {0ULL, 1ULL, 2ULL, 3ULL, 1000ULL, 1000000ULL}) {
    Rng s = Rng::Substream(99, k);
    firsts.push_back(s.Next());
  }
  std::sort(firsts.begin(), firsts.end());
  EXPECT_EQ(std::adjacent_find(firsts.begin(), firsts.end()), firsts.end());

  Rng a = Rng::Substream(99, 1);
  Rng b = Rng::Substream(99, 2);
  int matches = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.Next() == b.Next()) ++matches;
  }
  EXPECT_LT(matches, 3);
}

TEST(RngTest, HashCombine64IsOrderSensitive) {
  EXPECT_NE(HashCombine64(1, 2), HashCombine64(2, 1));
  EXPECT_NE(HashCombine64(0, 0), HashCombine64(0, 1));
  EXPECT_EQ(HashCombine64(17, 29), HashCombine64(17, 29));  // stateless
}

}  // namespace
}  // namespace wolt::util
