#include <gtest/gtest.h>

#include <stdexcept>

#include "wifi/mcs.h"
#include "wifi/pathloss.h"

namespace wolt::wifi {
namespace {

TEST(PathLossTest, ReferenceLossAtOneMetre) {
  PathLossModel m;
  EXPECT_NEAR(m.PathLossDb(1.0), m.pl0_db, 1e-12);
}

TEST(PathLossTest, TenXDistanceAddsTenNdB) {
  PathLossModel m;
  m.exponent = 3.0;
  EXPECT_NEAR(m.PathLossDb(10.0) - m.PathLossDb(1.0), 30.0, 1e-9);
  EXPECT_NEAR(m.PathLossDb(100.0) - m.PathLossDb(10.0), 30.0, 1e-9);
}

TEST(PathLossTest, MonotoneInDistance) {
  PathLossModel m;
  double prev = m.RssiDbm(0.5);
  for (double d = 1.0; d <= 120.0; d += 1.0) {
    const double rssi = m.RssiDbm(d);
    ASSERT_LT(rssi, prev) << "RSSI must strictly decrease, d=" << d;
    prev = rssi;
  }
}

TEST(PathLossTest, ClampsTinyDistances) {
  PathLossModel m;
  EXPECT_DOUBLE_EQ(m.PathLossDb(0.0), m.PathLossDb(0.05));
}

TEST(PathLossTest, ShadowingShiftsRssi) {
  PathLossModel m;
  EXPECT_NEAR(m.RssiDbm(10.0, 5.0), m.RssiDbm(10.0) + 5.0, 1e-12);
  EXPECT_NEAR(m.RssiDbm(10.0, -7.0), m.RssiDbm(10.0) - 7.0, 1e-12);
}

TEST(PathLossTest, FloorScaleRssiSpansTheMcsLadder) {
  // The default model must make the MCS ladder meaningful on a 100 m
  // enterprise floor: top MCS near an extender, MCS0 still decodable at
  // ~40 m (grid spacing keeps users within that of some extender), and out
  // of range beyond ~50 m (so distant extenders are genuinely unusable).
  PathLossModel m;
  EXPECT_GT(m.RssiDbm(10.0), -70.0);   // high MCS up close
  EXPECT_GT(m.RssiDbm(40.0), -82.0);   // MCS0 at grid scale
  EXPECT_LT(m.RssiDbm(50.0), -82.0);   // far extenders unreachable
}

TEST(RateTableTest, Ieee80211nRatesAtKnownRssi) {
  const RateTable table = RateTable::Ieee80211nHt20(1.0);
  EXPECT_DOUBLE_EQ(table.RateAtRssi(-60.0), 65.0);   // best MCS
  EXPECT_DOUBLE_EQ(table.RateAtRssi(-80.0), 6.5);    // MCS0 only
  EXPECT_DOUBLE_EQ(table.RateAtRssi(-90.0), 0.0);    // out of range
  EXPECT_DOUBLE_EQ(table.RateAtRssi(-75.0), 19.5);   // QPSK 3/4
}

TEST(RateTableTest, MacEfficiencyScalesRates) {
  const RateTable table = RateTable::Ieee80211nHt20(0.65);
  EXPECT_NEAR(table.RateAtRssi(-60.0), 65.0 * 0.65, 1e-12);
  EXPECT_NEAR(table.MaxRate(), 65.0 * 0.65, 1e-12);
}

TEST(RateTableTest, RateMonotoneInRssi) {
  const RateTable table = RateTable::Ieee80211nHt20();
  double prev = -1.0;
  for (double rssi = -95.0; rssi <= -40.0; rssi += 0.5) {
    const double rate = table.RateAtRssi(rssi);
    ASSERT_GE(rate, prev);
    prev = rate;
  }
}

TEST(RateTableTest, McsAtRssiReturnsEntry) {
  const RateTable table = RateTable::Ieee80211nHt20();
  const McsEntry* e = table.McsAtRssi(-70.0);
  ASSERT_NE(e, nullptr);
  EXPECT_EQ(e->index, 4);
  EXPECT_EQ(e->modulation, "16-QAM 3/4");
  EXPECT_EQ(table.McsAtRssi(-100.0), nullptr);
}

TEST(RateTableTest, AironetTableCoversLongerRange) {
  const RateTable aironet = RateTable::CiscoAironet80211g(1.0);
  // 802.11g sensitivity is lower; -90 dBm still yields a rate.
  EXPECT_GT(aironet.RateAtRssi(-90.0), 0.0);
  EXPECT_DOUBLE_EQ(aironet.RateAtRssi(-70.0), 54.0);
  EXPECT_DOUBLE_EQ(aironet.MinSensitivityDbm(), -94.0);
}

TEST(RateTableTest, RejectsBadConstruction) {
  EXPECT_THROW(RateTable({}, 0.65), std::invalid_argument);
  EXPECT_THROW(RateTable({{0, -80.0, 6.0, ""}}, 0.0), std::invalid_argument);
  EXPECT_THROW(RateTable({{0, -80.0, 6.0, ""}}, 1.5), std::invalid_argument);
  // Unsorted rates rejected.
  EXPECT_THROW(RateTable({{0, -80.0, 12.0, ""}, {1, -78.0, 6.0, ""}}, 0.5),
               std::invalid_argument);
}

// End-to-end: distance -> RSSI -> rate pipeline produces the stepped
// rate-vs-distance curve the paper's simulator uses.
class RateVsDistanceTest : public ::testing::TestWithParam<double> {};

TEST_P(RateVsDistanceTest, PipelineYieldsDecreasingRates) {
  const PathLossModel pl;
  const RateTable table = RateTable::Ieee80211nHt20();
  const double d = GetParam();
  const double near_rate = table.RateAtRssi(pl.RssiDbm(d));
  const double far_rate = table.RateAtRssi(pl.RssiDbm(d * 2.0));
  EXPECT_GE(near_rate, far_rate);
}

INSTANTIATE_TEST_SUITE_P(Distances, RateVsDistanceTest,
                         ::testing::Values(1.0, 5.0, 10.0, 20.0, 40.0));

}  // namespace
}  // namespace wolt::wifi
