#include "model/io.h"

#include <gtest/gtest.h>

#include "sim/scenario.h"
#include "testbed/lab.h"
#include "util/rng.h"

namespace wolt::model {
namespace {

void ExpectNetworksEqual(const Network& a, const Network& b) {
  ASSERT_EQ(a.NumUsers(), b.NumUsers());
  ASSERT_EQ(a.NumExtenders(), b.NumExtenders());
  for (std::size_t j = 0; j < a.NumExtenders(); ++j) {
    EXPECT_DOUBLE_EQ(a.PlcRate(j), b.PlcRate(j));
    EXPECT_EQ(a.MaxUsers(j), b.MaxUsers(j));
    EXPECT_DOUBLE_EQ(a.ExtenderAt(j).position.x, b.ExtenderAt(j).position.x);
    EXPECT_DOUBLE_EQ(a.ExtenderAt(j).position.y, b.ExtenderAt(j).position.y);
    EXPECT_EQ(a.ExtenderAt(j).label, b.ExtenderAt(j).label);
  }
  for (std::size_t i = 0; i < a.NumUsers(); ++i) {
    EXPECT_DOUBLE_EQ(a.UserDemand(i), b.UserDemand(i));
    EXPECT_EQ(a.UserAt(i).label, b.UserAt(i).label);
    for (std::size_t j = 0; j < a.NumExtenders(); ++j) {
      EXPECT_DOUBLE_EQ(a.WifiRate(i, j), b.WifiRate(i, j));
      if (a.HasRssi() && b.HasRssi()) {
        EXPECT_DOUBLE_EQ(a.Rssi(i, j), b.Rssi(i, j));
      }
    }
  }
  EXPECT_EQ(a.HasRssi(), b.HasRssi());
}

TEST(NetworkIoTest, CaseStudyRoundTrip) {
  const Network net = testbed::CaseStudyNetwork();
  const auto loaded = NetworkFromString(NetworkToString(net));
  ASSERT_TRUE(loaded.has_value());
  ExpectNetworksEqual(net, *loaded);
}

TEST(NetworkIoTest, GeneratedScenarioRoundTripBitExact) {
  sim::ScenarioParams p;
  p.num_extenders = 8;
  p.num_users = 12;
  util::Rng rng(5);
  const Network net = sim::ScenarioGenerator(p).Generate(rng);
  const std::string text = NetworkToString(net);
  const auto loaded = NetworkFromString(text);
  ASSERT_TRUE(loaded.has_value());
  ExpectNetworksEqual(net, *loaded);
  // Idempotent: re-serializing reproduces the identical byte stream.
  EXPECT_EQ(NetworkToString(*loaded), text);
}

TEST(NetworkIoTest, DemandsAndCapsSurvive) {
  Network net = testbed::CaseStudyNetwork();
  net.SetUserDemand(0, 7.5);
  net.SetMaxUsers(1, 3);
  const auto loaded = NetworkFromString(NetworkToString(net));
  ASSERT_TRUE(loaded.has_value());
  EXPECT_DOUBLE_EQ(loaded->UserDemand(0), 7.5);
  EXPECT_EQ(loaded->MaxUsers(1), 3);
}

TEST(NetworkIoTest, CommentsAndBlankLinesIgnored) {
  const Network net = testbed::CaseStudyNetwork();
  std::string text = "# a scenario file\n\n" + NetworkToString(net);
  const auto loaded = NetworkFromString(text);
  ASSERT_TRUE(loaded.has_value());
  ExpectNetworksEqual(net, *loaded);
}

TEST(NetworkIoTest, FileRoundTrip) {
  const Network net = testbed::CaseStudyNetwork();
  const std::string path = ::testing::TempDir() + "/wolt_net_io_test.txt";
  ASSERT_TRUE(SaveNetworkFile(net, path));
  const auto loaded = LoadNetworkFile(path);
  ASSERT_TRUE(loaded.has_value());
  ExpectNetworksEqual(net, *loaded);
}

TEST(NetworkIoTest, UnwritablePathFails) {
  EXPECT_FALSE(SaveNetworkFile(testbed::CaseStudyNetwork(),
                               "/nonexistent_zzz/net.txt"));
  EXPECT_FALSE(LoadNetworkFile("/nonexistent_zzz/net.txt").has_value());
}

TEST(NetworkIoTest, MalformedInputsRejected) {
  EXPECT_FALSE(NetworkFromString("").has_value());
  EXPECT_FALSE(NetworkFromString("not-a-network 1\n").has_value());
  EXPECT_FALSE(NetworkFromString("wolt-network 99\n").has_value());
  // Wrong extender index ordering.
  EXPECT_FALSE(NetworkFromString("wolt-network 1\nextenders 1\n"
                                 "extender 5 plc=10 x=0 y=0\n")
                   .has_value());
  // Negative PLC rate.
  EXPECT_FALSE(NetworkFromString("wolt-network 1\nextenders 1\n"
                                 "extender 0 plc=-5 x=0 y=0\nusers 0\n")
                   .has_value());
  // Rate row with the wrong arity.
  EXPECT_FALSE(
      NetworkFromString("wolt-network 1\nextenders 2\n"
                        "extender 0 plc=10 x=0 y=0\n"
                        "extender 1 plc=10 x=1 y=0\n"
                        "users 1\nuser 0 x=0 y=0 demand=0\n"
                        "rates 0 5\n")
          .has_value());
  // Garbage number.
  EXPECT_FALSE(
      NetworkFromString("wolt-network 1\nextenders 1\n"
                        "extender 0 plc=ten x=0 y=0\nusers 0\n")
          .has_value());
}

TEST(NetworkIoTest, LoadedNetworkIsUsable) {
  // A loaded network must drive the full pipeline (reachability queries,
  // association) exactly like the original.
  const Network net = testbed::CaseStudyNetwork();
  const auto loaded = NetworkFromString(NetworkToString(net));
  ASSERT_TRUE(loaded.has_value());
  EXPECT_TRUE(loaded->UserReachable(0));
  EXPECT_EQ(*loaded->BestRateExtender(1), 0u);
}

}  // namespace
}  // namespace wolt::model
