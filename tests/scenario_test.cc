#include "sim/scenario.h"

#include <gtest/gtest.h>

#include <stdexcept>

#include "util/stats.h"

namespace wolt::sim {
namespace {

TEST(ScenarioTest, GeneratesRequestedSizes) {
  ScenarioGenerator gen;
  util::Rng rng(1);
  const model::Network net = gen.Generate(rng);
  EXPECT_EQ(net.NumExtenders(), 15u);
  EXPECT_EQ(net.NumUsers(), 36u);
}

TEST(ScenarioTest, RejectsBadParams) {
  ScenarioParams p;
  p.num_extenders = 0;
  EXPECT_THROW(ScenarioGenerator{p}, std::invalid_argument);
  p = {};
  p.width_m = -1.0;
  EXPECT_THROW(ScenarioGenerator{p}, std::invalid_argument);
}

TEST(ScenarioTest, ExtendersInsideFloorWithPositiveCapacities) {
  ScenarioGenerator gen;
  util::Rng rng(2);
  const model::Network net = gen.Generate(rng);
  for (std::size_t j = 0; j < net.NumExtenders(); ++j) {
    const auto& e = net.ExtenderAt(j);
    EXPECT_GE(e.position.x, 0.0);
    EXPECT_LE(e.position.x, 100.0);
    EXPECT_GE(e.position.y, 0.0);
    EXPECT_LE(e.position.y, 100.0);
    EXPECT_GT(e.plc_rate_mbps, 0.0);
  }
}

TEST(ScenarioTest, ExtendersAreSpreadAcrossTheFloor) {
  // Jittered-grid placement: extenders must not collapse into one corner.
  ScenarioGenerator gen;
  util::Rng rng(3);
  const model::Network net = gen.Generate(rng);
  std::vector<double> xs, ys;
  for (std::size_t j = 0; j < net.NumExtenders(); ++j) {
    xs.push_back(net.ExtenderAt(j).position.x);
    ys.push_back(net.ExtenderAt(j).position.y);
  }
  EXPECT_GT(util::Max(xs) - util::Min(xs), 50.0);
  EXPECT_GT(util::Max(ys) - util::Min(ys), 50.0);
}

TEST(ScenarioTest, AllUsersReachable) {
  ScenarioGenerator gen;
  for (int seed = 1; seed <= 10; ++seed) {
    util::Rng rng(static_cast<std::uint64_t>(seed));
    const model::Network net = gen.Generate(rng);
    for (std::size_t i = 0; i < net.NumUsers(); ++i) {
      EXPECT_TRUE(net.UserReachable(i)) << "seed=" << seed << " user=" << i;
    }
  }
}

TEST(ScenarioTest, RatesDecreaseWithDistanceOnAverage) {
  ScenarioGenerator gen;
  util::Rng rng(5);
  const model::Network net = gen.Generate(rng);
  // Correlation check: users' best extender should usually be nearby.
  int best_is_nearest = 0;
  for (std::size_t i = 0; i < net.NumUsers(); ++i) {
    const auto best = net.BestRssiExtender(i);
    ASSERT_TRUE(best.has_value());
    std::size_t nearest = 0;
    double nearest_d = 1e18;
    for (std::size_t j = 0; j < net.NumExtenders(); ++j) {
      const double d = model::Distance(net.UserAt(i).position,
                                       net.ExtenderAt(j).position);
      if (d < nearest_d) {
        nearest_d = d;
        nearest = j;
      }
    }
    if (*best == nearest) ++best_is_nearest;
  }
  // Shadowing shuffles some, but geography must dominate.
  EXPECT_GT(best_is_nearest, static_cast<int>(net.NumUsers()) / 2);
}

TEST(ScenarioTest, DeterministicGivenSeed) {
  ScenarioGenerator gen;
  util::Rng a(77), b(77);
  const model::Network na = gen.Generate(a);
  const model::Network nb = gen.Generate(b);
  ASSERT_EQ(na.NumUsers(), nb.NumUsers());
  for (std::size_t i = 0; i < na.NumUsers(); ++i) {
    for (std::size_t j = 0; j < na.NumExtenders(); ++j) {
      ASSERT_DOUBLE_EQ(na.WifiRate(i, j), nb.WifiRate(i, j));
    }
  }
  for (std::size_t j = 0; j < na.NumExtenders(); ++j) {
    ASSERT_DOUBLE_EQ(na.PlcRate(j), nb.PlcRate(j));
  }
}

TEST(ScenarioTest, AddRandomUserGrowsNetwork) {
  ScenarioGenerator gen;
  util::Rng rng(6);
  model::Network net = gen.Generate(rng);
  const std::size_t before = net.NumUsers();
  const std::size_t idx = gen.AddRandomUser(net, rng);
  EXPECT_EQ(idx, before);
  EXPECT_EQ(net.NumUsers(), before + 1);
  EXPECT_TRUE(net.UserReachable(idx));
}

TEST(ScenarioTest, PlcCapacitiesSpanMeasuredBand) {
  ScenarioGenerator gen;
  util::Rng rng(7);
  std::vector<double> caps;
  for (int trial = 0; trial < 20; ++trial) {
    const model::Network net = gen.Generate(rng);
    for (std::size_t j = 0; j < net.NumExtenders(); ++j) {
      caps.push_back(net.PlcRate(j));
    }
  }
  EXPECT_LT(util::Min(caps), 80.0);
  EXPECT_GT(util::Max(caps), 130.0);
}

TEST(ScenarioTest, RatesAtMatchesTableSteps) {
  // Every produced rate must be one of the MCS table's discrete rates.
  ScenarioGenerator gen;
  util::Rng rng(8);
  const model::Network net = gen.Generate(rng);
  const auto entries = gen.params().rate_table.entries();
  const double eff = gen.params().rate_table.mac_efficiency();
  for (std::size_t i = 0; i < net.NumUsers(); ++i) {
    for (std::size_t j = 0; j < net.NumExtenders(); ++j) {
      const double r = net.WifiRate(i, j);
      if (r == 0.0) continue;
      bool found = false;
      for (const auto& e : entries) {
        if (std::abs(r - e.phy_rate_mbps * eff) < 1e-9) found = true;
      }
      EXPECT_TRUE(found) << "rate " << r << " not in MCS table";
    }
  }
}

}  // namespace
}  // namespace wolt::sim
