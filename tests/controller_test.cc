#include "core/controller.h"

#include <gtest/gtest.h>

#include <memory>
#include <stdexcept>

#include "core/greedy.h"
#include "core/rssi.h"
#include "core/wolt.h"

namespace wolt::core {
namespace {

// --- Wire format ----------------------------------------------------------

TEST(WireFormatTest, ScanReportRoundTrip) {
  ScanReport msg;
  msg.user_id = 42;
  msg.rates_mbps = {10.5, 0.0, 32.5};
  msg.rssi_dbm = {-70.5, -90.0, -60.25};
  const auto decoded = DecodeScanReport(Encode(msg));
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(decoded->user_id, 42);
  EXPECT_EQ(decoded->rates_mbps, msg.rates_mbps);
  EXPECT_EQ(decoded->rssi_dbm, msg.rssi_dbm);
}

TEST(WireFormatTest, ScanReportWithoutRssi) {
  ScanReport msg;
  msg.user_id = 1;
  msg.rates_mbps = {5.0};
  const auto decoded = DecodeScanReport(Encode(msg));
  ASSERT_TRUE(decoded.has_value());
  EXPECT_TRUE(decoded->rssi_dbm.empty());
}

TEST(WireFormatTest, DirectiveRoundTrip) {
  const AssociationDirective msg{7, 2};
  const auto decoded = DecodeAssociationDirective(Encode(msg));
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(decoded->user_id, 7);
  EXPECT_EQ(decoded->extender, 2);
}

TEST(WireFormatTest, CapacityRoundTrip) {
  const CapacityReport msg{3, 120.5};
  const auto decoded = DecodeCapacityReport(Encode(msg));
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(decoded->extender, 3);
  EXPECT_DOUBLE_EQ(decoded->capacity_mbps, 120.5);
}

TEST(WireFormatTest, MalformedMessagesRejected) {
  EXPECT_FALSE(DecodeScanReport("SCAN").has_value());
  EXPECT_FALSE(DecodeScanReport("SCAN user=x rates=1").has_value());
  EXPECT_FALSE(DecodeScanReport("SCAN user=1 rates=1,abc").has_value());
  EXPECT_FALSE(
      DecodeScanReport("SCAN user=1 rates=1,2 rssi=-50").has_value());
  EXPECT_FALSE(DecodeScanReport("DIRECTIVE user=1 extender=0").has_value());
  EXPECT_FALSE(DecodeAssociationDirective("DIRECTIVE user=1").has_value());
  EXPECT_FALSE(DecodeCapacityReport("CAPACITY extender=1").has_value());
  EXPECT_FALSE(
      DecodeCapacityReport("CAPACITY extender=1 mbps=-5").has_value());
}

// --- Controller -----------------------------------------------------------

// Fig. 3 scenario driven entirely through the control plane.
class ControllerCaseStudy : public ::testing::Test {
 protected:
  CentralController MakeController(PolicyPtr policy) {
    CentralController cc(2, std::move(policy));
    cc.HandleCapacityReport({0, 60.0});
    cc.HandleCapacityReport({1, 20.0});
    return cc;
  }
  ScanReport User1() { return {101, {15.0, 10.0}, {}}; }
  ScanReport User2() { return {102, {40.0, 20.0}, {}}; }
};

TEST_F(ControllerCaseStudy, RejectsBadConstruction) {
  EXPECT_THROW(CentralController(0, std::make_unique<RssiPolicy>()),
               std::invalid_argument);
  EXPECT_THROW(CentralController(2, nullptr), std::invalid_argument);
}

TEST_F(ControllerCaseStudy, WoltReachesOptimumWithReassociation) {
  CentralController cc = MakeController(std::make_unique<WoltPolicy>());
  auto d1 = cc.HandleUserArrival(User1());
  ASSERT_EQ(d1.size(), 1u);
  EXPECT_EQ(d1[0].user_id, 101);
  EXPECT_EQ(d1[0].extender, 0);  // alone, extender 0 gives 15 > 10

  // User 2 arrives: the optimal configuration moves user 1 to extender 1.
  auto d2 = cc.HandleUserArrival(User2());
  EXPECT_EQ(cc.ExtenderOf(101), 1);
  EXPECT_EQ(cc.ExtenderOf(102), 0);
  EXPECT_NEAR(cc.CurrentAggregate(), 40.0, 1e-9);
  // Directives cover exactly the users that moved (both here).
  EXPECT_EQ(d2.size(), 2u);
}

TEST_F(ControllerCaseStudy, GreedyNeverMovesExistingUsers) {
  CentralController cc = MakeController(std::make_unique<GreedyPolicy>());
  cc.HandleUserArrival(User1());
  const auto d2 = cc.HandleUserArrival(User2());
  ASSERT_EQ(d2.size(), 1u);  // only the new user is directed
  EXPECT_EQ(d2[0].user_id, 102);
  EXPECT_EQ(cc.ExtenderOf(101), 0);
  EXPECT_EQ(cc.ExtenderOf(102), 1);
  EXPECT_NEAR(cc.CurrentAggregate(), 30.0, 1e-9);
}

TEST_F(ControllerCaseStudy, DepartureFreesTheExtender) {
  CentralController cc = MakeController(std::make_unique<WoltPolicy>());
  cc.HandleUserArrival(User1());
  cc.HandleUserArrival(User2());
  cc.HandleUserDeparture(102);
  EXPECT_EQ(cc.NumUsers(), 1u);
  EXPECT_FALSE(cc.ExtenderOf(102).has_value());
  // Reoptimize brings user 1 back to its solo optimum (extender 0).
  cc.Reoptimize();
  EXPECT_EQ(cc.ExtenderOf(101), 0);
  EXPECT_NEAR(cc.CurrentAggregate(), 15.0, 1e-9);
}

TEST_F(ControllerCaseStudy, ScanUpdateTriggersReassociation) {
  CentralController cc = MakeController(std::make_unique<WoltPolicy>());
  cc.HandleUserArrival(User1());
  // User 1 walks: now it only hears extender 1.
  ScanReport moved = User1();
  moved.rates_mbps = {0.0, 30.0};
  const auto directives = cc.HandleScanUpdate(moved);
  ASSERT_EQ(directives.size(), 1u);
  EXPECT_EQ(directives[0].extender, 1);
  EXPECT_EQ(cc.ExtenderOf(101), 1);
}

TEST_F(ControllerCaseStudy, InputValidation) {
  CentralController cc = MakeController(std::make_unique<WoltPolicy>());
  EXPECT_THROW(cc.HandleCapacityReport({5, 10.0}), std::invalid_argument);
  EXPECT_THROW(cc.HandleUserArrival({1, {10.0}, {}}),
               std::invalid_argument);  // wrong rate count
  cc.HandleUserArrival(User1());
  EXPECT_THROW(cc.HandleUserArrival(User1()), std::invalid_argument);
  EXPECT_THROW(cc.HandleUserDeparture(999), std::invalid_argument);
  EXPECT_THROW(cc.HandleScanUpdate({999, {1.0, 1.0}, {}}),
               std::invalid_argument);
}

TEST(ControllerTest, IdsStayStableAcrossDepartures) {
  CentralController cc(1, std::make_unique<RssiPolicy>());
  cc.HandleCapacityReport({0, 100.0});
  for (std::int64_t id = 1; id <= 5; ++id) {
    cc.HandleUserArrival({id, {20.0}, {}});
  }
  cc.HandleUserDeparture(2);
  cc.HandleUserDeparture(4);
  EXPECT_EQ(cc.NumUsers(), 3u);
  EXPECT_TRUE(cc.ExtenderOf(1).has_value());
  EXPECT_TRUE(cc.ExtenderOf(3).has_value());
  EXPECT_TRUE(cc.ExtenderOf(5).has_value());
  EXPECT_FALSE(cc.ExtenderOf(2).has_value());
  // Arrivals after removal still work.
  cc.HandleUserArrival({6, {20.0}, {}});
  EXPECT_EQ(cc.NumUsers(), 4u);
  EXPECT_TRUE(cc.ExtenderOf(6).has_value());
}

TEST(ControllerTest, RssiFromScanReportGuidesRssiPolicy) {
  // Rates tie; the recorded RSSI must break the tie.
  CentralController cc(2, std::make_unique<RssiPolicy>());
  cc.HandleCapacityReport({0, 100.0});
  cc.HandleCapacityReport({1, 100.0});
  ScanReport report{1, {20.0, 20.0}, {-75.0, -55.0}};
  cc.HandleUserArrival(report);
  EXPECT_EQ(cc.ExtenderOf(1), 1);
}

}  // namespace
}  // namespace wolt::core
