#include "core/controller.h"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <memory>
#include <stdexcept>

#include "core/greedy.h"
#include "core/rssi.h"
#include "core/wolt.h"
#include "util/codec.h"

namespace wolt::core {
namespace {

// --- Wire format ----------------------------------------------------------

TEST(WireFormatTest, ScanReportRoundTrip) {
  ScanReport msg;
  msg.user_id = 42;
  msg.rates_mbps = {10.5, 0.0, 32.5};
  msg.rssi_dbm = {-70.5, -90.0, -60.25};
  const auto decoded = DecodeScanReport(Encode(msg));
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(decoded->user_id, 42);
  EXPECT_EQ(decoded->rates_mbps, msg.rates_mbps);
  EXPECT_EQ(decoded->rssi_dbm, msg.rssi_dbm);
  EXPECT_FALSE(decoded->associated_extender.has_value());
}

TEST(WireFormatTest, ScanReportWithoutRssi) {
  ScanReport msg;
  msg.user_id = 1;
  msg.rates_mbps = {5.0};
  const auto decoded = DecodeScanReport(Encode(msg));
  ASSERT_TRUE(decoded.has_value());
  EXPECT_TRUE(decoded->rssi_dbm.empty());
}

TEST(WireFormatTest, ScanReportCarriesAssociation) {
  ScanReport msg;
  msg.user_id = 9;
  msg.rates_mbps = {5.0, 6.0};
  msg.associated_extender = 1;
  const auto decoded = DecodeScanReport(Encode(msg));
  ASSERT_TRUE(decoded.has_value());
  ASSERT_TRUE(decoded->associated_extender.has_value());
  EXPECT_EQ(*decoded->associated_extender, 1);

  msg.associated_extender = -1;  // camped nowhere
  const auto decoded2 = DecodeScanReport(Encode(msg));
  ASSERT_TRUE(decoded2.has_value());
  ASSERT_TRUE(decoded2->associated_extender.has_value());
  EXPECT_EQ(*decoded2->associated_extender, -1);
}

TEST(WireFormatTest, DirectiveRoundTrip) {
  const AssociationDirective msg{7, 2};
  const auto decoded = DecodeAssociationDirective(Encode(msg));
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(decoded->user_id, 7);
  EXPECT_EQ(decoded->extender, 2);
}

TEST(WireFormatTest, AckAndDepartureRoundTrip) {
  const auto ack = DecodeDirectiveAck(Encode(DirectiveAck{7, 2}));
  ASSERT_TRUE(ack.has_value());
  EXPECT_EQ(ack->user_id, 7);
  EXPECT_EQ(ack->extender, 2);

  const auto bye = DecodeDepartureNotice(Encode(DepartureNotice{11}));
  ASSERT_TRUE(bye.has_value());
  EXPECT_EQ(bye->user_id, 11);
}

TEST(WireFormatTest, CapacityRoundTrip) {
  const CapacityReport msg{3, 120.5};
  const auto decoded = DecodeCapacityReport(Encode(msg));
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(decoded->extender, 3);
  EXPECT_DOUBLE_EQ(decoded->capacity_mbps, 120.5);
}

TEST(WireFormatTest, MalformedMessagesRejected) {
  EXPECT_FALSE(DecodeScanReport("SCAN").has_value());
  EXPECT_FALSE(DecodeScanReport("SCAN user=x rates=1").has_value());
  EXPECT_FALSE(DecodeScanReport("SCAN user=1 rates=1,abc").has_value());
  EXPECT_FALSE(
      DecodeScanReport("SCAN user=1 rates=1,2 rssi=-50").has_value());
  EXPECT_FALSE(DecodeScanReport("DIRECTIVE user=1 extender=0").has_value());
  EXPECT_FALSE(DecodeAssociationDirective("DIRECTIVE user=1").has_value());
  EXPECT_FALSE(DecodeCapacityReport("CAPACITY extender=1").has_value());
  EXPECT_FALSE(
      DecodeCapacityReport("CAPACITY extender=1 mbps=-5").has_value());
}

TEST(WireFormatTest, HostileNumericsRejected) {
  // NaN / Inf / negative rates must not reach the controller.
  EXPECT_FALSE(DecodeScanReport("SCAN user=1 rates=nan").has_value());
  EXPECT_FALSE(DecodeScanReport("SCAN user=1 rates=inf,1").has_value());
  EXPECT_FALSE(DecodeScanReport("SCAN user=1 rates=-3").has_value());
  EXPECT_FALSE(
      DecodeScanReport("SCAN user=1 rates=1 rssi=nan").has_value());
  EXPECT_FALSE(DecodeCapacityReport("CAPACITY extender=0 mbps=nan")
                   .has_value());
  EXPECT_FALSE(DecodeCapacityReport("CAPACITY extender=0 mbps=inf")
                   .has_value());
  // Overflowing / fractional ids.
  EXPECT_FALSE(
      DecodeScanReport("SCAN user=99999999999999999999 rates=1").has_value());
  EXPECT_FALSE(DecodeScanReport("SCAN user=1.5 rates=1").has_value());
  EXPECT_FALSE(DecodeAssociationDirective(
                   "DIRECTIVE user=1 extender=99999999999999999999")
                   .has_value());
  // Trailing garbage, duplicate keys, bad assoc.
  EXPECT_FALSE(DecodeScanReport("SCAN user=1 rates=1 junk").has_value());
  EXPECT_FALSE(DecodeScanReport("SCAN user=1 user=2 rates=1").has_value());
  EXPECT_FALSE(
      DecodeScanReport("SCAN user=1 rates=1 assoc=-2").has_value());
  EXPECT_FALSE(DecodeCapacityReport("CAPACITY extender=0 mbps=5 x=1")
                   .has_value());
}

// --- Controller -----------------------------------------------------------

// Fig. 3 scenario driven entirely through the control plane.
class ControllerCaseStudy : public ::testing::Test {
 protected:
  CentralController MakeController(PolicyPtr policy) {
    CentralController cc(2, std::move(policy));
    EXPECT_EQ(cc.HandleCapacityReport({0, 60.0}), HandleStatus::kOk);
    EXPECT_EQ(cc.HandleCapacityReport({1, 20.0}), HandleStatus::kOk);
    return cc;
  }
  ScanReport User1() { return {101, {15.0, 10.0}, {}, {}}; }
  ScanReport User2() { return {102, {40.0, 20.0}, {}, {}}; }
};

TEST_F(ControllerCaseStudy, RejectsBadConstruction) {
  EXPECT_THROW(CentralController(0, std::make_unique<RssiPolicy>()),
               std::invalid_argument);
  EXPECT_THROW(CentralController(2, nullptr), std::invalid_argument);
}

TEST_F(ControllerCaseStudy, WoltReachesOptimumWithReassociation) {
  CentralController cc = MakeController(std::make_unique<WoltPolicy>());
  const auto r1 = cc.HandleUserArrival(User1());
  ASSERT_TRUE(r1.ok());
  ASSERT_EQ(r1.directives.size(), 1u);
  EXPECT_EQ(r1.directives[0].user_id, 101);
  EXPECT_EQ(r1.directives[0].extender, 0);  // alone, extender 0 gives 15 > 10

  // User 2 arrives: the optimal configuration moves user 1 to extender 1.
  const auto r2 = cc.HandleUserArrival(User2());
  ASSERT_TRUE(r2.ok());
  EXPECT_EQ(cc.ExtenderOf(101), 1);
  EXPECT_EQ(cc.ExtenderOf(102), 0);
  EXPECT_NEAR(cc.CurrentAggregate(), 40.0, 1e-9);
  // Directives cover exactly the users that moved (both here).
  EXPECT_EQ(r2.directives.size(), 2u);
}

TEST_F(ControllerCaseStudy, GreedyNeverMovesExistingUsers) {
  CentralController cc = MakeController(std::make_unique<GreedyPolicy>());
  cc.HandleUserArrival(User1());
  const auto r2 = cc.HandleUserArrival(User2());
  ASSERT_EQ(r2.directives.size(), 1u);  // only the new user is directed
  EXPECT_EQ(r2.directives[0].user_id, 102);
  EXPECT_EQ(cc.ExtenderOf(101), 0);
  EXPECT_EQ(cc.ExtenderOf(102), 1);
  EXPECT_NEAR(cc.CurrentAggregate(), 30.0, 1e-9);
}

TEST_F(ControllerCaseStudy, DepartureFreesTheExtender) {
  CentralController cc = MakeController(std::make_unique<WoltPolicy>());
  cc.HandleUserArrival(User1());
  cc.HandleUserArrival(User2());
  EXPECT_EQ(cc.HandleUserDeparture(102), HandleStatus::kOk);
  EXPECT_EQ(cc.NumUsers(), 1u);
  EXPECT_FALSE(cc.ExtenderOf(102).has_value());
  // Reoptimize brings user 1 back to its solo optimum (extender 0).
  cc.Reoptimize();
  EXPECT_EQ(cc.ExtenderOf(101), 0);
  EXPECT_NEAR(cc.CurrentAggregate(), 15.0, 1e-9);
}

TEST_F(ControllerCaseStudy, ScanUpdateTriggersReassociation) {
  CentralController cc = MakeController(std::make_unique<WoltPolicy>());
  cc.HandleUserArrival(User1());
  // User 1 walks: now it only hears extender 1.
  ScanReport moved = User1();
  moved.rates_mbps = {0.0, 30.0};
  const auto result = cc.HandleScanUpdate(moved);
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result.directives.size(), 1u);
  EXPECT_EQ(result.directives[0].extender, 1);
  EXPECT_EQ(cc.ExtenderOf(101), 1);
}

TEST_F(ControllerCaseStudy, BadMessagesRejectedWithoutThrowing) {
  CentralController cc = MakeController(std::make_unique<WoltPolicy>());
  EXPECT_EQ(cc.HandleCapacityReport({5, 10.0}),
            HandleStatus::kUnknownExtender);
  EXPECT_EQ(cc.HandleCapacityReport({-1, 10.0}),
            HandleStatus::kUnknownExtender);
  EXPECT_EQ(cc.HandleCapacityReport(
                {0, std::numeric_limits<double>::quiet_NaN()}),
            HandleStatus::kMalformed);
  // Wrong rate count.
  EXPECT_EQ(cc.HandleUserArrival({1, {10.0}, {}, {}}).status,
            HandleStatus::kMalformed);
  EXPECT_EQ(cc.NumUsers(), 0u);
  ASSERT_TRUE(cc.HandleUserArrival(User1()).ok());
  // Duplicate arrival leaves state untouched.
  EXPECT_EQ(cc.HandleUserArrival(User1()).status,
            HandleStatus::kDuplicateUser);
  EXPECT_EQ(cc.NumUsers(), 1u);
  EXPECT_EQ(cc.HandleUserDeparture(999), HandleStatus::kUnknownUser);
  EXPECT_EQ(cc.HandleScanUpdate({999, {1.0, 1.0}, {}, {}}).status,
            HandleStatus::kUnknownUser);
  // A malformed update must not clobber the stored measurements.
  EXPECT_EQ(
      cc.HandleScanUpdate(
            {101, {std::numeric_limits<double>::infinity(), 1.0}, {}, {}})
          .status,
      HandleStatus::kMalformed);
  EXPECT_NEAR(cc.network().WifiRate(0, 0), 15.0, 1e-12);
}

// --- Directive acks, retries, staleness (lossy-wire hardening) ------------

class LossyWireTest : public ::testing::Test {
 protected:
  static CentralController Make(RetryParams retry = {}) {
    CentralController cc(2, std::make_unique<WoltPolicy>(), retry);
    cc.HandleCapacityReport({0, 60.0});
    cc.HandleCapacityReport({1, 20.0});
    return cc;
  }
};

TEST_F(LossyWireTest, AckClearsPendingDirective) {
  CentralController cc = Make();
  const auto r = cc.HandleUserArrival({101, {15.0, 10.0}, {}, {}});
  ASSERT_EQ(r.directives.size(), 1u);
  EXPECT_EQ(cc.PendingDirectives(), 1u);
  EXPECT_EQ(cc.HandleDirectiveAck({101, r.directives[0].extender}),
            HandleStatus::kOk);
  EXPECT_EQ(cc.PendingDirectives(), 0u);
  // Duplicate ack is idempotent.
  EXPECT_EQ(cc.HandleDirectiveAck({101, r.directives[0].extender}),
            HandleStatus::kOk);
  // Ack for a never-seen user is rejected.
  EXPECT_EQ(cc.HandleDirectiveAck({999, 0}), HandleStatus::kUnknownUser);
}

TEST_F(LossyWireTest, StaleAckDoesNotClearNewerDirective) {
  CentralController cc = Make();
  cc.HandleUserArrival({101, {15.0, 10.0}, {}, {}});  // -> extender 0
  cc.HandleUserArrival({102, {40.0, 20.0}, {}, {}});  // moves 101 -> 1
  ASSERT_EQ(cc.ExtenderOf(101), 1);
  // A late ack for the original directive (extender 0) must not clear the
  // pending move to extender 1.
  const std::size_t pending = cc.PendingDirectives();
  EXPECT_EQ(cc.HandleDirectiveAck({101, 0}), HandleStatus::kIgnoredStale);
  EXPECT_EQ(cc.PendingDirectives(), pending);
  EXPECT_EQ(cc.HandleDirectiveAck({101, 1}), HandleStatus::kOk);
  EXPECT_EQ(cc.PendingDirectives(), pending - 1);
}

TEST_F(LossyWireTest, RetriesBackOffExponentiallyAndGiveUp) {
  RetryParams retry;
  retry.initial_backoff = 1.0;
  retry.multiplier = 2.0;
  retry.max_backoff = 8.0;
  retry.max_attempts = 4;
  CentralController cc = Make(retry);
  cc.HandleUserArrival({101, {15.0, 10.0}, {}, {}});  // attempt 1 sent
  EXPECT_EQ(cc.PendingDirectives(), 1u);

  // Not due yet.
  cc.AdvanceTime(0.5);
  EXPECT_TRUE(cc.CollectRetries().empty());

  // Due at +1.0 (attempt 2), then backoff doubles: +2, then +4.
  cc.AdvanceTime(1.0);
  auto due = cc.CollectRetries();
  ASSERT_EQ(due.size(), 1u);
  EXPECT_EQ(due[0].user_id, 101);
  cc.AdvanceTime(2.9);
  EXPECT_TRUE(cc.CollectRetries().empty());
  cc.AdvanceTime(3.0);
  EXPECT_EQ(cc.CollectRetries().size(), 1u);  // attempt 3
  cc.AdvanceTime(7.0);
  EXPECT_EQ(cc.CollectRetries().size(), 1u);  // attempt 4 (last allowed)
  // Attempt budget exhausted: the directive is abandoned, not re-sent.
  cc.AdvanceTime(100.0);
  EXPECT_TRUE(cc.CollectRetries().empty());
  EXPECT_EQ(cc.PendingDirectives(), 0u);
  EXPECT_EQ(cc.DirectivesGivenUp(), 1u);
}

TEST_F(LossyWireTest, ScanReconciliationReissuesLostDirective) {
  RetryParams retry;
  retry.max_attempts = 1;  // give up immediately after the first send
  CentralController cc = Make(retry);
  cc.HandleUserArrival({101, {15.0, 10.0}, {}, {}});  // believed: extender 0
  cc.AdvanceTime(10.0);
  cc.CollectRetries();  // abandons the unacked directive
  EXPECT_EQ(cc.PendingDirectives(), 0u);

  // The client never got the directive: it is still camped nowhere, and its
  // next scan says so. The CC re-issues the believed association.
  ScanReport scan{101, {15.0, 10.0}, {}, -1};
  const auto result = cc.HandleScanUpdate(scan);
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result.directives.size(), 1u);
  EXPECT_EQ(result.directives[0].user_id, 101);
  EXPECT_EQ(result.directives[0].extender, 0);
  EXPECT_EQ(cc.PendingDirectives(), 1u);

  // Once the client confirms the right extender, scans are quiet again.
  cc.HandleDirectiveAck({101, 0});
  ScanReport agree{101, {15.0, 10.0}, {}, 0};
  EXPECT_TRUE(cc.HandleScanUpdate(agree).directives.empty());
}

TEST_F(LossyWireTest, StaleUsersAreEvicted) {
  CentralController cc = Make();
  cc.HandleUserArrival({101, {15.0, 10.0}, {}, {}});
  cc.AdvanceTime(5.0);
  cc.HandleUserArrival({102, {40.0, 20.0}, {}, {}});
  EXPECT_EQ(cc.ScanAge(101), 5.0);
  EXPECT_EQ(cc.ScanAge(102), 0.0);
  EXPECT_TRUE(std::isinf(cc.ScanAge(999)));

  // Only 101 has gone quiet past the threshold.
  const auto evicted = cc.EvictStale(4.0);
  ASSERT_EQ(evicted.size(), 1u);
  EXPECT_EQ(evicted[0], 101);
  EXPECT_FALSE(cc.KnowsUser(101));
  EXPECT_TRUE(cc.KnowsUser(102));
  // Eviction also drops any pending directive for the ghost.
  for (const auto id : cc.UserIds()) EXPECT_NE(id, 101);

  // A fresh scan keeps a user alive indefinitely.
  cc.AdvanceTime(9.0);
  cc.HandleScanUpdate({102, {40.0, 20.0}, {}, {}});
  EXPECT_TRUE(cc.EvictStale(4.0).empty());
}

TEST(ControllerTest, IdsStayStableAcrossDepartures) {
  CentralController cc(1, std::make_unique<RssiPolicy>());
  cc.HandleCapacityReport({0, 100.0});
  for (std::int64_t id = 1; id <= 5; ++id) {
    cc.HandleUserArrival({id, {20.0}, {}, {}});
  }
  cc.HandleUserDeparture(2);
  cc.HandleUserDeparture(4);
  EXPECT_EQ(cc.NumUsers(), 3u);
  EXPECT_TRUE(cc.ExtenderOf(1).has_value());
  EXPECT_TRUE(cc.ExtenderOf(3).has_value());
  EXPECT_TRUE(cc.ExtenderOf(5).has_value());
  EXPECT_FALSE(cc.ExtenderOf(2).has_value());
  // Arrivals after removal still work.
  cc.HandleUserArrival({6, {20.0}, {}, {}});
  EXPECT_EQ(cc.NumUsers(), 4u);
  EXPECT_TRUE(cc.ExtenderOf(6).has_value());
}

TEST(ControllerTest, RssiFromScanReportGuidesRssiPolicy) {
  // Rates tie; the recorded RSSI must break the tie.
  CentralController cc(2, std::make_unique<RssiPolicy>());
  cc.HandleCapacityReport({0, 100.0});
  cc.HandleCapacityReport({1, 100.0});
  ScanReport report{1, {20.0, 20.0}, {-75.0, -55.0}, {}};
  cc.HandleUserArrival(report);
  EXPECT_EQ(cc.ExtenderOf(1), 1);
}

// --- Error categories -----------------------------------------------------

TEST(ErrorCategoryTest, EveryHandleStatusMapsToItsSupervisionClass) {
  // The fleet supervisor keys restart decisions on these three buckets:
  // mangled bytes are wire evidence, stale-world statuses are the normal
  // residue of a lossy wire, and only kOk is clean.
  EXPECT_EQ(CategoryOf(HandleStatus::kOk), ErrorCategory::kNone);
  EXPECT_EQ(CategoryOf(HandleStatus::kMalformed), ErrorCategory::kWireFault);
  EXPECT_EQ(CategoryOf(HandleStatus::kDuplicateUser),
            ErrorCategory::kStateConflict);
  EXPECT_EQ(CategoryOf(HandleStatus::kUnknownUser),
            ErrorCategory::kStateConflict);
  EXPECT_EQ(CategoryOf(HandleStatus::kUnknownExtender),
            ErrorCategory::kStateConflict);
  EXPECT_EQ(CategoryOf(HandleStatus::kIgnoredStale),
            ErrorCategory::kStateConflict);
}

TEST(ErrorCategoryTest, HandleResultExposesItsCategory) {
  CentralController cc(1, std::make_unique<RssiPolicy>());
  cc.HandleCapacityReport({0, 100.0});
  const HandleResult ok = cc.HandleUserArrival({1, {20.0}, {}, {}});
  EXPECT_EQ(ok.category(), ErrorCategory::kNone);
  const HandleResult dup = cc.HandleUserArrival({1, {20.0}, {}, {}});
  EXPECT_EQ(dup.status, HandleStatus::kDuplicateUser);
  EXPECT_EQ(dup.category(), ErrorCategory::kStateConflict);
  const HandleResult bad = cc.HandleUserArrival({2, {20.0, 30.0}, {}, {}});
  EXPECT_EQ(bad.status, HandleStatus::kMalformed);
  EXPECT_EQ(bad.category(), ErrorCategory::kWireFault);
  EXPECT_TRUE(ToString(ErrorCategory::kProgrammingError) != nullptr);
}

// --- Clock-free tier ladder -----------------------------------------------

TEST(ReoptTierTest, FullTierMatchesUnbudgetedReoptimize) {
  // Two identical controllers with drifted state: ReoptimizeAtTier(kFull)
  // must land exactly where Reoptimize() does.
  auto build = [] {
    CentralController cc(2, std::make_unique<WoltPolicy>());
    cc.HandleCapacityReport({0, 60.0});
    cc.HandleCapacityReport({1, 20.0});
    cc.HandleUserArrival({101, {15.0, 10.0}, {}, {}});
    cc.HandleUserArrival({102, {40.0, 20.0}, {}, {}});
    cc.HandleUserDeparture(101);
    cc.HandleUserArrival({103, {25.0, 35.0}, {}, {}});
    return cc;
  };
  CentralController a = build();
  CentralController b = build();
  a.Reoptimize();
  const ReoptReport report = b.ReoptimizeAtTier(ReoptTier::kFull);
  EXPECT_FALSE(report.budget_limited);
  EXPECT_NEAR(a.CurrentAggregate(), b.CurrentAggregate(), 1e-12);
  for (const std::int64_t id : a.UserIds()) {
    EXPECT_EQ(a.ExtenderOf(id), b.ExtenderOf(id)) << "user " << id;
  }
}

TEST(ReoptTierTest, DegradedTiersNeverHarmTheAggregate) {
  // Every rung below kFull reports budget_limited and, thanks to the
  // do-no-harm guard, never lands below the pre-reopt aggregate.
  for (const ReoptTier tier :
       {ReoptTier::kHungarianOnly, ReoptTier::kGreedy,
        ReoptTier::kHoldLastGood}) {
    CentralController cc(2, std::make_unique<WoltPolicy>());
    cc.HandleCapacityReport({0, 60.0});
    cc.HandleCapacityReport({1, 20.0});
    cc.HandleUserArrival({101, {15.0, 10.0}, {}, {}});
    cc.HandleUserArrival({102, {40.0, 20.0}, {}, {}});
    const double before = cc.CurrentAggregate();
    const ReoptReport report = cc.ReoptimizeAtTier(tier);
    EXPECT_TRUE(report.budget_limited) << ToString(tier);
    EXPECT_GE(cc.CurrentAggregate(), before - 1e-12) << ToString(tier);
  }
}

// --- Save/restore ---------------------------------------------------------

TEST(ControllerStateTest, SaveRestoreIsBehaviorallyEquivalent) {
  CentralController cc(2, std::make_unique<WoltPolicy>());
  cc.HandleCapacityReport({0, 60.0});
  cc.HandleCapacityReport({1, 20.0});
  cc.HandleUserArrival({101, {15.0, 10.0}, {}, {}});
  cc.AdvanceTime(1.0);
  cc.HandleUserArrival({102, {40.0, 20.0}, {}, {}});
  cc.HandleUserDeparture(101);
  cc.HandleUserArrival({103, {25.0, 35.0}, {}, {}});

  std::string blob;
  cc.SaveState(&blob);
  CentralController restored(2, std::make_unique<WoltPolicy>());
  util::ByteCursor cur(blob);
  ASSERT_TRUE(restored.RestoreState(&cur));
  EXPECT_TRUE(cur.AtEnd());

  EXPECT_EQ(restored.NumUsers(), cc.NumUsers());
  EXPECT_NEAR(restored.CurrentAggregate(), cc.CurrentAggregate(), 1e-12);
  for (const std::int64_t id : cc.UserIds()) {
    EXPECT_EQ(restored.ExtenderOf(id), cc.ExtenderOf(id)) << "user " << id;
  }
  // The restored twin must also *behave* identically from here on.
  const HandleResult ra = cc.HandleScanUpdate({103, {5.0, 45.0}, {}, {}});
  const HandleResult rb =
      restored.HandleScanUpdate({103, {5.0, 45.0}, {}, {}});
  EXPECT_EQ(ra.status, rb.status);
  EXPECT_EQ(ra.directives.size(), rb.directives.size());
  cc.Reoptimize();
  restored.Reoptimize();
  EXPECT_NEAR(restored.CurrentAggregate(), cc.CurrentAggregate(), 1e-12);
  // And re-saving yields the same bytes: the snapshot is canonical.
  std::string blob_a, blob_b;
  cc.SaveState(&blob_a);
  restored.SaveState(&blob_b);
  EXPECT_EQ(blob_a, blob_b);
}

TEST(ControllerStateTest, MalformedBlobLeavesControllerUntouched) {
  CentralController cc(2, std::make_unique<WoltPolicy>());
  cc.HandleCapacityReport({0, 60.0});
  cc.HandleCapacityReport({1, 20.0});
  cc.HandleUserArrival({101, {15.0, 10.0}, {}, {}});
  std::string blob;
  cc.SaveState(&blob);

  // Truncated blob: rejected, state intact (all-or-nothing restore).
  CentralController victim(2, std::make_unique<WoltPolicy>());
  victim.HandleCapacityReport({0, 10.0});
  victim.HandleUserArrival({7, {5.0, 0.0}, {}, {}});
  const double before = victim.CurrentAggregate();
  std::string truncated = blob.substr(0, blob.size() / 2);
  util::ByteCursor cur(truncated);
  EXPECT_FALSE(victim.RestoreState(&cur));
  EXPECT_EQ(victim.NumUsers(), 1u);
  EXPECT_NEAR(victim.CurrentAggregate(), before, 1e-12);
  EXPECT_EQ(victim.ExtenderOf(7), 0);

  // A blob from a controller with a different extender count is refused.
  CentralController wrong(3, std::make_unique<WoltPolicy>());
  util::ByteCursor cur2(blob);
  EXPECT_FALSE(wrong.RestoreState(&cur2));
}

}  // namespace
}  // namespace wolt::core
