#include "plc/csma1901.h"

#include <gtest/gtest.h>

#include <stdexcept>
#include <vector>

#include "util/rng.h"

namespace wolt::plc {
namespace {

constexpr double kSimSeconds = 20.0;

TEST(Csma1901Test, RejectsBadInputs) {
  util::Rng rng(1);
  EXPECT_THROW(SimulateCsma1901(std::vector<double>{}, 1.0, {}, rng),
               std::invalid_argument);
  EXPECT_THROW(SimulateCsma1901(std::vector<double>{100.0, -1.0}, 1.0, {}, rng),
               std::invalid_argument);
  EXPECT_THROW(IsolationThroughput(0.0, {}), std::invalid_argument);
}

TEST(Csma1901Test, SingleExtenderNearsIsolationThroughput) {
  util::Rng rng(2);
  const Csma1901Params params;
  const std::vector<double> rates = {160.0};
  const Csma1901Result r = SimulateCsma1901(rates, kSimSeconds, params, rng);
  EXPECT_EQ(r.collision_events, 0);
  const double iso = IsolationThroughput(160.0, params);
  EXPECT_NEAR(r.aggregate_mbps, iso, iso * 0.05);
}

TEST(Csma1901Test, TimeFairAirtimeWithTwoExtenders) {
  // Fig. 2c, k = 2: each extender gets ~half the airtime, so each delivers
  // ~half of its isolation throughput regardless of its own rate.
  util::Rng rng(3);
  const Csma1901Params params;
  const std::vector<double> rates = {60.0, 160.0};
  const Csma1901Result r = SimulateCsma1901(rates, kSimSeconds, params, rng);
  EXPECT_NEAR(r.stations[0].airtime_share, 0.5, 0.05);
  EXPECT_NEAR(r.stations[1].airtime_share, 0.5, 0.05);
  // Throughputs stay proportional to each link's own rate (NOT equalised —
  // this is what distinguishes PLC time-fairness from WiFi
  // throughput-fairness).
  EXPECT_NEAR(r.stations[1].throughput_mbps / r.stations[0].throughput_mbps,
              160.0 / 60.0, 0.35);
}

class Csma1901SharingTest : public ::testing::TestWithParam<int> {};

TEST_P(Csma1901SharingTest, EachOfKExtendersGetsOneKth) {
  // The paper's headline PLC measurement: with k active extenders each PLC
  // link delivers ~1/k of what it delivers alone.
  const int k = GetParam();
  util::Rng rng(static_cast<std::uint64_t>(k) * 17);
  const Csma1901Params params;
  const std::vector<double> base_rates = {60.0, 90.0, 120.0, 160.0};
  std::vector<double> rates(base_rates.begin(),
                            base_rates.begin() + k);
  const Csma1901Result r = SimulateCsma1901(rates, kSimSeconds, params, rng);
  for (int j = 0; j < k; ++j) {
    const double iso = IsolationThroughput(rates[static_cast<std::size_t>(j)],
                                           params);
    const double expected = iso / static_cast<double>(k);
    // Contention overhead makes the share slightly below 1/k; allow 25%.
    EXPECT_NEAR(r.stations[static_cast<std::size_t>(j)].throughput_mbps,
                expected, expected * 0.25)
        << "k=" << k << " j=" << j;
  }
}

INSTANTIATE_TEST_SUITE_P(ActiveCounts, Csma1901SharingTest,
                         ::testing::Values(1, 2, 3, 4));

TEST(Csma1901Test, AirtimeSharesSumToOne) {
  util::Rng rng(5);
  const std::vector<double> rates = {60.0, 90.0, 120.0, 160.0};
  const Csma1901Result r = SimulateCsma1901(rates, kSimSeconds, {}, rng);
  double total = 0.0;
  for (const auto& st : r.stations) total += st.airtime_share;
  EXPECT_NEAR(total, 1.0, 1e-9);
}

TEST(Csma1901Test, DeferralCountersEngageUnderContention) {
  // The 1901-specific mechanism: with several saturated stations, deferral
  // jumps must occur (stations back off without colliding).
  util::Rng rng(6);
  const std::vector<double> rates(6, 100.0);
  const Csma1901Result r = SimulateCsma1901(rates, kSimSeconds, {}, rng);
  std::int64_t jumps = 0;
  for (const auto& st : r.stations) jumps += st.deferral_jumps;
  EXPECT_GT(jumps, 0);
}

TEST(Csma1901Test, CollisionRateStaysModerate) {
  // Deferral counters keep 1901 collision rates below a naive DCF at the
  // same population; sanity-check the mechanism keeps collisions bounded.
  util::Rng rng(7);
  const std::vector<double> rates(8, 100.0);
  const Csma1901Result r = SimulateCsma1901(rates, kSimSeconds, {}, rng);
  std::int64_t successes = 0;
  for (const auto& st : r.stations) successes += st.successes;
  EXPECT_GT(successes, 0);
  EXPECT_LT(static_cast<double>(r.collision_events),
            0.5 * static_cast<double>(successes));
}

TEST(Csma1901Test, DeterministicGivenSeed) {
  const std::vector<double> rates = {60.0, 120.0};
  util::Rng a(42), b(42);
  const Csma1901Result ra = SimulateCsma1901(rates, 2.0, {}, a);
  const Csma1901Result rb = SimulateCsma1901(rates, 2.0, {}, b);
  for (std::size_t i = 0; i < rates.size(); ++i) {
    EXPECT_EQ(ra.stations[i].successes, rb.stations[i].successes);
  }
}

TEST(Csma1901PriorityTest, HigherClassPreemptsLower) {
  // Two saturated stations, CA3 vs CA1: the high-priority one should run
  // at ~its isolation throughput while the low-priority one starves.
  util::Rng rng(8);
  const Csma1901Params params;
  const std::vector<double> rates = {100.0, 100.0};
  const std::vector<int> prios = {3, 1};
  const Csma1901Result r =
      SimulateCsma1901(rates, prios, kSimSeconds, params, rng);
  const double iso = IsolationThroughput(100.0, params);
  EXPECT_NEAR(r.stations[0].throughput_mbps, iso, iso * 0.1);
  EXPECT_LT(r.stations[1].throughput_mbps, iso * 0.05);
}

TEST(Csma1901PriorityTest, EqualPrioritiesMatchDefaultOverload) {
  const std::vector<double> rates = {60.0, 160.0};
  util::Rng a(21), b(21);
  const Csma1901Result base = SimulateCsma1901(rates, 5.0, {}, a);
  const std::vector<int> prios = {1, 1};
  const Csma1901Result explicit_prio =
      SimulateCsma1901(rates, prios, 5.0, {}, b);
  for (std::size_t i = 0; i < rates.size(); ++i) {
    EXPECT_EQ(base.stations[i].successes,
              explicit_prio.stations[i].successes);
  }
}

TEST(Csma1901PriorityTest, SamePriorityPeersStillShareFairly) {
  util::Rng rng(22);
  const std::vector<double> rates = {100.0, 100.0, 100.0};
  const std::vector<int> prios = {2, 2, 0};
  const Csma1901Result r =
      SimulateCsma1901(rates, prios, kSimSeconds, {}, rng);
  // The two CA2 stations split the medium; the CA0 one starves.
  EXPECT_NEAR(r.stations[0].airtime_share, 0.5, 0.05);
  EXPECT_NEAR(r.stations[1].airtime_share, 0.5, 0.05);
  EXPECT_LT(r.stations[2].airtime_share, 0.02);
}

TEST(Csma1901PriorityTest, InputValidation) {
  util::Rng rng(23);
  const std::vector<double> rates = {100.0};
  EXPECT_THROW(
      SimulateCsma1901(rates, std::vector<int>{1, 2}, 1.0, {}, rng),
      std::invalid_argument);
  EXPECT_THROW(SimulateCsma1901(rates, std::vector<int>{7}, 1.0, {}, rng),
               std::invalid_argument);
}

TEST(Csma1901Test, IsolationThroughputScalesWithRate) {
  const Csma1901Params params;
  EXPECT_NEAR(IsolationThroughput(120.0, params),
              2.0 * IsolationThroughput(60.0, params), 1e-9);
  EXPECT_LT(IsolationThroughput(100.0, params), 100.0);
}

}  // namespace
}  // namespace wolt::plc
