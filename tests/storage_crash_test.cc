// Crash-consistency harness over the storage fault plane (fault/storage.h):
// enumerate EVERY I/O operation a journaled run performs, simulate a power
// cut at each one — in-process, no fork — and assert the PR 5/7 guarantees
// survive: the resumed run's output is byte-identical to an uninterrupted
// run, no task/round is duplicated or lost, and the fingerprint binding
// still rejects foreign journals.
//
// Mechanics: the run journals through FaultVfs(MemVfs) with crash_at_op=k —
// every operation from index k on is silently swallowed (the k-th write
// lands half its bytes: a torn final write), so the process "keeps running
// on a dead disk" exactly like a real power cut it hasn't noticed. The
// run's in-memory result is discarded, MemVfs::SimulateCrash() rolls the
// disk back to its durable image, and a resume run against the survivor
// must reproduce the golden bytes. A second exhaustive sweep injects
// ENOSPC at every op index instead and asserts graceful degradation: the
// run's *results* are byte-identical regardless, journaling just turns
// itself off. Bit-rot tests flip bits in completed journals and assert
// replay truncates to the last good checksum frame (recover.*.rot_truncated)
// instead of aborting.
//
// journal_sync_every_append is on throughout so every append is a distinct
// durable point — the sweep visits resume states that differ record by
// record. Under sanitizers the op grid is strided (process is ~10x slower);
// the ci.sh TSan lane runs the randomized 20-seed test instead.
#include <gtest/gtest.h>

#include <cstdint>
#include <optional>
#include <stdexcept>
#include <string>

#include "fault/storage.h"
#include "fleet/runtime.h"
#include "obs/obs.h"
#include "recover/fleet_journal.h"
#include "recover/journal.h"
#include "sweep/engine.h"
#include "sweep/grid.h"
#include "sweep/report.h"
#include "util/rng.h"

namespace wolt {
namespace {

using fault::FaultVfs;
using fault::MemVfs;
using fault::StorageFaultParams;

#if defined(__SANITIZE_ADDRESS__) || defined(__SANITIZE_THREAD__)
constexpr std::uint64_t kStride = 7;  // sampled crash points (slow builds)
#else
constexpr std::uint64_t kStride = 1;  // exhaustive
#endif

const char kSweepJournal[] = "sweep.wal";
const char kFleetJournal[] = "fleet.wal";

// ---------------------------------------------------------------------------
// Sweep side: a 64-task journaled grid

// 2 users x 1 extenders x 1 sharing x 2 policies x 16 seeds = 64 tasks,
// each tiny (4-6 users, 2 extenders) so the exhaustive op sweep stays fast.
sweep::SweepGrid SweepCrashGrid() {
  sweep::SweepGrid grid;
  grid.master_seed = 0x57A6C4A5ULL;
  grid.SeedRange(16);
  grid.users = {4, 6};
  grid.extenders = {2};
  grid.sharing = {model::PlcSharing::kMaxMinActive};
  grid.policies = {sweep::PolicyKind::kWolt, sweep::PolicyKind::kGreedy};
  return grid;
}

sweep::SweepOptions SweepCrashOptions(int threads, io::Vfs* vfs,
                                      bool resume) {
  sweep::SweepOptions opt;
  opt.threads = threads;
  opt.collect_metrics = true;
  opt.journal_path = kSweepJournal;
  opt.journal_compact_every = 24;  // two compactions inside the 64 appends
  opt.journal_sync_every_append = true;
  opt.vfs = vfs;
  opt.resume = resume;
  return opt;
}

struct SweepGolden {
  std::string task_csv;
  std::string group_csv;
  std::string metrics_json;
};

SweepGolden RenderSweep(const sweep::SweepResult& result) {
  SweepGolden out;
  out.task_csv = sweep::TaskCsvString(result);
  out.group_csv = sweep::GroupCsvString(result);
  out.metrics_json = result.metrics.DeterministicJson();
  return out;
}

// Shared fixture state, built once: the golden outputs and the op count of
// one clean journaled run (the exclusive crash/fail index bound).
struct SweepHarness {
  sweep::SweepGrid grid = SweepCrashGrid();
  SweepGolden golden;
  std::uint64_t ops = 0;

  SweepHarness() {
    MemVfs mem;
    FaultVfs counting(mem, StorageFaultParams{}, /*seed=*/0);
    sweep::SweepEngine engine(SweepCrashOptions(1, &counting, false));
    golden = RenderSweep(engine.Run(grid));
    ops = counting.op_count();
  }
};

const SweepHarness& Sweep() {
  static const SweepHarness harness;
  return harness;
}

// One crash point: run-on-dying-disk at `k`, power cut, resume, compare.
void CheckSweepCrashPoint(std::uint64_t k, int threads) {
  const SweepHarness& h = Sweep();
  MemVfs mem;
  StorageFaultParams params;
  params.crash_at_op = k;
  FaultVfs dying(mem, params, /*seed=*/k + 1);
  {
    sweep::SweepEngine engine(SweepCrashOptions(threads, &dying, false));
    engine.Run(h.grid);  // completes obliviously; results die with power
  }
  mem.SimulateCrash();

  sweep::SweepEngine engine(SweepCrashOptions(threads, &mem, true));
  const sweep::SweepResult resumed = engine.Run(h.grid);
  const std::size_t num_tasks = h.grid.NumTasks();
  ASSERT_FALSE(resumed.cancelled) << "crash op " << k;
  EXPECT_FALSE(resumed.journal_degraded) << "crash op " << k;
  EXPECT_LE(resumed.resumed_tasks, num_tasks) << "crash op " << k;

  const SweepGolden got = RenderSweep(resumed);
  EXPECT_EQ(got.task_csv, h.golden.task_csv) << "crash op " << k;
  EXPECT_EQ(got.group_csv, h.golden.group_csv) << "crash op " << k;
  EXPECT_EQ(got.metrics_json, h.golden.metrics_json) << "crash op " << k;

  // No lost or duplicated tasks: the healed journal holds exactly one
  // record per task and nothing else.
  const recover::JournalReadResult check =
      recover::ReadJournal(kSweepJournal, &mem);
  ASSERT_TRUE(check.ok) << "crash op " << k << ": " << check.error;
  EXPECT_EQ(check.records.size(), num_tasks) << "crash op " << k;
  EXPECT_EQ(check.torn_bytes, 0u) << "crash op " << k;
}

TEST(StorageCrashSweep, SixtyFourTasks) {
  ASSERT_EQ(Sweep().grid.NumTasks(), 64u);
  ASSERT_GE(Sweep().ops, 64u);  // at least one op per append
}

TEST(StorageCrashSweep, PowerCutAtEveryOpResumesByteIdenticalOneThread) {
  for (std::uint64_t k = 0; k <= Sweep().ops; k += kStride) {
    CheckSweepCrashPoint(k, /*threads=*/1);
  }
}

TEST(StorageCrashSweep, PowerCutAtEveryOpResumesByteIdenticalFourThreads) {
  // At 4 threads the op order is schedule-dependent; crash_at_op=k cuts
  // whatever schedule this run happened to take — the property must hold
  // for any of them. (ops from the 1-thread run bounds the index range;
  // indices past the actual count degenerate to a clean run, also fine.)
  for (std::uint64_t k = 0; k <= Sweep().ops; k += kStride) {
    CheckSweepCrashPoint(k, /*threads=*/4);
  }
}

TEST(StorageCrashSweep, EnospcAtEveryOpDegradesGracefully) {
  const SweepHarness& h = Sweep();
  bool saw_degraded = false;
  for (std::uint64_t k = 0; k <= h.ops; k += kStride) {
    MemVfs mem;
    StorageFaultParams params;
    params.fail_at_op = k;  // fail_at_op_err defaults to ENOSPC
    FaultVfs full_disk(mem, params, /*seed=*/k + 1);
    sweep::SweepEngine engine(SweepCrashOptions(1, &full_disk, false));
    const sweep::SweepResult result = engine.Run(h.grid);

    // The run's results never depend on journal health.
    const SweepGolden got = RenderSweep(result);
    EXPECT_EQ(got.task_csv, h.golden.task_csv) << "fail op " << k;
    EXPECT_EQ(got.metrics_json, h.golden.metrics_json) << "fail op " << k;
    saw_degraded = saw_degraded || result.journal_degraded;

    // Whatever survived on disk is a clean prefix — replay never chokes.
    const recover::JournalReadResult check =
        recover::ReadJournal(kSweepJournal, &mem);
    if (check.ok) {
      EXPECT_LE(check.records.size(), h.grid.NumTasks()) << "fail op " << k;
    }
  }
  EXPECT_TRUE(saw_degraded);  // at least the op-0 open failure degrades
}

TEST(StorageCrashSweep, BitRotReplaysToLastGoodFrame) {
  const SweepHarness& h = Sweep();
  MemVfs mem;
  {
    sweep::SweepEngine engine(SweepCrashOptions(1, &mem, false));
    engine.Run(h.grid);
  }
  const std::optional<std::string> bytes = mem.GetFileBytes(kSweepJournal);
  ASSERT_TRUE(bytes.has_value());
  ASSERT_TRUE(mem.FlipBit(kSweepJournal, (bytes->size() - 3) * 8));

  obs::MetricsRegistry reg;
  obs::ScopedMetrics scoped(reg);
  const recover::JournalReadResult rotted =
      recover::ReadJournal(kSweepJournal, &mem);
  ASSERT_TRUE(rotted.ok) << rotted.error;  // truncated, not aborted
  EXPECT_TRUE(rotted.tail_rot);
  EXPECT_LT(rotted.records.size(), h.grid.NumTasks());

  sweep::SweepEngine engine(SweepCrashOptions(1, &mem, true));
  const SweepGolden got = RenderSweep(engine.Run(h.grid));
  EXPECT_EQ(got.task_csv, h.golden.task_csv);
  EXPECT_EQ(got.metrics_json, h.golden.metrics_json);
#if WOLT_OBS_ENABLED
  EXPECT_GE(reg.GetCounter("recover.journal.rot_truncated").Value(), 1u);
#endif
}

TEST(StorageCrashSweep, FingerprintBindingSurvivesCrashes) {
  // Crash a journaled run for grid A, then try to resume grid B over the
  // survivor: the binding must still be enforced on the faulted disk.
  const SweepHarness& h = Sweep();
  MemVfs mem;
  StorageFaultParams params;
  params.crash_at_op = 40;  // past the header: a valid journal survives
  FaultVfs dying(mem, params, /*seed=*/1);
  {
    sweep::SweepEngine engine(SweepCrashOptions(1, &dying, false));
    engine.Run(h.grid);
  }
  mem.SimulateCrash();
  ASSERT_TRUE(recover::ReadJournal(kSweepJournal, &mem).ok);

  sweep::SweepGrid other = h.grid;
  other.master_seed ^= 0xBADF00DULL;
  sweep::SweepEngine engine(SweepCrashOptions(1, &mem, true));
  EXPECT_THROW(engine.Run(other), std::runtime_error);
}

// ---------------------------------------------------------------------------
// Fleet side: a 16-shard journaled run

constexpr std::size_t kFleetShards = 16;
constexpr std::uint64_t kFleetRounds = 4;
constexpr std::uint64_t kFleetSeed = 0xF1EE7D15CULL;

fleet::FleetParams FleetCrashParams(int threads, io::Vfs* vfs, bool resume) {
  fleet::FleetParams p;
  p.num_shards = kFleetShards;
  p.rounds = kFleetRounds;
  p.threads = threads;
  p.queue_capacity = kFleetShards * 6;
  p.batch_per_shard = 8;
  p.chaos_from = 1;
  p.chaos_to = 3;
  fault::WireFaults w;
  w.loss = 0.05;
  w.corrupt = 0.15;
  p.shard.wire = fault::FaultPlaneParams::Uniform(w);
  p.shard.plc_crash_prob = 0.12;
  p.shard.departure_prob = 0.08;
  p.poison_shards = {5};
  p.poison_from = 1;
  p.poison_to = ~std::uint64_t{0};
  p.supervisor.backoff_initial = 1;
  p.supervisor.crash_loop_threshold = 2;
  p.supervisor.crash_loop_window = 8;
  p.supervisor.probe_after = 5;
  p.reopt_units_per_round = kFleetShards * 2;
  p.journal_path = kFleetJournal;
  p.snapshot_every = 2;
  p.journal_sync_every_append = true;
  p.vfs = vfs;
  p.resume = resume;
  return p;
}

struct FleetHarness {
  std::string golden;
  std::uint64_t ops = 0;

  FleetHarness() {
    MemVfs mem;
    FaultVfs counting(mem, StorageFaultParams{}, /*seed=*/0);
    fleet::FleetRuntime fleet(FleetCrashParams(1, &counting, false),
                              kFleetSeed);
    const fleet::FleetResult result = fleet.Run();
    EXPECT_TRUE(result.completed) << result.error;
    golden = result.Report();
    ops = counting.op_count();
  }
};

const FleetHarness& Fleet() {
  static const FleetHarness harness;
  return harness;
}

void CheckFleetCrashPoint(std::uint64_t k, int threads) {
  const FleetHarness& h = Fleet();
  MemVfs mem;
  StorageFaultParams params;
  params.crash_at_op = k;
  FaultVfs dying(mem, params, /*seed=*/k + 1);
  {
    fleet::FleetRuntime fleet(FleetCrashParams(threads, &dying, false),
                              kFleetSeed);
    const fleet::FleetResult doomed = fleet.Run();
    ASSERT_TRUE(doomed.completed) << "crash op " << k << ": " << doomed.error;
  }
  mem.SimulateCrash();

  fleet::FleetRuntime fleet(FleetCrashParams(threads, &mem, true),
                            kFleetSeed);
  const fleet::FleetResult resumed = fleet.Run();
  ASSERT_TRUE(resumed.completed) << "crash op " << k << ": " << resumed.error;
  EXPECT_FALSE(resumed.journal_degraded) << "crash op " << k;
  EXPECT_EQ(resumed.Report(), h.golden) << "crash op " << k;
  EXPECT_LE(resumed.resumed_rounds, kFleetRounds) << "crash op " << k;

  const recover::FleetJournalReadResult check =
      recover::ReadFleetJournal(kFleetJournal, &mem);
  ASSERT_TRUE(check.ok) << "crash op " << k << ": " << check.error;
  EXPECT_TRUE(check.has_checkpoint) << "crash op " << k;
  EXPECT_EQ(check.checkpoint_round, kFleetRounds - 1) << "crash op " << k;
}

TEST(StorageCrashFleet, GoldenIsThreadCountIndependent) {
  MemVfs mem;
  fleet::FleetRuntime fleet(FleetCrashParams(4, &mem, false), kFleetSeed);
  const fleet::FleetResult result = fleet.Run();
  ASSERT_TRUE(result.completed) << result.error;
  EXPECT_EQ(result.Report(), Fleet().golden);
}

TEST(StorageCrashFleet, PowerCutAtEveryOpResumesByteIdenticalOneThread) {
  for (std::uint64_t k = 0; k <= Fleet().ops; k += kStride) {
    CheckFleetCrashPoint(k, /*threads=*/1);
  }
}

TEST(StorageCrashFleet, PowerCutAtEveryOpResumesByteIdenticalFourThreads) {
  for (std::uint64_t k = 0; k <= Fleet().ops; k += kStride) {
    CheckFleetCrashPoint(k, /*threads=*/4);
  }
}

TEST(StorageCrashFleet, BitRotReplaysToLastValidFrame) {
  const FleetHarness& h = Fleet();
  MemVfs mem;
  {
    fleet::FleetRuntime fleet(FleetCrashParams(1, &mem, false), kFleetSeed);
    ASSERT_TRUE(fleet.Run().completed);
  }
  const std::optional<std::string> bytes = mem.GetFileBytes(kFleetJournal);
  ASSERT_TRUE(bytes.has_value());
  ASSERT_TRUE(mem.FlipBit(kFleetJournal, (bytes->size() - 3) * 8));

  obs::MetricsRegistry reg;
  obs::ScopedMetrics scoped(reg);
  const recover::FleetJournalReadResult rotted =
      recover::ReadFleetJournal(kFleetJournal, &mem);
  ASSERT_TRUE(rotted.ok) << rotted.error;  // truncated, not aborted
  EXPECT_TRUE(rotted.tail_rot);

  fleet::FleetRuntime fleet(FleetCrashParams(1, &mem, true), kFleetSeed);
  const fleet::FleetResult resumed = fleet.Run();
  ASSERT_TRUE(resumed.completed) << resumed.error;
  EXPECT_EQ(resumed.Report(), h.golden);
#if WOLT_OBS_ENABLED
  EXPECT_GE(reg.GetCounter("recover.fleet.rot_truncated").Value(), 1u);
#endif
}

// ---------------------------------------------------------------------------
// Randomized lane (the TSan ci.sh smoke: cheap, schedule-hungry)

TEST(StorageCrashRandomized, TwentyRandomCrashPoints) {
  util::Rng rng(20260807);
  const int threads_cycle[3] = {1, 2, 4};
  for (int i = 0; i < 20; ++i) {
    const int threads = threads_cycle[i % 3];
    if (i % 2 == 0) {
      const std::uint64_t k = static_cast<std::uint64_t>(
          rng.UniformInt(0, static_cast<int>(Sweep().ops)));
      CheckSweepCrashPoint(k, threads);
    } else {
      const std::uint64_t k = static_cast<std::uint64_t>(
          rng.UniformInt(0, static_cast<int>(Fleet().ops)));
      CheckFleetCrashPoint(k, threads);
    }
  }
}

}  // namespace
}  // namespace wolt
