// Cross-policy property suite: invariants every association policy must
// satisfy on randomized instances, plus structural properties of the
// throughput model that policies rely on.
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "core/greedy.h"
#include "core/optimal.h"
#include "core/rssi.h"
#include "core/wolt.h"
#include "model/evaluator.h"
#include "util/rng.h"

namespace wolt {
namespace {

model::Network RandomNetwork(util::Rng& rng, std::size_t users,
                             std::size_t exts, double reach_probability) {
  model::Network net(users, exts);
  for (std::size_t j = 0; j < exts; ++j) {
    net.SetPlcRate(j, rng.Uniform(20.0, 160.0));
  }
  for (std::size_t i = 0; i < users; ++i) {
    for (std::size_t j = 0; j < exts; ++j) {
      if (rng.Bernoulli(reach_probability)) {
        net.SetWifiRate(i, j, rng.Uniform(5.0, 65.0));
      }
    }
  }
  return net;
}

std::vector<core::PolicyPtr> AllPolicies() {
  std::vector<core::PolicyPtr> policies;
  policies.push_back(std::make_unique<core::WoltPolicy>());
  core::WoltOptions so;
  so.subset_search = true;
  policies.push_back(std::make_unique<core::WoltPolicy>(so));
  core::WoltOptions nlp;
  nlp.use_nlp_phase2 = true;
  policies.push_back(std::make_unique<core::WoltPolicy>(nlp));
  core::WoltOptions e2e;
  e2e.phase2_objective = assign::Phase2Objective::kEndToEnd;
  policies.push_back(std::make_unique<core::WoltPolicy>(e2e));
  core::WoltOptions pf;
  pf.phase2_objective = assign::Phase2Objective::kProportionalFair;
  policies.push_back(std::make_unique<core::WoltPolicy>(pf));
  policies.push_back(std::make_unique<core::GreedyPolicy>());
  policies.push_back(std::make_unique<core::RssiPolicy>());
  return policies;
}

class PolicyPropertyTest : public ::testing::TestWithParam<int> {};

TEST_P(PolicyPropertyTest, AssignmentsAreValidAndCoverReachableUsers) {
  util::Rng rng(static_cast<std::uint64_t>(GetParam()) * 127);
  const model::Network net = RandomNetwork(rng, 10, 4, 0.7);
  for (const auto& policy : AllPolicies()) {
    const model::Assignment a = policy->AssociateFresh(net);
    EXPECT_TRUE(a.IsValidFor(net)) << policy->Name();
    for (std::size_t i = 0; i < net.NumUsers(); ++i) {
      if (net.UserReachable(i)) {
        EXPECT_TRUE(a.IsAssigned(i))
            << policy->Name() << " left reachable user " << i << " out";
      } else {
        EXPECT_FALSE(a.IsAssigned(i));
      }
    }
  }
}

TEST_P(PolicyPropertyTest, PoliciesAreDeterministic) {
  util::Rng rng(static_cast<std::uint64_t>(GetParam()) * 131);
  const model::Network net = RandomNetwork(rng, 8, 3, 0.8);
  for (const auto& policy : AllPolicies()) {
    const model::Assignment a = policy->AssociateFresh(net);
    const model::Assignment b = policy->AssociateFresh(net);
    EXPECT_EQ(a, b) << policy->Name();
  }
}

TEST_P(PolicyPropertyTest, CapacityLimitsAlwaysRespected) {
  util::Rng rng(static_cast<std::uint64_t>(GetParam()) * 137);
  model::Network net = RandomNetwork(rng, 9, 3, 1.0);
  for (std::size_t j = 0; j < 3; ++j) net.SetMaxUsers(j, 3);
  for (const auto& policy : AllPolicies()) {
    const model::Assignment a = policy->AssociateFresh(net);
    // The NLP Phase-II variant does not enforce B_j (the paper relaxes the
    // constraint); every other policy must respect the caps.
    if (!a.IsValidFor(net)) continue;
    const auto load = a.LoadVector(3);
    for (int l : load) {
      EXPECT_LE(l, 3) << policy->Name();
    }
  }
}

TEST_P(PolicyPropertyTest, OptimalDominatesEveryPolicy) {
  util::Rng rng(static_cast<std::uint64_t>(GetParam()) * 139);
  const model::Network net = RandomNetwork(rng, 6, 3, 0.9);
  bool any_reachable = false;
  for (std::size_t i = 0; i < net.NumUsers(); ++i) {
    if (net.UserReachable(i)) any_reachable = true;
  }
  if (!any_reachable) return;
  const model::Evaluator evaluator;
  double opt = 0.0;
  try {
    core::OptimalPolicy optimal;
    opt = evaluator.AggregateThroughput(net, optimal.AssociateFresh(net));
  } catch (const std::exception&) {
    return;  // instance has no complete feasible assignment
  }
  for (const auto& policy : AllPolicies()) {
    const model::Assignment a = policy->AssociateFresh(net);
    if (!a.IsCompleteFor(net)) continue;  // optimal only defined on complete
    EXPECT_LE(evaluator.AggregateThroughput(net, a), opt + 1e-9)
        << policy->Name();
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, PolicyPropertyTest, ::testing::Range(1, 16));

// --- Model structure the policies rely on ---

class ModelScalingTest : public ::testing::TestWithParam<int> {};

TEST_P(ModelScalingTest, AggregateScalesLinearlyWithAllRates) {
  util::Rng rng(static_cast<std::uint64_t>(GetParam()) * 149);
  const model::Network net = RandomNetwork(rng, 8, 3, 1.0);
  model::Network scaled(net.NumUsers(), net.NumExtenders());
  const double alpha = 2.5;
  for (std::size_t j = 0; j < net.NumExtenders(); ++j) {
    scaled.SetPlcRate(j, net.PlcRate(j) * alpha);
  }
  for (std::size_t i = 0; i < net.NumUsers(); ++i) {
    for (std::size_t j = 0; j < net.NumExtenders(); ++j) {
      scaled.SetWifiRate(i, j, net.WifiRate(i, j) * alpha);
    }
  }
  model::Assignment a(net.NumUsers());
  for (std::size_t i = 0; i < net.NumUsers(); ++i) {
    a.Assign(i, static_cast<std::size_t>(rng.UniformInt(0, 2)));
  }
  const model::Evaluator evaluator;
  EXPECT_NEAR(evaluator.AggregateThroughput(scaled, a),
              alpha * evaluator.AggregateThroughput(net, a), 1e-6);
}

TEST_P(ModelScalingTest, ScalingPreservesWoltDecisions) {
  // Homogeneous scaling changes no relative comparison, so WOLT must pick
  // the same assignment.
  util::Rng rng(static_cast<std::uint64_t>(GetParam()) * 151);
  const model::Network net = RandomNetwork(rng, 8, 3, 1.0);
  model::Network scaled = net;
  for (std::size_t j = 0; j < net.NumExtenders(); ++j) {
    scaled.SetPlcRate(j, net.PlcRate(j) * 3.0);
  }
  for (std::size_t i = 0; i < net.NumUsers(); ++i) {
    for (std::size_t j = 0; j < net.NumExtenders(); ++j) {
      scaled.SetWifiRate(i, j, net.WifiRate(i, j) * 3.0);
    }
  }
  core::WoltPolicy wolt;
  EXPECT_EQ(wolt.AssociateFresh(net), wolt.AssociateFresh(scaled));
}

INSTANTIATE_TEST_SUITE_P(Seeds, ModelScalingTest, ::testing::Range(1, 16));

}  // namespace
}  // namespace wolt
