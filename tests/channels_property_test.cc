// Property battery for the channel-plan substrate (wifi/channels.h) that
// the joint solver builds on: graceful degradation when a neighbourhood
// exhausts every channel, singleton components for isolated extenders, the
// num_channels = 1 degenerate case, determinism, permutation invariance of
// plan quality, and the equal-weights reduction of the association-weighted
// recolouring to the unweighted colouring.
#include "wifi/channels.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <numeric>
#include <set>
#include <stdexcept>
#include <vector>

#include "model/network.h"
#include "sim/scenario.h"
#include "util/rng.h"

namespace wolt::wifi {
namespace {

constexpr double kRange = 60.0;

// A bare geometry: n extenders at the given positions, no users (colouring
// only reads positions).
model::Network GeometryNet(const std::vector<model::Position>& positions) {
  model::Network net(0, positions.size());
  for (std::size_t j = 0; j < positions.size(); ++j) {
    net.SetExtenderPosition(j, positions[j]);
  }
  return net;
}

model::Network RandomFloor(int seed, std::size_t extenders) {
  sim::ScenarioParams p;
  p.width_m = 120.0;
  p.height_m = 120.0;
  p.num_users = 1;
  p.num_extenders = extenders;
  sim::ScenarioGenerator gen(p);
  util::Rng rng(0xc4a2 + static_cast<std::uint64_t>(seed) * 2654435761u);
  return gen.Generate(rng);
}

TEST(ChannelsPropertyTest, ExhaustedNeighbourhoodDegradesToLeastUsed) {
  // K4 clique (every pair within range) with only 2 channels: a proper
  // colouring is impossible, but the greedy fallback must still return
  // in-range channels and split the clique evenly — 2 conflicts is the
  // optimum for K4 under 2 colours, against 6 on a single channel.
  const model::Network net = GeometryNet({{0, 0}, {10, 0}, {0, 10}, {10, 10}});
  ChannelPlanParams params;
  params.num_channels = 2;
  params.interference_range_m = kRange;

  const std::vector<int> plan = AssignChannels(net, params);
  ASSERT_EQ(plan.size(), 4u);
  int on_zero = 0;
  for (int c : plan) {
    ASSERT_GE(c, 0);
    ASSERT_LT(c, 2);
    if (c == 0) ++on_zero;
  }
  EXPECT_EQ(on_zero, 2) << "least-used fallback should balance the clique";
  EXPECT_EQ(CountConflicts(net, plan, kRange), 2u);
  EXPECT_EQ(CountConflicts(net, SameChannelPlan(net), kRange), 6u);
}

TEST(ChannelsPropertyTest, IsolatedExtendersFormSingletonComponents) {
  // Extenders spaced beyond carrier-sense range: no interference edges, so
  // the greedy colouring puts everyone on channel 0 and every contention
  // domain is a singleton.
  const model::Network net =
      GeometryNet({{0, 0}, {200, 0}, {0, 200}, {200, 200}, {400, 400}});
  const std::vector<int> plan = AssignChannels(net, {});
  for (int c : plan) EXPECT_EQ(c, 0);

  const std::vector<int> domains = ContentionDomains(net, plan, kRange);
  std::set<int> distinct(domains.begin(), domains.end());
  EXPECT_EQ(distinct.size(), net.NumExtenders());
  EXPECT_EQ(CountConflicts(net, plan, kRange), 0u);
}

TEST(ChannelsPropertyTest, SingleChannelDegeneratesToSameChannelPlan) {
  for (int seed = 0; seed < 20; ++seed) {
    const model::Network net = RandomFloor(seed, 2 + seed % 6);
    ChannelPlanParams params;
    params.num_channels = 1;
    params.interference_range_m = kRange;
    EXPECT_EQ(AssignChannels(net, params), SameChannelPlan(net))
        << "seed=" << seed;
    const std::vector<double> weights(net.NumExtenders(), 2.5);
    EXPECT_EQ(AssignChannelsWeighted(net, weights, params),
              SameChannelPlan(net))
        << "seed=" << seed;
  }
}

TEST(ChannelsPropertyTest, ColouringIsDeterministic) {
  for (int seed = 0; seed < 20; ++seed) {
    const model::Network net = RandomFloor(seed, 3 + seed % 8);
    EXPECT_EQ(AssignChannels(net, {}), AssignChannels(net, {}))
        << "seed=" << seed;
  }
}

TEST(ChannelsPropertyTest, PlanQualityInvariantUnderIdPermutation) {
  // Relabelling extenders may change the plan (tie-breaks are id-based by
  // design, for determinism), but never its quality: the same geometry must
  // colour to the same number of same-channel conflicts.
  for (int seed = 0; seed < 20; ++seed) {
    const model::Network net = RandomFloor(seed, 4 + seed % 5);
    const std::size_t n = net.NumExtenders();

    std::vector<std::size_t> perm(n);
    std::iota(perm.begin(), perm.end(), 0);
    util::Rng rng(0x9e37 + static_cast<std::uint64_t>(seed));
    for (std::size_t k = n; k > 1; --k) {
      const std::size_t r =
          static_cast<std::size_t>(rng.UniformInt(0, static_cast<int>(k) - 1));
      std::swap(perm[k - 1], perm[r]);
    }

    std::vector<model::Position> shuffled(n);
    for (std::size_t k = 0; k < n; ++k) {
      shuffled[k] = net.ExtenderAt(perm[k]).position;
    }
    const model::Network permuted = GeometryNet(shuffled);

    const std::size_t direct =
        CountConflicts(net, AssignChannels(net, {}), kRange);
    const std::size_t relabelled =
        CountConflicts(permuted, AssignChannels(permuted, {}), kRange);
    EXPECT_EQ(direct, relabelled) << "seed=" << seed;
  }
}

TEST(ChannelsPropertyTest, EqualPositiveWeightsReduceToUnweighted) {
  for (int seed = 0; seed < 20; ++seed) {
    const model::Network net = RandomFloor(seed, 3 + seed % 8);
    const std::vector<double> weights(net.NumExtenders(), 1.0);
    EXPECT_EQ(AssignChannelsWeighted(net, weights, {}),
              AssignChannels(net, {}))
        << "seed=" << seed;
  }
}

TEST(ChannelsPropertyTest, WeightedColouringShedsConflictWeightToLightCells) {
  // Three mutually interfering extenders, two channels: the two heaviest
  // must land on distinct channels, leaving the (weight-0) third to absorb
  // the collision.
  const model::Network net = GeometryNet({{0, 0}, {10, 0}, {5, 8}});
  ChannelPlanParams params;
  params.num_channels = 2;
  params.interference_range_m = kRange;
  const std::vector<int> plan =
      AssignChannelsWeighted(net, {5.0, 4.0, 0.0}, params);
  EXPECT_NE(plan[0], plan[1]);
}

TEST(ChannelsPropertyTest, InvalidArgumentsThrow) {
  const model::Network net = GeometryNet({{0, 0}, {10, 0}});
  ChannelPlanParams bad;
  bad.num_channels = 0;
  EXPECT_THROW(AssignChannels(net, bad), std::invalid_argument);
  EXPECT_THROW(AssignChannelsWeighted(net, {1.0, 1.0}, bad),
               std::invalid_argument);
  EXPECT_THROW(AssignChannelsWeighted(net, {1.0}, {}), std::invalid_argument);
  EXPECT_THROW(AssignChannelsWeighted(net, {1.0, -0.5}, {}),
               std::invalid_argument);
}

}  // namespace
}  // namespace wolt::wifi
