#include "plc/channel.h"

#include <gtest/gtest.h>

#include <stdexcept>

#include "plc/capacity.h"
#include "util/rng.h"
#include "util/stats.h"

namespace wolt::plc {
namespace {

TEST(ChannelModelTest, RejectsBadParams) {
  ChannelModelParams p;
  p.num_subcarriers = 0;
  EXPECT_THROW(ChannelModel{p}, std::invalid_argument);
  p = {};
  p.band_high_mhz = p.band_low_mhz;
  EXPECT_THROW(ChannelModel{p}, std::invalid_argument);
}

TEST(ChannelModelTest, SnrDecaysWithLengthFrequencyAndTaps) {
  const ChannelModel model;
  PlcPath a{10.0, 0, 0.0};
  PlcPath b{30.0, 0, 0.0};
  EXPECT_GT(model.SnrDb(a, 10.0), model.SnrDb(b, 10.0));
  EXPECT_GT(model.SnrDb(a, 10.0), model.SnrDb(a, 50.0));
  PlcPath tapped = a;
  tapped.branch_taps = 3;
  EXPECT_GT(model.SnrDb(a, 10.0), model.SnrDb(tapped, 10.0));
}

TEST(ChannelModelTest, BitLoadingClampedAndMonotone) {
  const ChannelModel model;
  EXPECT_EQ(model.BitsPerCarrier(-20.0), 0);
  EXPECT_EQ(model.BitsPerCarrier(100.0), model.params().max_bits_per_carrier);
  int prev = 0;
  for (double snr = 0.0; snr <= 60.0; snr += 1.0) {
    const int bits = model.BitsPerCarrier(snr);
    ASSERT_GE(bits, prev);
    prev = bits;
  }
}

TEST(ChannelModelTest, CapacityMonotoneInWireLength) {
  const ChannelModel model;
  double prev = 1e18;
  for (double len = 5.0; len <= 80.0; len += 5.0) {
    const double cap = model.CapacityMbps({len, 1, 0.0});
    ASSERT_LE(cap, prev) << "len=" << len;
    prev = cap;
  }
}

TEST(ChannelModelTest, CalibrationCoversMeasuredBand) {
  // The paper's building outlets measured 60-160 Mbit/s isolation TCP
  // throughput (Fig. 2b). Typical office runs must land in (or bracket)
  // that band.
  const ChannelModel model;
  const double best = model.CapacityMbps({5.0, 0, 0.0});
  const double worst = model.CapacityMbps({60.0, 3, 0.0});
  EXPECT_GE(best, 140.0) << "short clean run should reach ~160 Mbps";
  EXPECT_LE(best, 260.0);
  EXPECT_LE(worst, 80.0) << "long tapped run should drop toward ~60 Mbps";
  EXPECT_GE(worst, 10.0);
}

TEST(ChannelModelTest, ShadowingShiftsCapacity) {
  const ChannelModel model;
  const double nominal = model.CapacityMbps({20.0, 1, 0.0});
  EXPECT_GT(model.CapacityMbps({20.0, 1, 6.0}), nominal);
  EXPECT_LT(model.CapacityMbps({20.0, 1, -6.0}), nominal);
}

TEST(ChannelModelTest, PhyRateAboveTcpCapacity) {
  const ChannelModel model;
  const PlcPath path{15.0, 1, 0.0};
  EXPECT_GT(model.PhyRateMbps(path), model.CapacityMbps(path));
}

TEST(CapacitySamplerTest, AnchorsModeStaysInClampedRange) {
  CapacitySamplerParams p;  // measured-anchor mode by default
  const CapacitySampler sampler(p);
  util::Rng rng(5);
  for (int i = 0; i < 2000; ++i) {
    const double c = sampler.Sample(rng);
    ASSERT_GE(c, p.min_capacity_mbps);
    ASSERT_LE(c, p.max_capacity_mbps);
  }
}

TEST(CapacitySamplerTest, AnchorsModeSpansMeasuredBand) {
  const CapacitySampler sampler{CapacitySamplerParams{}};
  util::Rng rng(6);
  const std::vector<double> caps = sampler.SampleMany(2000, rng);
  EXPECT_LT(util::Min(caps), 70.0);   // low anchors appear
  EXPECT_GT(util::Max(caps), 140.0);  // high anchors appear
  EXPECT_NEAR(util::Mean(caps), 108.0, 15.0);  // near anchor mean (107.5)
}

TEST(CapacitySamplerTest, ChannelModelModeProducesSpread) {
  CapacitySamplerParams p;
  p.source = CapacitySource::kChannelModel;
  const CapacitySampler sampler(p);
  util::Rng rng(7);
  const std::vector<double> caps = sampler.SampleMany(500, rng);
  EXPECT_GT(util::StdDev(caps), 5.0);
  for (double c : caps) {
    ASSERT_GE(c, p.min_capacity_mbps);
    ASSERT_LE(c, p.max_capacity_mbps);
  }
}

TEST(CapacitySamplerTest, RejectsEmptyAnchors) {
  CapacitySamplerParams p;
  p.measured_anchors.clear();
  EXPECT_THROW(CapacitySampler{p}, std::invalid_argument);
}

TEST(CapacityEstimatorTest, UnbiasedAndConcentrating) {
  const CapacityEstimator estimator;
  util::Rng rng(8);
  std::vector<double> estimates;
  for (int i = 0; i < 2000; ++i) {
    estimates.push_back(estimator.Estimate(100.0, rng));
  }
  EXPECT_NEAR(util::Mean(estimates), 100.0, 0.5);
  // Probe averaging: stddev well below single-probe 5%.
  EXPECT_LT(util::StdDev(estimates), 3.0);
}

TEST(CapacityEstimatorTest, MoreProbesTighterEstimate) {
  CapacityEstimatorParams few{1, 0.1};
  CapacityEstimatorParams many{25, 0.1};
  util::Rng rng_few(9), rng_many(9);
  std::vector<double> e_few, e_many;
  for (int i = 0; i < 1000; ++i) {
    e_few.push_back(CapacityEstimator(few).Estimate(100.0, rng_few));
    e_many.push_back(CapacityEstimator(many).Estimate(100.0, rng_many));
  }
  EXPECT_LT(util::StdDev(e_many), util::StdDev(e_few) * 0.5);
}

TEST(CapacityEstimatorTest, RejectsBadInput) {
  EXPECT_THROW(CapacityEstimator({0, 0.05}), std::invalid_argument);
  const CapacityEstimator est;
  util::Rng rng(10);
  EXPECT_THROW(est.Estimate(0.0, rng), std::invalid_argument);
}

// Property: capacity is monotone non-increasing in branch taps.
class TapsMonotoneTest : public ::testing::TestWithParam<double> {};

TEST_P(TapsMonotoneTest, MoreTapsNeverHelp) {
  const ChannelModel model;
  const double len = GetParam();
  double prev = 1e18;
  for (int taps = 0; taps <= 5; ++taps) {
    const double cap = model.CapacityMbps({len, taps, 0.0});
    ASSERT_LE(cap, prev);
    prev = cap;
  }
}

INSTANTIATE_TEST_SUITE_P(WireLengths, TapsMonotoneTest,
                         ::testing::Values(5.0, 15.0, 30.0, 50.0));

}  // namespace
}  // namespace wolt::plc
