// Differential battery for the joint association + channel-assignment
// solvers (assign/joint.h) over seeded small instances, under every PLC
// sharing mode. The headline invariant retires the paper's
// non-overlapping-channels assumption quantitatively:
//
//   SolveJointBruteForce  >=  SolveJointAlternating  >=  SolveJointNaive
//
// where naive is the assumption made explicit (plan-blind association +
// unweighted colouring) *scored under the overlap model*, alternating is
// seeded from naive and keeps only strict improvements (so its dominance is
// structural, asserted here against regression), and the brute force
// enumerates every (plan, assignment) pair jointly. Every reported
// aggregate must equal an independent EvaluateUnderOverlap recompute, and
// an expired deadline token must still leave a valid best-so-far pair.
#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "assign/joint.h"
#include "core/wolt.h"
#include "model/evaluator.h"
#include "obs/metrics.h"
#include "obs/obs.h"
#include "sim/scenario.h"
#include "util/deadline.h"
#include "util/rng.h"

namespace wolt {
namespace {

constexpr int kNumSeeds = 200;
constexpr double kTol = 1e-9;
constexpr int kChannels = 2;
constexpr double kRange = 60.0;

// Joint-brute-forceable shapes: the search space is
// kChannels^|A| x (|A|+1)^|U| (relaxed), so |A| <= 3 and |U| <= 5 keeps a
// whole instance under ~10k evaluations.
struct Shape {
  std::size_t users;
  std::size_t extenders;
};

Shape ShapeForSeed(int seed) {
  Shape s;
  s.users = 2 + static_cast<std::size_t>(seed % 4);            // 2..5
  s.extenders = 2 + static_cast<std::size_t>((seed / 4) % 2);  // 2..3
  return s;
}

model::Network MakeNetwork(int seed, const Shape& shape) {
  sim::ScenarioParams p;
  // A dense floor, smaller than the carrier-sense range: every extender
  // pair interferes, so with fewer channels than extenders a co-channel
  // conflict is unavoidable and the plan genuinely matters.
  p.width_m = 40.0;
  p.height_m = 40.0;
  p.num_users = shape.users;
  p.num_extenders = shape.extenders;
  sim::ScenarioGenerator gen(p);
  util::Rng rng(0x301f + static_cast<std::uint64_t>(seed) * 2654435761u);
  return gen.Generate(rng);
}

assign::JointOptions OptionsFor(model::PlcSharing sharing) {
  assign::JointOptions o;
  o.num_channels = kChannels;
  o.carrier_sense_range_m = kRange;
  o.eval.plc_sharing = sharing;
  o.max_rounds = 4;
  o.allow_unassigned = true;  // brute force dominates partial assignments too
  return o;
}

void ExpectValidPair(const model::Network& net, const assign::JointResult& r,
                     const assign::JointOptions& options,
                     const std::string& what) {
  ASSERT_EQ(r.channels.size(), net.NumExtenders()) << what;
  for (int c : r.channels) {
    EXPECT_GE(c, 0) << what;
    EXPECT_LT(c, options.num_channels) << what;
  }
  EXPECT_TRUE(r.assignment.IsValidFor(net)) << what;
  // The reported score must be reproducible from the pair alone — the
  // evaluated-under-overlap invariant every solver in the module shares.
  EXPECT_EQ(r.aggregate_mbps,
            EvaluateUnderOverlap(net, r.assignment, r.channels, options))
      << what;
}

[[maybe_unused]] std::uint64_t CounterValue(const obs::MetricsSnapshot& snap,
                                            const std::string& name) {
  for (const auto& c : snap.counters) {
    if (c.name == name) return c.value;
  }
  return 0;
}

class JointDifferentialTest
    : public ::testing::TestWithParam<model::PlcSharing> {};

TEST_P(JointDifferentialTest, BruteForceDominatesAlternatingDominatesNaive) {
  const model::PlcSharing sharing = GetParam();
  const assign::JointOptions options = OptionsFor(sharing);
  const assign::JointAssociator associate = core::WoltJointAssociator();

  double bf_total = 0.0, alt_total = 0.0, naive_total = 0.0;
  int improved = 0;
  for (int seed = 0; seed < kNumSeeds; ++seed) {
    const Shape shape = ShapeForSeed(seed);
    const model::Network net = MakeNetwork(seed, shape);
    const std::string what =
        "seed=" + std::to_string(seed) +
        " sharing=" + std::to_string(static_cast<int>(sharing));

    const assign::JointResult naive =
        assign::SolveJointNaive(net, associate, options);

    obs::MetricsRegistry registry;
    assign::JointResult alt;
    {
      obs::ScopedMetrics scoped(registry);
      alt = assign::SolveJointAlternating(net, associate, options);
    }
    [[maybe_unused]] const obs::MetricsSnapshot snap = registry.Snapshot();

    const assign::JointResult bf = assign::SolveJointBruteForce(net, options);

    ExpectValidPair(net, naive, options, what + " naive");
    ExpectValidPair(net, alt, options, what + " alternating");
    ExpectValidPair(net, bf, options, what + " brute-force");

    // The headline chain. Alternating >= naive is structural (it seeds from
    // the naive pair and keeps only strict improvements), so any violation
    // is a regression in the solver, not model noise — still asserted with
    // the battery's uniform tolerance.
    EXPECT_GE(bf.aggregate_mbps, alt.aggregate_mbps - kTol) << what;
    EXPECT_GE(alt.aggregate_mbps, naive.aggregate_mbps - kTol) << what;

    bf_total += bf.aggregate_mbps;
    alt_total += alt.aggregate_mbps;
    naive_total += naive.aggregate_mbps;
    if (alt.aggregate_mbps > naive.aggregate_mbps + kTol) ++improved;

#if WOLT_OBS_ENABLED
    EXPECT_EQ(CounterValue(snap, "joint.solves"), 1u) << what;
    const std::uint64_t rounds = CounterValue(snap, "joint.rounds");
    EXPECT_GE(CounterValue(snap, "joint.recolours"), rounds) << what;
    EXPECT_LE(CounterValue(snap, "joint.improvements"), rounds) << what;
    EXPECT_EQ(CounterValue(snap, "joint.bf_plans"), 0u) << what;
#endif
  }

  // Battery-level dominance, plus evidence the alternating rounds are not
  // vacuous: across 200 dense instances at least one must strictly improve
  // on the naive pair (on these floors co-channel conflicts are guaranteed
  // whenever extenders outnumber channels).
  EXPECT_GE(bf_total, alt_total - kTol * kNumSeeds);
  EXPECT_GE(alt_total, naive_total - kTol * kNumSeeds);
  EXPECT_GT(improved, 0);
}

// An already-expired deadline token must still produce a valid best-so-far
// (assignment, plan) pair — the alternating solver degrades to its naive
// seed, never to garbage.
TEST_P(JointDifferentialTest, ExpiredDeadlineStillYieldsValidIncumbent) {
  const model::PlcSharing sharing = GetParam();
  const assign::JointAssociator associate = core::WoltJointAssociator();
  const util::Deadline expired = util::Deadline::After(0.0);
  ASSERT_TRUE(expired.Expired());

  for (int seed = 0; seed < 20; ++seed) {
    const Shape shape = ShapeForSeed(seed);
    const model::Network net = MakeNetwork(seed, shape);
    assign::JointOptions options = OptionsFor(sharing);
    options.deadline = &expired;
    const std::string what = "seed=" + std::to_string(seed);

    const assign::JointResult alt =
        assign::SolveJointAlternating(net, associate, options);
    ExpectValidPair(net, alt, options, what);
    EXPECT_TRUE(alt.deadline_hit) << what;
    EXPECT_EQ(alt.rounds, 0) << what;

    // With no budget for rounds the incumbent is exactly the naive seed.
    const assign::JointResult naive =
        assign::SolveJointNaive(net, associate, options);
    EXPECT_EQ(alt.aggregate_mbps, naive.aggregate_mbps) << what;
    EXPECT_EQ(alt.channels, naive.channels) << what;
  }
}

INSTANTIATE_TEST_SUITE_P(AllSharingModes, JointDifferentialTest,
                         ::testing::Values(model::PlcSharing::kMaxMinActive,
                                           model::PlcSharing::kEqualActive,
                                           model::PlcSharing::kEqualAll),
                         [](const auto& info) {
                           switch (info.param) {
                             case model::PlcSharing::kMaxMinActive:
                               return "MaxMinActive";
                             case model::PlcSharing::kEqualActive:
                               return "EqualActive";
                             case model::PlcSharing::kEqualAll:
                               return "EqualAll";
                           }
                           return "Unknown";
                         });

}  // namespace
}  // namespace wolt
