// Golden-file coverage for model/io: the checked-in corpus under
// tests/data/io_corpus must round-trip byte-for-byte (serialize -> parse ->
// serialize is the identity on serializer output), and every file under
// tests/data/io_malformed must be rejected with the typed error its name
// promises — never a crash. A byte-soup pass (controller_wire_fuzz style)
// then hammers the parser with mutated and random input.
#include "model/io.h"

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <map>
#include <sstream>
#include <string>

#include "util/rng.h"

#ifndef WOLT_TEST_DATA_DIR
#error "WOLT_TEST_DATA_DIR must point at tests/data"
#endif

namespace wolt::model {
namespace {

namespace fs = std::filesystem;

std::string ReadFile(const fs::path& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in) << path;
  std::ostringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

fs::path DataDir() { return fs::path(WOLT_TEST_DATA_DIR); }

TEST(IoGoldenTest, CorpusRoundTripsByteStable) {
  int files = 0;
  for (const auto& entry : fs::directory_iterator(DataDir() / "io_corpus")) {
    ++files;
    const std::string golden = ReadFile(entry.path());

    const LoadResult first = NetworkFromStringDetailed(golden);
    ASSERT_TRUE(first.ok())
        << entry.path() << ": " << ToString(first.error.kind) << " at line "
        << first.error.line << ": " << first.error.message;

    // The corpus was written by SaveNetwork, so parse -> serialize must
    // reproduce the file exactly...
    const std::string once = NetworkToString(*first.network);
    EXPECT_EQ(once, golden) << entry.path();

    // ...and serialize -> parse -> serialize must be a fixed point.
    const LoadResult second = NetworkFromStringDetailed(once);
    ASSERT_TRUE(second.ok()) << entry.path();
    EXPECT_EQ(NetworkToString(*second.network), once) << entry.path();
  }
  EXPECT_GE(files, 3) << "corpus went missing";
}

TEST(IoGoldenTest, MalformedCorpusRejectedWithTypedErrors) {
  const std::map<std::string, IoErrorKind> expected = {
      {"truncated.net", IoErrorKind::kTruncated},
      {"bad_header.net", IoErrorKind::kBadHeader},
      {"bad_version.net", IoErrorKind::kBadHeader},
      {"bad_count.net", IoErrorKind::kBadCount},
      {"bad_record.net", IoErrorKind::kBadRecord},
      {"bad_keyvalue.net", IoErrorKind::kBadKeyValue},
      {"bad_number.net", IoErrorKind::kBadNumber},
      {"negative_rate.net", IoErrorKind::kBadNumber},
      // Non-finite values: accepted by stod, fatal to the Evaluator's
      // aggregates — must die at load time with a typed error.
      {"inf_rate.net", IoErrorKind::kBadNumber},
      {"inf_plc.net", IoErrorKind::kBadNumber},
      {"nan_demand.net", IoErrorKind::kBadNumber},
      {"bad_dimension.net", IoErrorKind::kBadDimension},
      {"trailing.net", IoErrorKind::kTrailingInput},
      {"partial_rssi.net", IoErrorKind::kTruncated},
      // A pinned WiFi channel must be a whole number inside the plan range
      // (model::kMaxWifiChannels); each defect gets the typed kBadChannel.
      {"channel_out_of_range.net", IoErrorKind::kBadChannel},
      {"channel_negative.net", IoErrorKind::kBadChannel},
      {"channel_fractional.net", IoErrorKind::kBadChannel},
  };
  int files = 0;
  for (const auto& entry :
       fs::directory_iterator(DataDir() / "io_malformed")) {
    ++files;
    const auto it = expected.find(entry.path().filename().string());
    ASSERT_NE(it, expected.end())
        << entry.path() << " has no expected error kind; add it to the map";

    const LoadResult res = NetworkFromStringDetailed(ReadFile(entry.path()));
    EXPECT_FALSE(res.ok()) << entry.path();
    EXPECT_EQ(res.error.kind, it->second)
        << entry.path() << ": got " << ToString(res.error.kind) << " at line "
        << res.error.line << ": " << res.error.message;
    EXPECT_GT(res.error.line, 0) << entry.path();
    EXPECT_FALSE(res.error.message.empty()) << entry.path();
  }
  EXPECT_EQ(files, static_cast<int>(expected.size()));
}

// Byte-soup: mutated serializations and raw random bytes must always come
// back as ok-or-typed-error, and a successful parse must re-serialize
// without throwing.
TEST(IoGoldenTest, ByteSoupNeverCrashes) {
  const std::string base =
      ReadFile(DataDir() / "io_corpus" / "labelled_domains.net");
  util::Rng rng(987654321);

  for (int trial = 0; trial < 600; ++trial) {
    std::string text = base;
    const int mutations = rng.UniformInt(1, 8);
    for (int m = 0; m < mutations && !text.empty(); ++m) {
      const std::size_t pos = static_cast<std::size_t>(
          rng.UniformInt(0, static_cast<int>(text.size()) - 1));
      switch (rng.UniformInt(0, 3)) {
        case 0:  // flip a bit
          text[pos] = static_cast<char>(text[pos] ^ (1 << rng.UniformInt(0, 7)));
          break;
        case 1:  // overwrite with a random byte
          text[pos] = static_cast<char>(rng.UniformInt(0, 255));
          break;
        case 2:  // delete
          text.erase(text.begin() + static_cast<std::ptrdiff_t>(pos));
          break;
        case 3:  // insert a random byte
          text.insert(text.begin() + static_cast<std::ptrdiff_t>(pos),
                      static_cast<char>(rng.UniformInt(0, 255)));
          break;
      }
    }
    const LoadResult res = NetworkFromStringDetailed(text);
    if (res.ok()) {
      EXPECT_NO_THROW(NetworkToString(*res.network));
    } else {
      EXPECT_NE(res.error.kind, IoErrorKind::kNone);
    }
  }

  for (int trial = 0; trial < 200; ++trial) {
    std::string text(static_cast<std::size_t>(rng.UniformInt(0, 400)), '\0');
    for (char& c : text) c = static_cast<char>(rng.UniformInt(0, 255));
    const LoadResult res = NetworkFromStringDetailed(text);
    if (!res.ok()) EXPECT_NE(res.error.kind, IoErrorKind::kNone);
  }
}

}  // namespace
}  // namespace wolt::model
