// Kill-anywhere crash/resume property for the journaled sweep engine.
//
// Each round forks this binary (fork + execve of /proc/self/exe; a static
// initializer in the child detects the WOLT_CRASH_* environment and runs a
// journaled sweep instead of gtest), SIGKILLs the child from inside the
// after-append hook at a randomized task count, then resumes the journal
// in-process and byte-compares every reporter output (task CSV, group CSV,
// JSON, deterministic metrics JSON) against an uninterrupted golden run.
// Rounds cycle thread counts 1/2/4/8 and some rounds additionally tear the
// journal tail (truncation or appended garbage) or crash a second time
// during the resume itself.
#include <gtest/gtest.h>

#include <atomic>
#include <csignal>
#include <cstdint>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include "recover/journal.h"
#include "sweep/engine.h"
#include "sweep/grid.h"
#include "sweep/report.h"
#include "util/rng.h"

namespace wolt::sweep {
namespace {

namespace fs = std::filesystem;

// Small but heterogeneous: 2 users x 1 extenders x 1 sharing x 2 policies
// x 6 seeds = 24 tasks.
SweepGrid CrashGrid() {
  SweepGrid grid;
  grid.master_seed = 0xC4A54ULL;
  grid.SeedRange(6);
  grid.users = {8, 12};
  grid.extenders = {3};
  grid.sharing = {model::PlcSharing::kMaxMinActive};
  grid.policies = {PolicyKind::kWolt, PolicyKind::kGreedy};
  return grid;
}

SweepOptions CrashOptions(int threads) {
  SweepOptions opt;
  opt.threads = threads;
  opt.collect_metrics = true;
  opt.journal_compact_every = 8;  // exercise compaction mid-crash too
  return opt;
}

// Crash-child mode: when WOLT_CRASH_JOURNAL is set, this process is a
// forked copy meant to run the journaled sweep and die. The static
// initializer runs before gtest's main, so the child never prints gtest
// output or runs tests.
const bool kCrashChildRan = [] {
  const char* journal = std::getenv("WOLT_CRASH_JOURNAL");
  if (journal == nullptr) return false;
  const char* kill_at_env = std::getenv("WOLT_CRASH_KILL_AT");
  const char* threads_env = std::getenv("WOLT_CRASH_THREADS");
  const std::size_t kill_at =
      kill_at_env ? std::strtoull(kill_at_env, nullptr, 10) : 1;
  const int threads = threads_env ? std::atoi(threads_env) : 1;

  SweepOptions opt = CrashOptions(threads);
  opt.journal_path = journal;
  opt.resume = std::getenv("WOLT_CRASH_RESUME") != nullptr;
  opt.after_journal_append = [kill_at](std::size_t appends) {
    if (appends == kill_at) {
      // Die with no warning, mid-sweep, possibly mid-compaction-window:
      // exactly what a power-user's OOM killer does.
      kill(getpid(), SIGKILL);
    }
  };
  SweepEngine engine(opt);
  try {
    engine.Run(CrashGrid());
  } catch (...) {
    std::_Exit(3);  // resume rejected — the parent asserts on this
  }
  std::_Exit(0);  // kill point not reached (fewer tasks left than kill_at)
}();

// Fork + exec ourselves in crash-child mode. Returns the child pid.
pid_t SpawnCrashChild(const std::string& journal, std::size_t kill_at,
                      int threads, bool resume) {
  const pid_t pid = fork();
  if (pid != 0) return pid;
  setenv("WOLT_CRASH_JOURNAL", journal.c_str(), 1);
  setenv("WOLT_CRASH_KILL_AT", std::to_string(kill_at).c_str(), 1);
  setenv("WOLT_CRASH_THREADS", std::to_string(threads).c_str(), 1);
  if (resume) {
    setenv("WOLT_CRASH_RESUME", "1", 1);
  } else {
    unsetenv("WOLT_CRASH_RESUME");
  }
  // execve a fresh copy: the child re-runs static initializers (where the
  // crash-mode branch lives) with a clean runtime — required under TSan,
  // which does not support running threads in a forked child otherwise.
  execl("/proc/self/exe", "/proc/self/exe", static_cast<char*>(nullptr));
  _exit(127);
}

// Waits for the child and asserts it died by SIGKILL (kill point reached)
// or exited 0 (sweep finished before the kill point). Returns true iff it
// was killed.
bool AwaitChild(pid_t pid) {
  int status = 0;
  EXPECT_EQ(waitpid(pid, &status, 0), pid);
  if (WIFSIGNALED(status)) {
    EXPECT_EQ(WTERMSIG(status), SIGKILL);
    return true;
  }
  EXPECT_TRUE(WIFEXITED(status)) << "child neither exited nor was killed";
  EXPECT_EQ(WEXITSTATUS(status), 0) << "crash child failed outright";
  return false;
}

struct GoldenOutputs {
  std::string task_csv;
  std::string group_csv;
  std::string json;
  std::string metrics_json;
};

GoldenOutputs Render(const SweepResult& result) {
  GoldenOutputs out;
  out.task_csv = TaskCsvString(result);
  out.group_csv = GroupCsvString(result);
  out.json = JsonString(result);
  out.metrics_json = result.metrics.DeterministicJson();
  return out;
}

#if defined(__SANITIZE_ADDRESS__) || defined(__SANITIZE_THREAD__)
constexpr int kRounds = 24;  // process spawns are slow under sanitizers
#else
constexpr int kRounds = 100;
#endif

TEST(CrashResume, KillAnywhereResumesByteIdentical) {
  const SweepGrid grid = CrashGrid();
  const std::size_t num_tasks = grid.NumTasks();
  ASSERT_EQ(num_tasks, 24u);

  const int thread_cycle[4] = {1, 2, 4, 8};
  GoldenOutputs golden[4];
  for (int t = 0; t < 4; ++t) {
    SweepEngine engine(CrashOptions(thread_cycle[t]));
    golden[t] = Render(engine.Run(grid));
    // Thread-count independence of the golden itself (belt and braces; the
    // determinism suite owns this property).
    EXPECT_EQ(golden[t].task_csv, golden[0].task_csv);
    EXPECT_EQ(golden[t].metrics_json, golden[0].metrics_json);
  }

  util::Rng rng(20260806);
  const std::string dir =
      (fs::temp_directory_path() / "wolt_crash_resume").string();
  fs::create_directories(dir);

  for (int round = 0; round < kRounds; ++round) {
    const int threads = thread_cycle[round % 4];
    const std::string journal =
        dir + "/round_" + std::to_string(round) + ".wal";
    const std::size_t kill_at = static_cast<std::size_t>(
        rng.UniformInt(1, static_cast<int>(num_tasks)));

    // Phase 1: fresh journaled run, SIGKILLed at the kill_at-th append.
    const bool killed =
        AwaitChild(SpawnCrashChild(journal, kill_at, threads, false));
    ASSERT_TRUE(killed) << "fresh run must reach its kill point";

    // Phase 2 (some rounds): hand-tear the journal tail — a mid-record
    // crash the SIGKILL-between-records hook cannot produce on its own.
    if (round % 3 == 1) {
      std::error_code ec;
      const std::uint64_t size = fs::file_size(journal, ec);
      ASSERT_FALSE(ec);
      if (size > 5) fs::resize_file(journal, size - 5, ec);
    } else if (round % 3 == 2) {
      std::ofstream out(journal, std::ios::binary | std::ios::app);
      out << "torn-garbage-from-a-dying-disk";
    }

    // Phase 3 (every other round): crash again, this time mid-resume.
    if (round % 2 == 1) {
      const std::size_t kill_again =
          static_cast<std::size_t>(rng.UniformInt(1, 4));
      AwaitChild(SpawnCrashChild(journal, kill_again, threads, true));
    }

    // Phase 4: resume to completion in-process and byte-compare.
    SweepOptions opt = CrashOptions(threads);
    opt.journal_path = journal;
    opt.resume = true;
    SweepEngine engine(opt);
    const SweepResult resumed = engine.Run(grid);
    // The tail-truncation rounds can legitimately destroy the single
    // journaled record of a kill_at=1 run; every other shape restores >= 1.
    if (round % 3 != 1) {
      EXPECT_GT(resumed.resumed_tasks, 0u) << "round " << round;
    }
    EXPECT_LE(resumed.resumed_tasks, num_tasks) << "round " << round;

    const GoldenOutputs got = Render(resumed);
    const GoldenOutputs& want = golden[round % 4];
    EXPECT_EQ(got.task_csv, want.task_csv) << "round " << round;
    EXPECT_EQ(got.group_csv, want.group_csv) << "round " << round;
    EXPECT_EQ(got.json, want.json) << "round " << round;
    EXPECT_EQ(got.metrics_json, want.metrics_json) << "round " << round;

    // The final journal must itself be a complete, clean record of the
    // sweep: resumable once more with nothing left to run.
    const recover::JournalReadResult check = recover::ReadJournal(journal);
    ASSERT_TRUE(check.ok) << "round " << round << ": " << check.error;
    EXPECT_EQ(check.records.size(), num_tasks) << "round " << round;
    EXPECT_EQ(check.torn_bytes, 0u) << "round " << round;

    fs::remove(journal);
  }
  fs::remove_all(dir);
}

TEST(CrashResume, ResumeRejectsForeignJournal) {
  const std::string path =
      (fs::temp_directory_path() / "wolt_crash_foreign.wal").string();
  // Journal a different grid (different seed => different fingerprint).
  SweepGrid other = CrashGrid();
  other.master_seed = 0xBADF00DULL;
  {
    SweepOptions opt = CrashOptions(1);
    opt.journal_path = path;
    SweepEngine engine(opt);
    engine.Run(other);
  }
  SweepOptions opt = CrashOptions(1);
  opt.journal_path = path;
  opt.resume = true;
  SweepEngine engine(opt);
  EXPECT_THROW(engine.Run(CrashGrid()), std::runtime_error);
  fs::remove(path);
}

TEST(CrashResume, ResumeOfCompletedSweepRunsNothing) {
  const std::string path =
      (fs::temp_directory_path() / "wolt_crash_complete.wal").string();
  const SweepGrid grid = CrashGrid();
  GoldenOutputs want;
  {
    SweepOptions opt = CrashOptions(2);
    opt.journal_path = path;
    SweepEngine engine(opt);
    want = Render(engine.Run(grid));
  }
  SweepOptions opt = CrashOptions(2);
  opt.journal_path = path;
  opt.resume = true;
  std::atomic<int> executed{0};
  opt.before_task = [&](std::size_t) { ++executed; };
  SweepEngine engine(opt);
  const SweepResult resumed = engine.Run(grid);
  EXPECT_EQ(executed.load(), 0);  // every task restored, none re-run
  EXPECT_EQ(resumed.resumed_tasks, grid.NumTasks());
  const GoldenOutputs got = Render(resumed);
  EXPECT_EQ(got.task_csv, want.task_csv);
  EXPECT_EQ(got.metrics_json, want.metrics_json);
  fs::remove(path);
}

}  // namespace
}  // namespace wolt::sweep
