#include "sim/dynamics.h"

#include <gtest/gtest.h>

#include <stdexcept>

#include "core/greedy.h"
#include "core/rssi.h"
#include "core/wolt.h"

namespace wolt::sim {
namespace {

ScenarioGenerator SmallScenario() {
  ScenarioParams p;
  p.num_extenders = 6;
  p.num_users = 0;
  return ScenarioGenerator(p);
}

TEST(DynamicsTest, RejectsBadInputs) {
  const ScenarioGenerator gen = SmallScenario();
  util::Rng rng(1);
  core::WoltPolicy wolt;
  EXPECT_THROW(RunDynamicSimulation(gen, {}, {}, rng), std::invalid_argument);
  DynamicsParams bad;
  bad.arrival_rate = 0.0;
  std::vector<core::AssociationPolicy*> policies = {&wolt};
  EXPECT_THROW(RunDynamicSimulation(gen, policies, bad, rng),
               std::invalid_argument);
}

TEST(DynamicsTest, PopulationGrowsPerCalibration) {
  // §V-E calibration: ~36 arrivals and ~3 departures per epoch -> the
  // population trajectory approximates 36 / 66 / 102.
  const ScenarioGenerator gen = SmallScenario();
  core::WoltPolicy wolt;
  std::vector<core::AssociationPolicy*> policies = {&wolt};
  DynamicsParams params;
  util::Rng rng(42);
  const std::vector<EpochStats> history =
      RunDynamicSimulation(gen, policies, params, rng);
  ASSERT_EQ(history.size(), 3u);
  EXPECT_NEAR(static_cast<double>(history[0].population), 36.0, 15.0);
  EXPECT_NEAR(static_cast<double>(history[1].population), 66.0, 20.0);
  EXPECT_NEAR(static_cast<double>(history[2].population), 102.0, 25.0);
  for (const auto& epoch : history) {
    EXPECT_GT(epoch.arrivals, 0u);
  }
}

TEST(DynamicsTest, EveryPolicySeesTheSameTrace) {
  const ScenarioGenerator gen = SmallScenario();
  core::WoltPolicy wolt;
  core::GreedyPolicy greedy;
  core::RssiPolicy rssi;
  std::vector<core::AssociationPolicy*> policies = {&wolt, &greedy, &rssi};
  DynamicsParams params;
  params.epochs = 2;
  util::Rng rng(7);
  const std::vector<EpochStats> history =
      RunDynamicSimulation(gen, policies, params, rng);
  for (const auto& epoch : history) {
    ASSERT_EQ(epoch.per_policy.size(), 3u);
    EXPECT_EQ(epoch.per_policy[0].policy, "WOLT");
    EXPECT_EQ(epoch.per_policy[1].policy, "Greedy");
    EXPECT_EQ(epoch.per_policy[2].policy, "RSSI");
    for (const auto& ps : epoch.per_policy) {
      EXPECT_GT(ps.aggregate_mbps, 0.0);
      EXPECT_GT(ps.jain_fairness, 0.0);
      EXPECT_LE(ps.jain_fairness, 1.0 + 1e-9);
    }
  }
}

TEST(DynamicsTest, OnlineBaselinesNeverReassign) {
  const ScenarioGenerator gen = SmallScenario();
  core::GreedyPolicy greedy;
  core::RssiPolicy rssi;
  std::vector<core::AssociationPolicy*> policies = {&greedy, &rssi};
  DynamicsParams params;
  util::Rng rng(11);
  const std::vector<EpochStats> history =
      RunDynamicSimulation(gen, policies, params, rng);
  for (const auto& epoch : history) {
    for (const auto& ps : epoch.per_policy) {
      EXPECT_EQ(ps.reassignments, 0u) << ps.policy;
    }
  }
}

TEST(DynamicsTest, WoltReassignmentsBoundedByArrivals) {
  // Fig. 6c: WOLT re-assigns at most ~2x the number of arriving users.
  const ScenarioGenerator gen = SmallScenario();
  core::WoltPolicy wolt;
  std::vector<core::AssociationPolicy*> policies = {&wolt};
  DynamicsParams params;
  util::Rng rng(13);
  const std::vector<EpochStats> history =
      RunDynamicSimulation(gen, policies, params, rng);
  for (const auto& epoch : history) {
    EXPECT_LE(epoch.per_policy[0].reassignments,
              2 * epoch.arrivals + gen.params().num_extenders)
        << "epoch " << epoch.epoch;
  }
}

TEST(DynamicsTest, WoltTracksBaselinesOverEpochs) {
  // Fig. 6b shape: the aggregate grows with the population and WOLT stays
  // within a tight band of the strong online-greedy baseline throughout
  // (the paper's larger reported gap traces to its weaker baseline — see
  // EXPERIMENTS.md; the dominance result for the WOLT-S extension is
  // asserted separately).
  const ScenarioGenerator gen = SmallScenario();
  core::WoltPolicy wolt;
  core::GreedyPolicy greedy;
  core::RssiPolicy rssi;
  std::vector<core::AssociationPolicy*> policies = {&wolt, &greedy, &rssi};
  DynamicsParams params;
  util::Rng rng(17);
  const std::vector<EpochStats> history =
      RunDynamicSimulation(gen, policies, params, rng);
  const auto& last = history.back();
  EXPECT_GT(last.per_policy[0].aggregate_mbps,
            0.9 * last.per_policy[1].aggregate_mbps);
  EXPECT_GT(last.per_policy[0].aggregate_mbps,
            0.9 * last.per_policy[2].aggregate_mbps);
  // Aggregate grows (or at least does not shrink) as users accumulate.
  EXPECT_GE(last.per_policy[0].aggregate_mbps,
            history.front().per_policy[0].aggregate_mbps * 0.9);
}

TEST(DynamicsTest, SubsetWoltDominatesGreedyOverEpochs) {
  const ScenarioGenerator gen = SmallScenario();
  core::WoltOptions so;
  so.subset_search = true;
  core::WoltPolicy wolts(so);
  core::GreedyPolicy greedy;
  std::vector<core::AssociationPolicy*> policies = {&wolts, &greedy};
  DynamicsParams params;
  util::Rng rng(17);
  const std::vector<EpochStats> history =
      RunDynamicSimulation(gen, policies, params, rng);
  const auto& last = history.back();
  EXPECT_GE(last.per_policy[0].aggregate_mbps,
            last.per_policy[1].aggregate_mbps * 0.98);
}

TEST(DynamicsTest, PhysicalModelKeepsWoltCompetitive) {
  // Reproduction finding: under the physically-validated max-min sharing,
  // force-activating every extender costs WOLT some aggregate at scale; it
  // must still stay within a bounded factor of the greedy baseline.
  const ScenarioGenerator gen = SmallScenario();
  core::WoltPolicy wolt;
  core::GreedyPolicy greedy;
  std::vector<core::AssociationPolicy*> policies = {&wolt, &greedy};
  DynamicsParams params;
  util::Rng rng(17);
  const std::vector<EpochStats> history =
      RunDynamicSimulation(gen, policies, params, rng);
  const auto& last = history.back();
  EXPECT_GT(last.per_policy[0].aggregate_mbps,
            0.7 * last.per_policy[1].aggregate_mbps);
}

TEST(DynamicsTest, DeterministicGivenSeed) {
  const ScenarioGenerator gen = SmallScenario();
  DynamicsParams params;
  params.epochs = 2;
  core::WoltPolicy w1, w2;
  std::vector<core::AssociationPolicy*> p1 = {&w1};
  std::vector<core::AssociationPolicy*> p2 = {&w2};
  util::Rng a(23), b(23);
  const auto h1 = RunDynamicSimulation(gen, p1, params, a);
  const auto h2 = RunDynamicSimulation(gen, p2, params, b);
  ASSERT_EQ(h1.size(), h2.size());
  for (std::size_t e = 0; e < h1.size(); ++e) {
    EXPECT_EQ(h1[e].population, h2[e].population);
    EXPECT_DOUBLE_EQ(h1[e].per_policy[0].aggregate_mbps,
                     h2[e].per_policy[0].aggregate_mbps);
  }
}

TEST(DynamicsTest, MobilityEventsOccurAndStayConsistent) {
  const ScenarioGenerator gen = SmallScenario();
  core::WoltPolicy wolt;
  core::GreedyPolicy greedy;
  std::vector<core::AssociationPolicy*> policies = {&wolt, &greedy};
  DynamicsParams params;
  params.move_rate = 2.0;  // ~24 moves per epoch
  util::Rng rng(31);
  const auto history = RunDynamicSimulation(gen, policies, params, rng);
  std::size_t total_moves = 0;
  for (const auto& epoch : history) {
    total_moves += epoch.moves;
    for (const auto& ps : epoch.per_policy) {
      EXPECT_GT(ps.aggregate_mbps, 0.0) << ps.policy;
    }
  }
  EXPECT_GT(total_moves, 20u);
}

TEST(DynamicsTest, MobilityTriggersWoltReassignments) {
  // Movers whose old extender went out of range must be re-placed; WOLT's
  // epoch re-optimization also repositions movers that kept connectivity
  // but now have a clearly better option.
  const ScenarioGenerator gen = SmallScenario();
  core::WoltPolicy wolt;
  std::vector<core::AssociationPolicy*> policies = {&wolt};
  DynamicsParams high_mobility;
  high_mobility.move_rate = 3.0;
  DynamicsParams static_users;
  util::Rng a(37), b(37);
  const auto mobile = RunDynamicSimulation(gen, policies, high_mobility, a);
  core::WoltPolicy wolt2;
  std::vector<core::AssociationPolicy*> policies2 = {&wolt2};
  const auto parked = RunDynamicSimulation(gen, policies2, static_users, b);
  std::size_t mobile_moves = 0, parked_moves = 0;
  for (const auto& e : mobile) mobile_moves += e.per_policy[0].reassignments;
  for (const auto& e : parked) parked_moves += e.per_policy[0].reassignments;
  EXPECT_GT(mobile_moves, parked_moves);
}

TEST(DynamicsTest, FaultCountersStayZeroWithoutInjection) {
  const ScenarioGenerator gen = SmallScenario();
  core::WoltPolicy wolt;
  std::vector<core::AssociationPolicy*> policies = {&wolt};
  DynamicsParams params;
  params.epochs = 2;
  util::Rng rng(41);
  const auto history = RunDynamicSimulation(gen, policies, params, rng);
  for (const auto& epoch : history) {
    EXPECT_EQ(epoch.crashes, 0u);
    EXPECT_EQ(epoch.repairs, 0u);
    EXPECT_EQ(epoch.flaps, 0u);
    EXPECT_EQ(epoch.extenders_down, 0u);
    for (const auto& ps : epoch.per_policy) {
      EXPECT_EQ(ps.stranded_users, 0u) << ps.policy;
    }
  }
}

TEST(DynamicsTest, BackhaulFaultsStrandGreedyButNotWolt) {
  // With crash injection on, Greedy leaves its users on dead backhauls
  // (stranded) while WOLT's epoch re-optimization evacuates them: its
  // stranded count is zero at every epoch boundary.
  const ScenarioGenerator gen = SmallScenario();
  core::WoltPolicy wolt;
  core::GreedyPolicy greedy;
  std::vector<core::AssociationPolicy*> policies = {&wolt, &greedy};
  DynamicsParams params;
  // One crash per ~4 time units with mean outage 8 (spans the 12-unit
  // epochs): ~2 of 6 extenders down in steady state, so boundaries see
  // dead backhauls while some backhaul is always alive.
  params.health.crash_rate = 0.25;
  params.health.repair_rate = 0.125;
  util::Rng rng(43);
  const auto history = RunDynamicSimulation(gen, policies, params, rng);

  std::size_t crashes = 0, down_epochs = 0;
  std::size_t wolt_stranded = 0, greedy_stranded = 0;
  for (const auto& epoch : history) {
    crashes += epoch.crashes;
    down_epochs += (epoch.extenders_down > 0);
    EXPECT_EQ(epoch.per_policy[0].stranded_users, 0u) << "WOLT stranded";
    wolt_stranded += epoch.per_policy[0].stranded_users;
    greedy_stranded += epoch.per_policy[1].stranded_users;
    for (const auto& ps : epoch.per_policy) {
      EXPECT_GT(ps.aggregate_mbps, 0.0) << ps.policy;
    }
  }
  EXPECT_GT(crashes, 0u);
  EXPECT_GT(down_epochs, 0u);
  EXPECT_GE(greedy_stranded, wolt_stranded);
  EXPECT_GT(greedy_stranded, 0u);
}

TEST(DynamicsTest, CapacityDriftStaysSafe) {
  const ScenarioGenerator gen = SmallScenario();
  core::WoltPolicy wolt;
  std::vector<core::AssociationPolicy*> policies = {&wolt};
  DynamicsParams params;
  params.epochs = 2;
  params.health.drift_rate = 2.0;
  util::Rng rng(47);
  const auto history = RunDynamicSimulation(gen, policies, params, rng);
  for (const auto& epoch : history) {
    EXPECT_EQ(epoch.crashes, 0u);  // drift only
    EXPECT_EQ(epoch.extenders_down, 0u);
    EXPECT_GT(epoch.per_policy[0].aggregate_mbps, 0.0);
    EXPECT_EQ(epoch.per_policy[0].stranded_users, 0u);
  }
}

TEST(DynamicsTest, NoDeparturesWhenRateZero) {
  const ScenarioGenerator gen = SmallScenario();
  core::WoltPolicy wolt;
  std::vector<core::AssociationPolicy*> policies = {&wolt};
  DynamicsParams params;
  params.departure_rate = 0.0;
  params.epochs = 2;
  util::Rng rng(29);
  const auto history = RunDynamicSimulation(gen, policies, params, rng);
  for (const auto& epoch : history) {
    EXPECT_EQ(epoch.departures, 0u);
  }
}

}  // namespace
}  // namespace wolt::sim
