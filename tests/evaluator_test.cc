#include "model/evaluator.h"

#include <gtest/gtest.h>

#include <stdexcept>

#include "testbed/lab.h"
#include "util/rng.h"
#include "util/stats.h"

namespace wolt::model {
namespace {

TEST(WifiCellThroughputTest, SingleUserGetsOwnRate) {
  EXPECT_DOUBLE_EQ(WifiCellThroughput({54.0}), 54.0);
}

TEST(WifiCellThroughputTest, HarmonicSharing) {
  // Eq. 1 with rates 15 and 40: 2 / (1/15 + 1/40) = 240/11.
  EXPECT_NEAR(WifiCellThroughput({15.0, 40.0}), 240.0 / 11.0, 1e-9);
}

TEST(WifiCellThroughputTest, PerformanceAnomaly) {
  // Adding a slow user drags the aggregate below the fast user's solo rate.
  const double fast_alone = WifiCellThroughput({54.0});
  const double with_slow = WifiCellThroughput({54.0, 6.0});
  EXPECT_LT(with_slow, fast_alone);
  // And the aggregate is below twice the slow rate (each user gets the same
  // throughput, which is below the slow user's rate).
  EXPECT_LT(with_slow, 2.0 * 6.0);
}

TEST(WifiCellThroughputTest, RejectsNonPositiveRates) {
  EXPECT_THROW(WifiCellThroughput({10.0, 0.0}), std::invalid_argument);
  EXPECT_DOUBLE_EQ(WifiCellThroughput({}), 0.0);
}

// --- Fig. 3 case study: the canonical validation of the whole model. ---

TEST(EvaluatorCaseStudyTest, RssiAssignmentYields22Mbps) {
  const Network net = testbed::CaseStudyNetwork();
  Assignment a(2);
  a.Assign(0, 0);  // both users pick extender 1 (their best WiFi rate)
  a.Assign(1, 0);
  const EvalResult r = Evaluator().Evaluate(net, a);
  EXPECT_NEAR(r.aggregate_mbps, 240.0 / 11.0, 1e-9);  // ~21.8 ("22")
  // Throughput-fair: both users see the same throughput.
  EXPECT_NEAR(r.user_throughput_mbps[0], r.user_throughput_mbps[1], 1e-9);
  EXPECT_EQ(r.active_extenders, 1);
  EXPECT_EQ(r.extenders[0].bottleneck, Bottleneck::kWifi);
}

TEST(EvaluatorCaseStudyTest, GreedyAssignmentYields30Mbps) {
  const Network net = testbed::CaseStudyNetwork();
  Assignment a(2);
  a.Assign(0, 0);  // user1 -> extender1
  a.Assign(1, 1);  // user2 -> extender2
  const EvalResult r = Evaluator().Evaluate(net, a);
  EXPECT_NEAR(r.aggregate_mbps, 30.0, 1e-9);
  EXPECT_NEAR(r.user_throughput_mbps[0], 15.0, 1e-9);
  EXPECT_NEAR(r.user_throughput_mbps[1], 15.0, 1e-9);
  // Extender 1 is WiFi-bottlenecked; its PLC leftover flows to extender 2.
  EXPECT_NEAR(r.extenders[0].plc_time_share, 0.25, 1e-9);
  EXPECT_NEAR(r.extenders[1].plc_time_share, 0.75, 1e-9);
}

TEST(EvaluatorCaseStudyTest, OptimalAssignmentYields40Mbps) {
  const Network net = testbed::CaseStudyNetwork();
  Assignment a(2);
  a.Assign(0, 1);  // user1 -> extender2
  a.Assign(1, 0);  // user2 -> extender1
  const EvalResult r = Evaluator().Evaluate(net, a);
  EXPECT_NEAR(r.aggregate_mbps, 40.0, 1e-9);
  EXPECT_NEAR(r.user_throughput_mbps[0], 10.0, 1e-9);
  EXPECT_NEAR(r.user_throughput_mbps[1], 30.0, 1e-9);
  EXPECT_EQ(r.extenders[0].bottleneck, Bottleneck::kPlc);
}

TEST(EvaluatorCaseStudyTest, WithoutRedistributionGreedyDropsTo25) {
  // Ablation: under strict 1/k sharing extender 2 is capped at 10 Mbps.
  const Network net = testbed::CaseStudyNetwork();
  Assignment a(2);
  a.Assign(0, 0);
  a.Assign(1, 1);
  EvalOptions opts;
  opts.plc_sharing = PlcSharing::kEqualActive;
  const EvalResult r = Evaluator(opts).Evaluate(net, a);
  EXPECT_NEAR(r.aggregate_mbps, 25.0, 1e-9);
}

TEST(EvaluatorCaseStudyTest, EqualAllModelCountsIdleExtenders) {
  // Under the paper's literal Problem-1 model both extenders own half the
  // airtime even when only extender 1 is active: both users on ext1 give
  // min(21.8, 30) = 21.8; a single user on ext1 alone gives min(15, 30).
  const Network net = testbed::CaseStudyNetwork();
  Assignment a(2);
  a.Assign(0, 0);
  a.Assign(1, 0);
  EvalOptions opts;
  opts.plc_sharing = PlcSharing::kEqualAll;
  const EvalResult r = Evaluator(opts).Evaluate(net, a);
  EXPECT_NEAR(r.aggregate_mbps, 240.0 / 11.0, 1e-9);
  EXPECT_NEAR(r.extenders[0].plc_throughput_mbps, 30.0, 1e-9);
  // Greedy-style split under kEqualAll: ext2 gets no leftover -> 25 total.
  Assignment split(2);
  split.Assign(0, 0);
  split.Assign(1, 1);
  EXPECT_NEAR(Evaluator(opts).AggregateThroughput(net, split), 25.0, 1e-9);
}

// --- General behaviour ---

TEST(EvaluatorTest, IdleExtendersConsumeNoAirtime) {
  Network net(1, 3);
  net.SetWifiRate(0, 0, 50.0);
  for (std::size_t j = 0; j < 3; ++j) net.SetPlcRate(j, 90.0);
  Assignment a(1);
  a.Assign(0, 0);
  const EvalResult r = Evaluator().Evaluate(net, a);
  EXPECT_EQ(r.active_extenders, 1);
  EXPECT_EQ(r.extenders[1].bottleneck, Bottleneck::kIdle);
  EXPECT_DOUBLE_EQ(r.extenders[1].plc_time_share, 0.0);
  // Sole active extender: not split with idle ones.
  EXPECT_NEAR(r.aggregate_mbps, 50.0, 1e-9);
}

TEST(EvaluatorTest, UnassignedUsersGetZero) {
  Network net(2, 1);
  net.SetWifiRate(0, 0, 20.0);
  net.SetWifiRate(1, 0, 20.0);
  net.SetPlcRate(0, 100.0);
  Assignment a(2);
  a.Assign(0, 0);
  const EvalResult r = Evaluator().Evaluate(net, a);
  EXPECT_DOUBLE_EQ(r.user_throughput_mbps[1], 0.0);
  EXPECT_NEAR(r.aggregate_mbps, 20.0, 1e-9);
}

TEST(EvaluatorTest, ThrowsOnUnreachableAssignment) {
  Network net(1, 1);
  net.SetPlcRate(0, 100.0);
  Assignment a(1);
  a.Assign(0, 0);  // r = 0
  EXPECT_THROW(Evaluator().Evaluate(net, a), std::invalid_argument);
}

TEST(EvaluatorTest, ThrowsOnSizeMismatch) {
  Network net(1, 1);
  Assignment a(2);
  EXPECT_THROW(Evaluator().Evaluate(net, a), std::invalid_argument);
}

TEST(EvaluatorTest, PlcBottleneckCapsCell) {
  Network net(1, 1);
  net.SetWifiRate(0, 0, 100.0);
  net.SetPlcRate(0, 40.0);
  Assignment a(1);
  a.Assign(0, 0);
  const EvalResult r = Evaluator().Evaluate(net, a);
  EXPECT_NEAR(r.aggregate_mbps, 40.0, 1e-9);
  EXPECT_EQ(r.extenders[0].bottleneck, Bottleneck::kPlc);
}

TEST(EvaluatorTest, AggregateThroughputMatchesEvaluate) {
  const Network net = testbed::CaseStudyNetwork();
  Assignment a(2);
  a.Assign(0, 1);
  a.Assign(1, 0);
  const Evaluator ev;
  EXPECT_DOUBLE_EQ(ev.AggregateThroughput(net, a),
                   ev.Evaluate(net, a).aggregate_mbps);
}

// Properties over random instances.
class EvaluatorProperty : public ::testing::TestWithParam<int> {};

TEST_P(EvaluatorProperty, InvariantsHold) {
  util::Rng rng(static_cast<std::uint64_t>(GetParam()) * 7919);
  const int num_users = rng.UniformInt(1, 12);
  const int num_ext = rng.UniformInt(1, 5);
  Network net(static_cast<std::size_t>(num_users),
              static_cast<std::size_t>(num_ext));
  for (int j = 0; j < num_ext; ++j) {
    net.SetPlcRate(static_cast<std::size_t>(j), rng.Uniform(20.0, 200.0));
  }
  Assignment a(static_cast<std::size_t>(num_users));
  for (int i = 0; i < num_users; ++i) {
    const std::size_t e =
        static_cast<std::size_t>(rng.UniformInt(0, num_ext - 1));
    net.SetWifiRate(static_cast<std::size_t>(i), e, rng.Uniform(5.0, 65.0));
    a.Assign(static_cast<std::size_t>(i), e);
  }

  EvalOptions maxmin_opts;
  maxmin_opts.plc_sharing = PlcSharing::kMaxMinActive;
  EvalOptions equal_opts;
  equal_opts.plc_sharing = PlcSharing::kEqualActive;
  const EvalResult with = Evaluator(maxmin_opts).Evaluate(net, a);
  const EvalResult without = Evaluator(equal_opts).Evaluate(net, a);

  // Redistribution never reduces the aggregate.
  EXPECT_GE(with.aggregate_mbps, without.aggregate_mbps - 1e-9);

  // Aggregate equals the sum of user throughputs (everyone assigned).
  EXPECT_NEAR(with.aggregate_mbps, util::Sum(with.user_throughput_mbps),
              1e-6);

  // Each extender's end-to-end is min of its two segments and users on the
  // same extender get equal throughput.
  for (int j = 0; j < num_ext; ++j) {
    const auto& rep = with.extenders[static_cast<std::size_t>(j)];
    EXPECT_LE(rep.end_to_end_mbps, rep.wifi_throughput_mbps + 1e-9);
    EXPECT_LE(rep.end_to_end_mbps, rep.plc_throughput_mbps + 1e-9);
    const auto users = a.UsersOf(static_cast<std::size_t>(j));
    for (std::size_t k = 1; k < users.size(); ++k) {
      EXPECT_NEAR(with.user_throughput_mbps[users[k]],
                  with.user_throughput_mbps[users[0]], 1e-9);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, EvaluatorProperty, ::testing::Range(1, 41));

TEST(BottleneckToStringTest, AllValuesNamed) {
  EXPECT_STREQ(ToString(Bottleneck::kIdle), "idle");
  EXPECT_STREQ(ToString(Bottleneck::kWifi), "wifi");
  EXPECT_STREQ(ToString(Bottleneck::kPlc), "plc");
  EXPECT_STREQ(ToString(Bottleneck::kBalanced), "balanced");
}

}  // namespace
}  // namespace wolt::model
