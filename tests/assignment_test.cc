#include "model/assignment.h"

#include <gtest/gtest.h>

#include <stdexcept>

namespace wolt::model {
namespace {

Network TwoByTwo() {
  Network net(2, 2);
  net.SetWifiRate(0, 0, 10.0);
  net.SetWifiRate(0, 1, 20.0);
  net.SetWifiRate(1, 0, 30.0);
  // (1,1) left unreachable.
  net.SetPlcRate(0, 100.0);
  net.SetPlcRate(1, 100.0);
  return net;
}

TEST(AssignmentTest, StartsUnassigned) {
  Assignment a(3);
  EXPECT_EQ(a.NumUsers(), 3u);
  EXPECT_EQ(a.AssignedCount(), 0u);
  for (std::size_t i = 0; i < 3; ++i) {
    EXPECT_FALSE(a.IsAssigned(i));
    EXPECT_EQ(a.ExtenderOf(i), Assignment::kUnassigned);
  }
}

TEST(AssignmentTest, AssignUnassignRoundTrip) {
  Assignment a(2);
  a.Assign(0, 1);
  EXPECT_TRUE(a.IsAssigned(0));
  EXPECT_EQ(a.ExtenderOf(0), 1);
  EXPECT_EQ(a.AssignedCount(), 1u);
  a.Unassign(0);
  EXPECT_FALSE(a.IsAssigned(0));
  EXPECT_EQ(a.AssignedCount(), 0u);
}

TEST(AssignmentTest, UsersOfAndLoadVector) {
  Assignment a(4);
  a.Assign(0, 1);
  a.Assign(2, 1);
  a.Assign(3, 0);
  EXPECT_EQ(a.UsersOf(1), (std::vector<std::size_t>{0, 2}));
  EXPECT_EQ(a.UsersOf(0), (std::vector<std::size_t>{3}));
  EXPECT_EQ(a.LoadVector(2), (std::vector<int>{1, 2}));
  EXPECT_EQ(a.ActiveExtenders(3), (std::vector<std::size_t>{0, 1}));
}

TEST(AssignmentTest, LoadVectorRejectsUnknownExtender) {
  Assignment a(1);
  a.Assign(0, 5);
  EXPECT_THROW(a.LoadVector(2), std::out_of_range);
}

TEST(AssignmentTest, ValidityChecksReachability) {
  const Network net = TwoByTwo();
  Assignment a(2);
  a.Assign(0, 0);
  EXPECT_TRUE(a.IsValidFor(net));
  EXPECT_FALSE(a.IsCompleteFor(net));  // user 1 unassigned
  a.Assign(1, 0);
  EXPECT_TRUE(a.IsCompleteFor(net));
  a.Assign(1, 1);  // unreachable pair
  EXPECT_FALSE(a.IsValidFor(net));
}

TEST(AssignmentTest, ValidityChecksCapacity) {
  Network net = TwoByTwo();
  net.SetMaxUsers(0, 1);
  Assignment a(2);
  a.Assign(0, 0);
  a.Assign(1, 0);
  EXPECT_FALSE(a.IsValidFor(net));
  net.SetMaxUsers(0, 2);
  EXPECT_TRUE(a.IsValidFor(net));
}

TEST(AssignmentTest, SizeMismatchIsInvalid) {
  const Network net = TwoByTwo();
  Assignment a(3);
  EXPECT_FALSE(a.IsValidFor(net));
}

TEST(AssignmentTest, AppendAndEraseKeepAlignment) {
  Assignment a(2);
  a.Assign(0, 0);
  a.Assign(1, 1);
  a.AppendUser();
  EXPECT_EQ(a.NumUsers(), 3u);
  EXPECT_FALSE(a.IsAssigned(2));
  a.EraseUser(0);
  EXPECT_EQ(a.NumUsers(), 2u);
  EXPECT_EQ(a.ExtenderOf(0), 1);  // former user 1 shifted down
}

TEST(AssignmentTest, CountReassignments) {
  Assignment before(3), after(3);
  before.Assign(0, 0);
  before.Assign(1, 1);
  // user 2 new (unassigned before).
  after.Assign(0, 1);  // moved
  after.Assign(1, 1);  // kept
  after.Assign(2, 0);  // new arrival -> not a reassignment
  EXPECT_EQ(Assignment::CountReassignments(before, after), 1u);
}

TEST(AssignmentTest, CountReassignmentsSizeMismatchThrows) {
  Assignment a(2), b(3);
  EXPECT_THROW(Assignment::CountReassignments(a, b), std::invalid_argument);
}

TEST(AssignmentTest, ToStringShowsAssignments) {
  Assignment a(2);
  a.Assign(0, 1);
  EXPECT_EQ(a.ToString(), "[0->1, 1->?]");
}

TEST(AssignmentTest, EqualityComparison) {
  Assignment a(2), b(2);
  EXPECT_EQ(a, b);
  a.Assign(0, 1);
  EXPECT_NE(a, b);
  b.Assign(0, 1);
  EXPECT_EQ(a, b);
}

}  // namespace
}  // namespace wolt::model
