// Golden lockdown of the deterministic metrics contract: one fixed sweep
// scenario run at 1/2/4/8 threads must produce a merged deterministic
// snapshot (MetricsSnapshot::DeterministicJson — the timing-quarantined
// section excluded) that is byte-identical across every thread count AND
// byte-identical to the committed golden under tests/data/obs_golden/.
//
// The golden pins the exact solver work profile (Hungarian augment steps,
// local-search candidates generated/pruned/evaluated/accepted, insertion
// counts, ...) of the scenario: any change to solver behaviour — intended
// or not — shows up as a golden diff that must be reviewed and re-recorded.
//
// Re-record after an intentional solver change with:
//   WOLT_REGEN_OBS_GOLDEN=1 ./obs_golden_test
#include <gtest/gtest.h>

#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "obs/metrics.h"
#include "obs/obs.h"
#include "sweep/engine.h"
#include "sweep/grid.h"

#ifndef WOLT_TEST_DATA_DIR
#error "WOLT_TEST_DATA_DIR must point at tests/data"
#endif

namespace wolt {
namespace {

namespace fs = std::filesystem;

// Fixed scenario: 2 sharing modes x 4 policies x 25 replicates = 200 tasks
// on a 14-user / 4-extender floor (big enough to exercise every solver
// stage, small enough for four full runs in seconds).
sweep::SweepGrid GoldenGrid() {
  sweep::SweepGrid grid;
  grid.master_seed = 0x601d;
  grid.SeedRange(25);
  grid.users = {14};
  grid.extenders = {4};
  grid.sharing = {model::PlcSharing::kMaxMinActive,
                  model::PlcSharing::kEqualAll};
  grid.policies = {sweep::PolicyKind::kWolt, sweep::PolicyKind::kWoltSubset,
                   sweep::PolicyKind::kGreedy, sweep::PolicyKind::kRssi};
  grid.base.width_m = 60.0;
  grid.base.height_m = 60.0;
  return grid;
}

std::string RunAtThreads(int threads) {
  sweep::SweepOptions options;
  options.threads = threads;
  options.collect_metrics = true;
  sweep::SweepEngine engine(options);
  const sweep::SweepResult result = engine.Run(GoldenGrid());
  EXPECT_FALSE(result.cancelled);
  for (const auto& task : result.tasks) {
    EXPECT_TRUE(task.error.empty()) << task.error;
  }
  return result.metrics.DeterministicJson();
}

fs::path GoldenPath() {
  return fs::path(WOLT_TEST_DATA_DIR) / "obs_golden" /
         "sweep_metrics_deterministic.json";
}

TEST(ObsGoldenTest, DeterministicSnapshotIdenticalAcrossThreadCounts) {
  const std::string at1 = RunAtThreads(1);
  EXPECT_FALSE(at1.empty());
  // The deterministic section must carry real content: at minimum the task
  // accounting counter.
  EXPECT_NE(at1.find("\"sweep.tasks.completed\":200"), std::string::npos)
      << at1;
  // And must not leak any timing-quarantined metric.
  EXPECT_EQ(at1.find("\"timing\""), std::string::npos);
  EXPECT_EQ(at1.find("sweep.task_latency_us"), std::string::npos);
  EXPECT_EQ(at1.find("sweep.wall_seconds"), std::string::npos);
  EXPECT_EQ(at1.find("sweep.threads"), std::string::npos);
  EXPECT_EQ(at1.find("sweep.steals"), std::string::npos);

  for (const int threads : {2, 4, 8}) {
    const std::string at_n = RunAtThreads(threads);
    EXPECT_EQ(at1, at_n) << "deterministic snapshot diverged at threads="
                         << threads;
  }

#if WOLT_OBS_ENABLED
  // Solver hooks are compiled in: the full per-stage work profile must be
  // present and match the committed golden byte-for-byte.
  EXPECT_NE(at1.find("\"hungarian.solves\""), std::string::npos);
  EXPECT_NE(at1.find("\"ls.relocate.generated\""), std::string::npos);

  const fs::path golden_path = GoldenPath();
  if (std::getenv("WOLT_REGEN_OBS_GOLDEN") != nullptr) {
    fs::create_directories(golden_path.parent_path());
    std::ofstream out(golden_path, std::ios::binary);
    ASSERT_TRUE(out) << golden_path;
    out << at1 << "\n";
    GTEST_SKIP() << "golden re-recorded at " << golden_path;
  }

  std::ifstream in(golden_path, std::ios::binary);
  ASSERT_TRUE(in) << "missing golden " << golden_path
                  << " — record it with WOLT_REGEN_OBS_GOLDEN=1";
  std::ostringstream buf;
  buf << in.rdbuf();
  EXPECT_EQ(at1 + "\n", buf.str())
      << "deterministic metrics diverged from the committed golden; if the "
         "solver change is intentional, re-record with "
         "WOLT_REGEN_OBS_GOLDEN=1";
#else
  GTEST_SKIP() << "WOLT_OBS=OFF: hook counters compiled out; thread-count "
                  "invariance checked, golden comparison skipped";
#endif
}

// The engine's timing telemetry must still exist in the full snapshot —
// quarantined, not dropped.
TEST(ObsGoldenTest, TimingSectionCarriesQuarantinedMetrics) {
  sweep::SweepOptions options;
  options.threads = 2;
  options.collect_metrics = true;
  sweep::SweepEngine engine(options);
  const sweep::SweepResult result = engine.Run(GoldenGrid());
  const std::string full = result.metrics.Json(/*include_timing=*/true);
  EXPECT_NE(full.find("\"timing\""), std::string::npos);
  EXPECT_NE(full.find("\"sweep.task_latency_us\""), std::string::npos);
  EXPECT_NE(full.find("\"sweep.wall_seconds\""), std::string::npos);
  EXPECT_NE(full.find("\"sweep.threads\""), std::string::npos);
}

}  // namespace
}  // namespace wolt
