// Golden-file coverage for the trace serialization (sim/workload.h),
// following the io_golden_test pattern: the committed corpus under
// tests/data/trace_corpus must match a fresh in-memory generation
// byte-for-byte (generation is a pure function of its seed) AND round-trip
// through parse -> serialize as the identity; every file under
// tests/data/trace_malformed must be rejected with the typed
// model::IoErrorKind its name promises — never a crash. Regenerate the
// corpus after an intentional format change with:
//   WOLT_REGEN_TRACE_GOLDEN=1 ./tests/workload_golden_test
#include "sim/workload.h"

#include <gtest/gtest.h>

#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "sim/scenario.h"
#include "util/rng.h"

#ifndef WOLT_TEST_DATA_DIR
#error "WOLT_TEST_DATA_DIR must point at tests/data"
#endif

namespace wolt::sim {
namespace {

namespace fs = std::filesystem;

fs::path DataDir() { return fs::path(WOLT_TEST_DATA_DIR); }

std::string ReadFile(const fs::path& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in) << path;
  std::ostringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

bool RegenRequested() {
  const char* env = std::getenv("WOLT_REGEN_TRACE_GOLDEN");
  return env != nullptr && std::string(env) == "1";
}

struct CorpusEntry {
  std::string name;
  WorkloadParams params;
  std::uint64_t seed = 0;
};

// The committed corpus: one trace per mobility model, covering every load
// curve and the background-traffic channel. Small horizons keep the files
// reviewable.
std::vector<CorpusEntry> Corpus() {
  std::vector<CorpusEntry> entries;

  CorpusEntry teleport;
  teleport.name = "teleport_constant.trace";
  teleport.params.horizon = 5.0;
  teleport.params.arrival_rate = 1.0;
  teleport.params.mean_session = 4.0;
  teleport.params.initial_users = 2;
  teleport.params.mobility.model = MobilityModel::kTeleport;
  teleport.params.move_tick = 1.0;
  teleport.seed = 101;
  entries.push_back(teleport);

  CorpusEntry waypoint;
  waypoint.name = "waypoint_diurnal.trace";
  waypoint.params.horizon = 5.0;
  waypoint.params.arrival_rate = 1.0;
  waypoint.params.mean_session = 4.0;
  waypoint.params.initial_users = 2;
  waypoint.params.mobility.model = MobilityModel::kWaypoint;
  waypoint.params.move_tick = 1.0;
  waypoint.params.load = LoadCurve::kDiurnal;
  waypoint.params.load_period = 4.0;
  waypoint.seed = 202;
  entries.push_back(waypoint);

  CorpusEntry hotspot;
  hotspot.name = "hotspot_bursty_bg.trace";
  hotspot.params.horizon = 5.0;
  hotspot.params.arrival_rate = 1.0;
  hotspot.params.mean_session = 4.0;
  hotspot.params.initial_users = 2;
  hotspot.params.mobility.model = MobilityModel::kHotspot;
  hotspot.params.move_tick = 1.0;
  hotspot.params.load = LoadCurve::kBursty;
  hotspot.params.burst_rate = 1.0;
  hotspot.params.background_share = 0.5;
  hotspot.seed = 303;
  entries.push_back(hotspot);

  return entries;
}

// The corpus topology: fixed scenario, fixed seed — regeneration and
// verification must agree on the base network bit-for-bit.
model::Network CorpusNetwork(const ScenarioGenerator& generator) {
  util::Rng rng(424242);
  return generator.Generate(rng);
}

ScenarioGenerator CorpusGenerator() {
  ScenarioParams p;
  p.num_extenders = 3;
  p.num_users = 0;
  return ScenarioGenerator(p);
}

TEST(WorkloadGoldenTest, CorpusMatchesGenerationAndRoundTrips) {
  const ScenarioGenerator generator = CorpusGenerator();
  const model::Network base = CorpusNetwork(generator);
  const fs::path dir = DataDir() / "trace_corpus";

  if (RegenRequested()) {
    fs::create_directories(dir);
    for (const CorpusEntry& entry : Corpus()) {
      const WorkloadTrace trace =
          GenerateTrace(generator, base, entry.params, entry.seed);
      ASSERT_TRUE(SaveTraceFile(trace, (dir / entry.name).string()));
    }
    GTEST_SKIP() << "regenerated trace corpus under " << dir;
  }

  for (const CorpusEntry& entry : Corpus()) {
    const std::string golden = ReadFile(dir / entry.name);
    ASSERT_FALSE(golden.empty()) << dir / entry.name;

    // Generation is a pure function of (scenario, params, seed): a fresh
    // generation must reproduce the committed bytes exactly. A mismatch
    // means the generator or the format drifted — regenerate deliberately
    // with WOLT_REGEN_TRACE_GOLDEN=1 and review the diff.
    const WorkloadTrace fresh =
        GenerateTrace(generator, base, entry.params, entry.seed);
    EXPECT_EQ(TraceToString(fresh), golden) << entry.name;

    // Parse -> serialize is the identity on serializer output.
    const TraceLoadResult parsed = TraceFromStringDetailed(golden);
    ASSERT_TRUE(parsed.ok())
        << entry.name << ": " << model::ToString(parsed.error.kind)
        << " at line " << parsed.error.line << ": " << parsed.error.message;
    EXPECT_EQ(TraceToString(*parsed.trace), golden) << entry.name;

    // And a second round trip is a fixed point.
    const TraceLoadResult again =
        TraceFromStringDetailed(TraceToString(*parsed.trace));
    ASSERT_TRUE(again.ok()) << entry.name;
    EXPECT_EQ(TraceToString(*again.trace), TraceToString(*parsed.trace));
  }
}

TEST(WorkloadGoldenTest, MalformedCorpusRejectedWithTypedErrors) {
  const std::map<std::string, model::IoErrorKind> expected = {
      {"truncated.trace", model::IoErrorKind::kTruncated},
      {"bad_header.trace", model::IoErrorKind::kBadHeader},
      {"bad_version.trace", model::IoErrorKind::kBadHeader},
      {"bad_count.trace", model::IoErrorKind::kBadCount},
      {"bad_record.trace", model::IoErrorKind::kBadRecord},
      {"bad_keyvalue.trace", model::IoErrorKind::kBadKeyValue},
      {"bad_number.trace", model::IoErrorKind::kBadNumber},
      {"bad_dimension.trace", model::IoErrorKind::kBadDimension},
      {"trailing.trace", model::IoErrorKind::kTrailingInput},
      // Semantic defects: the loader enforces the same invariants the
      // generator guarantees, so replay never sees an impossible stream.
      {"time_backwards.trace", model::IoErrorKind::kBadRecord},
      {"arrive_twice.trace", model::IoErrorKind::kBadRecord},
      {"depart_inactive.trace", model::IoErrorKind::kBadRecord},
      {"move_inactive.trace", model::IoErrorKind::kBadRecord},
      {"past_horizon.trace", model::IoErrorKind::kBadRecord},
      {"negative_rate.trace", model::IoErrorKind::kBadNumber},
      {"bad_share.trace", model::IoErrorKind::kBadNumber},
  };
  int files = 0;
  for (const auto& entry :
       fs::directory_iterator(DataDir() / "trace_malformed")) {
    ++files;
    const auto it = expected.find(entry.path().filename().string());
    ASSERT_NE(it, expected.end())
        << entry.path() << " has no expected error kind; add it to the map";

    const TraceLoadResult res =
        TraceFromStringDetailed(ReadFile(entry.path()));
    EXPECT_FALSE(res.ok()) << entry.path();
    EXPECT_EQ(res.error.kind, it->second)
        << entry.path() << ": got " << model::ToString(res.error.kind)
        << " at line " << res.error.line << ": " << res.error.message;
    EXPECT_FALSE(res.error.message.empty()) << entry.path();
  }
  EXPECT_EQ(files, static_cast<int>(expected.size()));
}

TEST(WorkloadGoldenTest, MissingFileGivesTypedError) {
  const TraceLoadResult res =
      LoadTraceFile((DataDir() / "trace_corpus" / "nope.trace").string());
  EXPECT_FALSE(res.ok());
  EXPECT_EQ(res.error.kind, model::IoErrorKind::kTruncated);
}

// Byte-soup: mutated serializations and raw random bytes must always come
// back as ok-or-typed-error, and a successful parse must re-serialize
// without throwing.
TEST(WorkloadGoldenTest, ByteSoupNeverCrashes) {
  if (RegenRequested()) GTEST_SKIP() << "regen run";
  const std::string base =
      ReadFile(DataDir() / "trace_corpus" / "waypoint_diurnal.trace");
  ASSERT_FALSE(base.empty());
  util::Rng rng(123456789);

  for (int trial = 0; trial < 500; ++trial) {
    std::string text = base;
    const int mutations = rng.UniformInt(1, 8);
    for (int m = 0; m < mutations && !text.empty(); ++m) {
      const std::size_t pos = static_cast<std::size_t>(
          rng.UniformInt(0, static_cast<int>(text.size()) - 1));
      switch (rng.UniformInt(0, 3)) {
        case 0:
          text[pos] =
              static_cast<char>(text[pos] ^ (1 << rng.UniformInt(0, 7)));
          break;
        case 1:
          text[pos] = static_cast<char>(rng.UniformInt(0, 255));
          break;
        case 2:
          text.erase(text.begin() + static_cast<std::ptrdiff_t>(pos));
          break;
        case 3:
          text.insert(text.begin() + static_cast<std::ptrdiff_t>(pos),
                      static_cast<char>(rng.UniformInt(0, 255)));
          break;
      }
    }
    const TraceLoadResult res = TraceFromStringDetailed(text);
    if (res.ok()) {
      EXPECT_NO_THROW(TraceToString(*res.trace));
    } else {
      EXPECT_NE(res.error.kind, model::IoErrorKind::kNone);
    }
  }

  for (int trial = 0; trial < 200; ++trial) {
    std::string text(static_cast<std::size_t>(rng.UniformInt(0, 400)), '\0');
    for (char& c : text) c = static_cast<char>(rng.UniformInt(0, 255));
    const TraceLoadResult res = TraceFromStringDetailed(text);
    if (!res.ok()) EXPECT_NE(res.error.kind, model::IoErrorKind::kNone);
  }
}

}  // namespace
}  // namespace wolt::sim
