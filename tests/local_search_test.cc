#include "assign/local_search.h"

#include <gtest/gtest.h>

#include <cstddef>
#include <deque>
#include <vector>

#include "assign/brute_force.h"
#include "testbed/lab.h"
#include "util/arena.h"
#include "util/rng.h"
#include "util/thread_pool.h"

namespace wolt::assign {
namespace {

model::Network RandomNetwork(util::Rng& rng, std::size_t users,
                             std::size_t exts) {
  model::Network net(users, exts);
  for (std::size_t j = 0; j < exts; ++j) {
    net.SetPlcRate(j, rng.Uniform(20.0, 160.0));
  }
  for (std::size_t i = 0; i < users; ++i) {
    for (std::size_t j = 0; j < exts; ++j) {
      net.SetWifiRate(i, j, rng.Uniform(5.0, 65.0));
    }
  }
  return net;
}

TEST(Phase2ValueTest, WifiSumMatchesHandComputation) {
  const model::Network net = testbed::CaseStudyNetwork();
  model::Assignment a(2);
  a.Assign(0, 0);
  a.Assign(1, 0);
  // Both on ext0: sum = 2/(1/15 + 1/40) = 240/11.
  EXPECT_NEAR(Phase2Value(net, a, Phase2Objective::kWifiSum, {}),
              240.0 / 11.0, 1e-9);
  a.Assign(1, 1);
  EXPECT_NEAR(Phase2Value(net, a, Phase2Objective::kWifiSum, {}),
              15.0 + 20.0, 1e-9);
}

TEST(Phase2ValueTest, EndToEndUsesEvaluator) {
  const model::Network net = testbed::CaseStudyNetwork();
  model::Assignment a(2);
  a.Assign(0, 0);
  a.Assign(1, 1);
  EXPECT_NEAR(Phase2Value(net, a, Phase2Objective::kEndToEnd, {}), 30.0,
              1e-9);
}

TEST(GreedyInsertTest, PicksBestMarginalExtender) {
  // User 1 fixed on ext0 (rate 15); inserting user 2 onto ext1 gives WiFi
  // sum 15+20=35 vs both-on-ext0 21.8, so greedy must pick ext1.
  const model::Network net = testbed::CaseStudyNetwork();
  model::Assignment a(2);
  a.Assign(0, 0);
  GreedyInsert(net, a, {1});
  EXPECT_EQ(a.ExtenderOf(1), 1);
}

TEST(GreedyInsertTest, SkipsAssignedAndUnreachableUsers) {
  model::Network net(3, 2);
  net.SetPlcRate(0, 100.0);
  net.SetPlcRate(1, 100.0);
  net.SetWifiRate(0, 0, 10.0);
  net.SetWifiRate(1, 1, 10.0);
  // user 2 unreachable everywhere.
  model::Assignment a(3);
  a.Assign(0, 0);
  GreedyInsert(net, a, {0, 1, 2});
  EXPECT_EQ(a.ExtenderOf(0), 0);  // untouched
  EXPECT_EQ(a.ExtenderOf(1), 1);
  EXPECT_FALSE(a.IsAssigned(2));  // left out, no crash
}

TEST(GreedyInsertTest, RespectsCapacityCaps) {
  model::Network net(3, 2);
  net.SetPlcRate(0, 100.0);
  net.SetPlcRate(1, 100.0);
  for (std::size_t i = 0; i < 3; ++i) {
    net.SetWifiRate(i, 0, 60.0);  // everyone prefers ext0
    net.SetWifiRate(i, 1, 10.0);
  }
  net.SetMaxUsers(0, 2);
  model::Assignment a(3);
  GreedyInsert(net, a, {0, 1, 2});
  const std::vector<int> load = a.LoadVector(2);
  EXPECT_EQ(load[0], 2);
  EXPECT_EQ(load[1], 1);
}

TEST(GreedyInsertTest, EndToEndObjectiveVariant) {
  const model::Network net = testbed::CaseStudyNetwork();
  model::Assignment a(2);
  a.Assign(0, 0);
  LocalSearchOptions opts;
  opts.objective = Phase2Objective::kEndToEnd;
  GreedyInsert(net, a, {1}, opts);
  // End-to-end: ext1 gives 30 total vs 21.8 on ext0.
  EXPECT_EQ(a.ExtenderOf(1), 1);
}

TEST(RelocateTest, ImprovesToLocalOptimum) {
  // Start from a bad configuration and verify local search escapes it.
  const model::Network net = testbed::CaseStudyNetwork();
  model::Assignment a(2);
  a.Assign(0, 0);
  a.Assign(1, 0);  // both users on ext0: WiFi sum 21.8
  const LocalSearchStats stats = RelocateLocalSearch(net, a, {0, 1});
  EXPECT_GT(stats.final_value, stats.initial_value);
  EXPECT_GE(stats.moves, 1u);
  // WiFi-sum optimum keeps each user alone on an extender.
  EXPECT_NE(a.ExtenderOf(0), a.ExtenderOf(1));
}

TEST(RelocateTest, OnlyMovesMovableUsers) {
  const model::Network net = testbed::CaseStudyNetwork();
  model::Assignment a(2);
  a.Assign(0, 0);
  a.Assign(1, 0);
  RelocateLocalSearch(net, a, {1});  // user0 pinned
  EXPECT_EQ(a.ExtenderOf(0), 0);
}

TEST(RelocateTest, StopsOnTolerance) {
  const model::Network net = testbed::CaseStudyNetwork();
  model::Assignment a(2);
  a.Assign(0, 1);
  a.Assign(1, 0);  // already the WiFi-sum optimum (10 + 40 = 50)
  const LocalSearchStats stats = RelocateLocalSearch(net, a, {0, 1});
  EXPECT_EQ(stats.moves, 0u);
  EXPECT_DOUBLE_EQ(stats.initial_value, stats.final_value);
}

TEST(RelocateTest, NeverDecreasesObjective) {
  for (int seed = 1; seed <= 25; ++seed) {
    util::Rng rng(static_cast<std::uint64_t>(seed) * 131);
    const model::Network net = RandomNetwork(rng, 8, 3);
    model::Assignment a(8);
    std::vector<std::size_t> movable;
    for (std::size_t i = 0; i < 8; ++i) {
      a.Assign(i, static_cast<std::size_t>(rng.UniformInt(0, 2)));
      movable.push_back(i);
    }
    const LocalSearchStats stats = RelocateLocalSearch(net, a, movable);
    EXPECT_GE(stats.final_value, stats.initial_value - 1e-9) << seed;
    EXPECT_TRUE(a.IsCompleteFor(net));
  }
}

TEST(RelocateTest, ReachesBruteForceOptimumOnWifiSum) {
  // Problem 2 with no fixed users: greedy insertion + relocation should hit
  // the exhaustive WiFi-sum optimum on small instances (Theorem 3 says the
  // continuous relaxation is integral; the discrete landscape is benign).
  int optimal_hits = 0;
  double ratio_sum = 0.0;
  const int cases = 30;
  for (int seed = 1; seed <= cases; ++seed) {
    util::Rng rng(static_cast<std::uint64_t>(seed) * 733);
    const model::Network net = RandomNetwork(rng, 6, 3);
    model::Assignment a(6);
    std::vector<std::size_t> all = {0, 1, 2, 3, 4, 5};
    const double heuristic = SolvePhase2MultiStart(net, a, all);

    const model::Assignment none(6);
    const BruteForceResult bf = SolveBruteForceObjective(
        net, none, [&](const model::Assignment& cand) {
          return Phase2Value(net, cand, Phase2Objective::kWifiSum, {});
        });
    EXPECT_LE(heuristic, bf.best_aggregate_mbps + 1e-6);
    ratio_sum += heuristic / bf.best_aggregate_mbps;
    if (heuristic >= bf.best_aggregate_mbps - 1e-6) ++optimal_hits;
  }
  // A local-search heuristic for an NP-hard landscape: it must hit the
  // exact optimum in a clear majority of instances and stay within a
  // fraction of a percent of it on average.
  EXPECT_GE(optimal_hits, cases * 2 / 3);
  EXPECT_GE(ratio_sum / cases, 0.995);
}

// The in-solve parallel multi-start must be BYTE-identical to the serial
// solve at every thread count: same objective value (exact, no tolerance)
// and the same extender for every user. The merge is deterministic by start
// index, so thread scheduling must never leak into the result.
TEST(MultiStartParallelTest, ByteIdenticalToSerialAtAnyThreadCount) {
  util::Rng rng(0x9a7a11e1);
  for (int inst = 0; inst < 10; ++inst) {
    const std::size_t users = 18 + static_cast<std::size_t>(inst);
    model::Network net = RandomNetwork(rng, users, 5);
    // Punch holes in reachability so the starts genuinely differ.
    for (std::size_t i = 0; i < users; ++i) {
      for (std::size_t j = 0; j < 5; ++j) {
        if (rng.UniformInt(0, 3) == 0 && j != i % 5) {
          net.SetWifiRate(i, j, 0.0);
        }
      }
    }
    std::vector<std::size_t> all(users);
    for (std::size_t i = 0; i < users; ++i) all[i] = i;

    model::Assignment serial(users);
    const double serial_value = SolvePhase2MultiStart(net, serial, all);

    for (int threads : {1, 2, 4, 8}) {
      util::ThreadPool pool(threads);
      util::SolverArena arena;
      std::deque<util::SolverArena> start_arenas;
      model::NetworkSoA soa;
      soa.Refresh(net);
      LocalSearchOptions opts;
      opts.soa = &soa;
      opts.arena = &arena;
      opts.pool = &pool;
      opts.start_arenas = &start_arenas;
      model::Assignment par(users);
      const double par_value = SolvePhase2MultiStart(net, par, all, opts);
      EXPECT_EQ(par_value, serial_value)
          << "inst=" << inst << " threads=" << threads;
      for (std::size_t i = 0; i < users; ++i) {
        EXPECT_EQ(par.ExtenderOf(i), serial.ExtenderOf(i))
            << "inst=" << inst << " threads=" << threads << " user=" << i;
      }
    }
  }
}

// Same identity for the evaluator-backed end-to-end objective, whose
// searches run through model::IncrementalEvaluator on the workers.
TEST(MultiStartParallelTest, ByteIdenticalOnEndToEndObjective) {
  util::Rng rng(0xe2e0);
  for (int inst = 0; inst < 4; ++inst) {
    const model::Network net = RandomNetwork(rng, 12, 4);
    std::vector<std::size_t> all(12);
    for (std::size_t i = 0; i < 12; ++i) all[i] = i;

    LocalSearchOptions base;
    base.objective = Phase2Objective::kEndToEnd;
    model::Assignment serial(12);
    const double serial_value = SolvePhase2MultiStart(net, serial, all, base);

    for (int threads : {2, 8}) {
      util::ThreadPool pool(threads);
      LocalSearchOptions opts = base;
      opts.pool = &pool;
      model::Assignment par(12);
      const double par_value = SolvePhase2MultiStart(net, par, all, opts);
      EXPECT_EQ(par_value, serial_value)
          << "inst=" << inst << " threads=" << threads;
      for (std::size_t i = 0; i < 12; ++i) {
        EXPECT_EQ(par.ExtenderOf(i), serial.ExtenderOf(i))
            << "inst=" << inst << " threads=" << threads << " user=" << i;
      }
    }
  }
}

}  // namespace
}  // namespace wolt::assign
