#include "util/table.h"

#include <gtest/gtest.h>

#include <fstream>
#include <sstream>

#include "util/csv.h"

namespace wolt::util {
namespace {

TEST(TableTest, RendersHeaderSeparatorAndRows) {
  Table t({"policy", "mbps"});
  t.AddRow({"WOLT", "412.3"});
  t.AddRow({"Greedy", "164.9"});
  const std::string out = t.Render();
  EXPECT_NE(out.find("policy"), std::string::npos);
  EXPECT_NE(out.find("------"), std::string::npos);
  EXPECT_NE(out.find("WOLT"), std::string::npos);
  EXPECT_NE(out.find("164.9"), std::string::npos);
  EXPECT_EQ(t.RowCount(), 2u);
}

TEST(TableTest, ColumnsAreAligned) {
  Table t({"a", "long_header"});
  t.AddRow({"xxxxxxxx", "1"});
  const std::string out = t.Render();
  std::istringstream lines(out);
  std::string header, sep, row;
  std::getline(lines, header);
  std::getline(lines, sep);
  std::getline(lines, row);
  // The second column starts at the same offset in all lines.
  EXPECT_EQ(header.find("long_header"), row.find("1"));
}

TEST(TableTest, ShortRowsArePadded) {
  Table t({"a", "b", "c"});
  t.AddRow({"1"});
  EXPECT_NO_THROW(t.Render());
}

TEST(FmtTest, FormatsDigits) {
  EXPECT_EQ(Fmt(3.14159, 2), "3.14");
  EXPECT_EQ(Fmt(3.14159, 0), "3");
  EXPECT_EQ(Fmt(-1.5, 1), "-1.5");
}

TEST(FmtTest, PercentWithSign) {
  EXPECT_EQ(FmtPct(0.26, 1), "+26.0%");
  EXPECT_EQ(FmtPct(-0.125, 1), "-12.5%");
}

TEST(CsvTest, EscapesSpecialCharacters) {
  EXPECT_EQ(CsvEscape("plain"), "plain");
  EXPECT_EQ(CsvEscape("a,b"), "\"a,b\"");
  EXPECT_EQ(CsvEscape("say \"hi\""), "\"say \"\"hi\"\"\"");
  EXPECT_EQ(CsvEscape("line\nbreak"), "\"line\nbreak\"");
}

TEST(CsvTest, WritesRowsToFile) {
  const std::string path = ::testing::TempDir() + "/wolt_csv_test.csv";
  {
    CsvWriter csv(path, {"x", "y"});
    ASSERT_TRUE(csv.ok());
    csv.AddRow({"1", "2"});
    csv.AddRow({"3", "4,5"});
  }
  std::ifstream in(path);
  std::string line;
  std::getline(in, line);
  EXPECT_EQ(line, "x,y");
  std::getline(in, line);
  EXPECT_EQ(line, "1,2");
  std::getline(in, line);
  EXPECT_EQ(line, "3,\"4,5\"");
}

TEST(CsvTest, UnwritablePathIsNotOk) {
  CsvWriter csv("/nonexistent_dir_zzz/file.csv", {"a"});
  EXPECT_FALSE(csv.ok());
  csv.AddRow({"1"});  // must not crash
}

}  // namespace
}  // namespace wolt::util
