#include "plc/timeshare.h"

#include <gtest/gtest.h>

#include <numeric>
#include <stdexcept>
#include <vector>

#include "util/rng.h"

namespace wolt::plc {
namespace {

TEST(MaxMinTimeShareTest, SingleBackloggedExtenderGetsNeededTime) {
  // One extender with demand below capacity uses only the time it needs.
  const std::vector<double> rates = {60.0};
  const std::vector<double> demands = {30.0};
  const TimeShareResult r = MaxMinTimeShare(rates, demands);
  EXPECT_DOUBLE_EQ(r.time_share[0], 0.5);
  EXPECT_DOUBLE_EQ(r.throughput[0], 30.0);
}

TEST(MaxMinTimeShareTest, SaturatedExtendersShareEqually) {
  // Fig. 2c behaviour: k saturated extenders each get 1/k of airtime.
  const std::vector<double> rates = {60.0, 90.0, 120.0, 160.0};
  const std::vector<double> demands = {1e9, 1e9, 1e9, 1e9};
  const TimeShareResult r = MaxMinTimeShare(rates, demands);
  for (std::size_t j = 0; j < rates.size(); ++j) {
    EXPECT_NEAR(r.time_share[j], 0.25, 1e-12);
    EXPECT_NEAR(r.throughput[j], rates[j] / 4.0, 1e-9);
  }
}

TEST(MaxMinTimeShareTest, LeftoverFlowsToBackloggedExtender) {
  // The paper's Fig. 3c greedy case: extender 1 (60 Mbps link) demands only
  // 15, using 1/4 of the time; extender 2 (20 Mbps link) is saturated and
  // receives the remaining 3/4, delivering 15 Mbps.
  const std::vector<double> rates = {60.0, 20.0};
  const std::vector<double> demands = {15.0, 20.0};
  const TimeShareResult r = MaxMinTimeShare(rates, demands);
  EXPECT_NEAR(r.time_share[0], 0.25, 1e-12);
  EXPECT_NEAR(r.time_share[1], 0.75, 1e-12);
  EXPECT_NEAR(r.throughput[0], 15.0, 1e-9);
  EXPECT_NEAR(r.throughput[1], 15.0, 1e-9);
}

TEST(MaxMinTimeShareTest, AllDemandsFitLeavesSlack) {
  const std::vector<double> rates = {100.0, 100.0};
  const std::vector<double> demands = {10.0, 20.0};
  const TimeShareResult r = MaxMinTimeShare(rates, demands);
  EXPECT_DOUBLE_EQ(r.throughput[0], 10.0);
  EXPECT_DOUBLE_EQ(r.throughput[1], 20.0);
  EXPECT_LT(r.time_share[0] + r.time_share[1], 1.0);
}

TEST(MaxMinTimeShareTest, ZeroDemandGetsNoAirtime) {
  const std::vector<double> rates = {50.0, 50.0};
  const std::vector<double> demands = {0.0, 100.0};
  const TimeShareResult r = MaxMinTimeShare(rates, demands);
  EXPECT_DOUBLE_EQ(r.time_share[0], 0.0);
  EXPECT_DOUBLE_EQ(r.throughput[0], 0.0);
  EXPECT_NEAR(r.time_share[1], 1.0, 1e-12);
  EXPECT_NEAR(r.throughput[1], 50.0, 1e-9);
}

TEST(MaxMinTimeShareTest, CascadedRedistribution) {
  // Three extenders: two low-demand ones release time in successive rounds.
  const std::vector<double> rates = {90.0, 90.0, 30.0};
  const std::vector<double> demands = {10.0, 33.0, 1e9};
  const TimeShareResult r = MaxMinTimeShare(rates, demands);
  // Round 1 share = 1/3: ext0 needs 1/9 < 1/3 (sated). Round 2: remaining
  // 8/9 split over 2 -> 4/9; ext1 needs 33/90 = 0.3667 < 4/9 (sated).
  // Ext2 gets 1 - 1/9 - 0.3667 = 0.5222.
  EXPECT_NEAR(r.throughput[0], 10.0, 1e-9);
  EXPECT_NEAR(r.throughput[1], 33.0, 1e-9);
  EXPECT_NEAR(r.time_share[2], 1.0 - 1.0 / 9.0 - 33.0 / 90.0, 1e-9);
  EXPECT_NEAR(r.throughput[2], r.time_share[2] * 30.0, 1e-9);
}

TEST(MaxMinTimeShareTest, InputValidation) {
  EXPECT_THROW(
      MaxMinTimeShare(std::vector<double>{1.0}, std::vector<double>{1.0, 2.0}),
      std::invalid_argument);
  EXPECT_THROW(
      MaxMinTimeShare(std::vector<double>{-1.0}, std::vector<double>{1.0}),
      std::invalid_argument);
  EXPECT_THROW(
      MaxMinTimeShare(std::vector<double>{0.0}, std::vector<double>{1.0}),
      std::invalid_argument);
}

TEST(EqualTimeShareTest, StrictShares) {
  const std::vector<double> rates = {60.0, 20.0};
  const std::vector<double> demands = {15.0, 20.0};
  const TimeShareResult r = EqualTimeShare(rates, demands);
  EXPECT_DOUBLE_EQ(r.time_share[0], 0.5);
  EXPECT_DOUBLE_EQ(r.time_share[1], 0.5);
  EXPECT_DOUBLE_EQ(r.throughput[0], 15.0);  // demand-capped
  EXPECT_DOUBLE_EQ(r.throughput[1], 10.0);  // share-capped (no leftover)
}

TEST(EqualTimeShareTest, IdleExtendersExcludedFromCount) {
  const std::vector<double> rates = {60.0, 60.0, 60.0};
  const std::vector<double> demands = {0.0, 100.0, 100.0};
  const TimeShareResult r = EqualTimeShare(rates, demands);
  EXPECT_DOUBLE_EQ(r.time_share[1], 0.5);
  EXPECT_DOUBLE_EQ(r.throughput[1], 30.0);
}

TEST(EqualTimeShareTest, EmptyAndAllIdle) {
  const std::vector<double> none;
  const TimeShareResult r0 = EqualTimeShare(none, none);
  EXPECT_TRUE(r0.time_share.empty());
  const std::vector<double> rates = {10.0};
  const std::vector<double> demands = {0.0};
  const TimeShareResult r1 = EqualTimeShare(rates, demands);
  EXPECT_DOUBLE_EQ(r1.throughput[0], 0.0);
}

// Properties that must hold for any random instance.
class TimeShareProperty : public ::testing::TestWithParam<int> {};

TEST_P(TimeShareProperty, InvariantsHold) {
  util::Rng rng(static_cast<std::uint64_t>(GetParam()) * 1337);
  const int n = rng.UniformInt(1, 12);
  std::vector<double> rates(static_cast<std::size_t>(n));
  std::vector<double> demands(static_cast<std::size_t>(n));
  for (int j = 0; j < n; ++j) {
    rates[static_cast<std::size_t>(j)] = rng.Uniform(10.0, 200.0);
    demands[static_cast<std::size_t>(j)] =
        rng.Bernoulli(0.2) ? 0.0 : rng.Uniform(1.0, 150.0);
  }
  const TimeShareResult mm = MaxMinTimeShare(rates, demands);
  const TimeShareResult eq = EqualTimeShare(rates, demands);

  double total_time = 0.0;
  for (std::size_t j = 0; j < rates.size(); ++j) {
    // Airtime nonnegative, throughput never exceeds demand or allocation.
    ASSERT_GE(mm.time_share[j], 0.0);
    ASSERT_LE(mm.throughput[j], demands[j] + 1e-9);
    ASSERT_LE(mm.throughput[j], mm.time_share[j] * rates[j] + 1e-9);
    // Redistribution never hurts any extender vs strict equal shares.
    ASSERT_GE(mm.throughput[j], eq.throughput[j] - 1e-9);
    total_time += mm.time_share[j];
  }
  ASSERT_LE(total_time, 1.0 + 1e-9);

  // Work conservation: either all time is used, or every extender met its
  // demand.
  bool all_sated = true;
  for (std::size_t j = 0; j < rates.size(); ++j) {
    if (mm.throughput[j] < demands[j] - 1e-9) all_sated = false;
  }
  if (!all_sated) {
    EXPECT_NEAR(total_time, 1.0, 1e-9);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, TimeShareProperty, ::testing::Range(1, 41));

}  // namespace
}  // namespace wolt::plc
