// util::ThreadPool: every index runs exactly once whatever the thread count,
// chunk size, or load imbalance; cancellation stops claiming; a pool is
// reusable across jobs. Runs under TSan via the tsan preset.
#include "util/thread_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>
#include <vector>

namespace wolt::util {
namespace {

TEST(ThreadPoolTest, EveryIndexRunsExactlyOnce) {
  for (int threads : {1, 2, 4, 8}) {
    for (std::size_t chunk : {std::size_t{0}, std::size_t{1}, std::size_t{7}}) {
      ThreadPool pool(threads);
      const std::size_t n = 1000;
      std::vector<std::atomic<int>> hits(n);
      const bool complete = pool.ParallelFor(n, chunk, [&](std::size_t i) {
        hits[i].fetch_add(1, std::memory_order_relaxed);
      });
      EXPECT_TRUE(complete);
      for (std::size_t i = 0; i < n; ++i) {
        EXPECT_EQ(hits[i].load(), 1) << "threads=" << threads
                                     << " chunk=" << chunk << " i=" << i;
      }
    }
  }
}

TEST(ThreadPoolTest, SizeClampsAndCallerIsAnExecutor) {
  ThreadPool zero(0);
  EXPECT_EQ(zero.size(), 1);
  std::atomic<int> count{0};
  EXPECT_TRUE(zero.ParallelFor(17, 4, [&](std::size_t) { ++count; }));
  EXPECT_EQ(count.load(), 17);
}

TEST(ThreadPoolTest, EmptyJobCompletesImmediately) {
  ThreadPool pool(4);
  bool ran = false;
  EXPECT_TRUE(pool.ParallelFor(0, 1, [&](std::size_t) { ran = true; }));
  EXPECT_FALSE(ran);
}

TEST(ThreadPoolTest, ImbalancedTasksAllRun) {
  // Front-loaded durations force thieves into the first shard's leftovers.
  ThreadPool pool(4);
  const std::size_t n = 64;
  std::vector<std::atomic<int>> hits(n);
  EXPECT_TRUE(pool.ParallelFor(n, 1, [&](std::size_t i) {
    if (i < 8) {
      std::this_thread::sleep_for(std::chrono::milliseconds(2));
    }
    hits[i].fetch_add(1, std::memory_order_relaxed);
  }));
  for (std::size_t i = 0; i < n; ++i) EXPECT_EQ(hits[i].load(), 1);
}

TEST(ThreadPoolTest, ReusableAcrossJobs) {
  ThreadPool pool(3);
  for (int job = 0; job < 20; ++job) {
    std::atomic<int> count{0};
    EXPECT_TRUE(pool.ParallelFor(100, 0, [&](std::size_t) { ++count; }));
    EXPECT_EQ(count.load(), 100);
  }
}

TEST(ThreadPoolTest, CancellationStopsClaiming) {
  ThreadPool pool(2);
  std::atomic<bool> cancel{false};
  std::atomic<int> ran{0};
  const bool complete = pool.ParallelFor(10000, 1, [&](std::size_t i) {
    ran.fetch_add(1, std::memory_order_relaxed);
    if (i == 5) cancel.store(true, std::memory_order_relaxed);
  }, &cancel);
  EXPECT_FALSE(complete);
  EXPECT_LT(ran.load(), 10000);
  EXPECT_GE(ran.load(), 1);
}

TEST(ThreadPoolTest, PreCancelledRunsNothing) {
  ThreadPool pool(4);
  std::atomic<bool> cancel{true};
  std::atomic<int> ran{0};
  EXPECT_FALSE(pool.ParallelFor(100, 1, [&](std::size_t) { ++ran; }, &cancel));
  EXPECT_EQ(ran.load(), 0);
}

TEST(ThreadPoolTest, ShutdownRejectsSubsequentWork) {
  ThreadPool pool(4);
  std::atomic<int> ran{0};
  EXPECT_TRUE(pool.ParallelFor(32, 1, [&](std::size_t) { ++ran; }));
  EXPECT_EQ(ran.load(), 32);
  pool.Shutdown();
  EXPECT_FALSE(pool.ParallelFor(32, 1, [&](std::size_t) { ++ran; }));
  EXPECT_EQ(ran.load(), 32);  // nothing ran after shutdown
  pool.Shutdown();            // idempotent
  EXPECT_FALSE(pool.ParallelFor(1, 1, [&](std::size_t) { ++ran; }));
  EXPECT_EQ(ran.load(), 32);
}

TEST(ThreadPoolTest, ShutdownWithPendingWorkIsAllOrNothing) {
  // A job racing Shutdown() has exactly two legal outcomes: it ran in full
  // (the call won the serialization race; returns true) or it was rejected
  // outright (returns false, zero tasks ran) — never a partial job.
  for (int trial = 0; trial < 50; ++trial) {
    ThreadPool pool(4);
    constexpr std::size_t kTasks = 256;
    std::atomic<int> ran{0};
    std::atomic<bool> submitted{false};
    bool accepted = false;
    std::thread submitter([&] {
      submitted.store(true, std::memory_order_release);
      accepted = pool.ParallelFor(kTasks, 1, [&](std::size_t) {
        ran.fetch_add(1, std::memory_order_relaxed);
      });
    });
    while (!submitted.load(std::memory_order_acquire)) {
    }
    pool.Shutdown();  // blocks until any accepted job fully completed
    submitter.join();
    const int total = ran.load();
    if (accepted) {
      EXPECT_EQ(total, static_cast<int>(kTasks)) << "trial " << trial;
    } else {
      EXPECT_EQ(total, 0) << "trial " << trial;
    }
  }
}

}  // namespace
}  // namespace wolt::util
