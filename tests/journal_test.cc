// Unit tests for the sweep write-ahead journal (src/recover/): payload
// codec bit-exactness, torn-tail detection at every truncation offset,
// mid-file corruption, duplicate-record dedup, resume-after-truncate, and
// compaction bounding file growth.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "recover/journal.h"

namespace wolt::recover {
namespace {

namespace fs = std::filesystem;

std::string TempPath(const std::string& name) {
  return (fs::temp_directory_path() / name).string();
}

std::string Slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::string bytes((std::istreambuf_iterator<char>(in)),
                    std::istreambuf_iterator<char>());
  return bytes;
}

void Dump(const std::string& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
}

TaskRecord MakeRecord(std::uint64_t index) {
  TaskRecord r;
  r.index = index;
  r.aggregate_mbps = 123.456789 + static_cast<double>(index) * 0.25;
  r.jain_fairness = 0.91234567891234567;
  r.elapsed_us = 42.5;
  r.user_throughput = {1.25, 0.0, 7.75e-3, 1e9,
                       static_cast<double>(index) / 3.0};
  return r;
}

void ExpectRecordsEqual(const TaskRecord& a, const TaskRecord& b) {
  EXPECT_EQ(a.index, b.index);
  EXPECT_EQ(a.error, b.error);
  // Exact double equality: the journal stores raw bits.
  EXPECT_EQ(a.aggregate_mbps, b.aggregate_mbps);
  EXPECT_EQ(a.jain_fairness, b.jain_fairness);
  EXPECT_EQ(a.elapsed_us, b.elapsed_us);
  ASSERT_EQ(a.user_throughput.size(), b.user_throughput.size());
  for (std::size_t i = 0; i < a.user_throughput.size(); ++i) {
    EXPECT_EQ(a.user_throughput[i], b.user_throughput[i]);
  }
  EXPECT_EQ(a.has_metrics, b.has_metrics);
}

TEST(JournalCodec, TaskPayloadRoundTripsBitExactly) {
  TaskRecord rec = MakeRecord(7);
  rec.error = "boom: solver threw";
  rec.has_metrics = true;
  obs::CounterSample c;
  c.name = "eval.evaluations";
  c.value = 12345;
  rec.metrics.counters.push_back(c);
  obs::GaugeSample g;
  g.name = "sweep.wall_seconds";
  g.timing = true;
  g.value = 1.5e-3;
  rec.metrics.gauges.push_back(g);
  obs::HistogramSample h;
  h.name = "sweep.task_latency_us";
  h.timing = true;
  h.bounds = {1.0, 10.0, 100.0};
  h.counts = {0, 3, 9, 1};
  h.overflow = 1;
  rec.metrics.histograms.push_back(h);

  const std::string payload = EncodeTaskPayload(rec);
  TaskRecord back;
  ASSERT_TRUE(DecodeTaskPayload(payload, &back));
  ExpectRecordsEqual(rec, back);
  ASSERT_EQ(back.metrics.counters.size(), 1u);
  EXPECT_EQ(back.metrics.counters[0].name, "eval.evaluations");
  EXPECT_EQ(back.metrics.counters[0].value, 12345u);
  ASSERT_EQ(back.metrics.gauges.size(), 1u);
  EXPECT_TRUE(back.metrics.gauges[0].timing);
  EXPECT_EQ(back.metrics.gauges[0].value, 1.5e-3);
  ASSERT_EQ(back.metrics.histograms.size(), 1u);
  EXPECT_EQ(back.metrics.histograms[0].counts,
            (std::vector<std::uint64_t>{0, 3, 9, 1}));
  EXPECT_EQ(back.metrics.histograms[0].overflow, 1u);
}

TEST(JournalCodec, HeaderPayloadRoundTrips) {
  JournalHeader h;
  h.fingerprint = 0xDEADBEEFCAFEF00DULL;
  h.num_tasks = 200;
  JournalHeader back;
  ASSERT_TRUE(DecodeHeaderPayload(EncodeHeaderPayload(h), &back));
  EXPECT_EQ(back.fingerprint, h.fingerprint);
  EXPECT_EQ(back.num_tasks, h.num_tasks);
}

TEST(JournalCodec, DecodeRejectsTruncatedPayloads) {
  const std::string payload = EncodeTaskPayload(MakeRecord(3));
  for (std::size_t cut = 0; cut < payload.size(); ++cut) {
    TaskRecord out;
    EXPECT_FALSE(DecodeTaskPayload(payload.substr(0, cut), &out))
        << "cut at " << cut;
  }
}

TEST(JournalRead, MissingFileIsNotOk) {
  const JournalReadResult r = ReadJournal(TempPath("wolt_journal_nope.wal"));
  EXPECT_FALSE(r.ok);
  EXPECT_FALSE(r.error.empty());
}

TEST(JournalRead, EmptyOrHeaderlessFileIsNotOk) {
  const std::string path = TempPath("wolt_journal_empty.wal");
  Dump(path, "");
  EXPECT_FALSE(ReadJournal(path).ok);
  // A valid task frame without a preceding header record is also invalid.
  Dump(path, FramePayload(EncodeTaskPayload(MakeRecord(0))));
  const JournalReadResult r = ReadJournal(path);
  EXPECT_FALSE(r.ok);
  fs::remove(path);
}

// The central crash property at the file layer: cut the journal at EVERY
// byte offset; the reader must recover exactly the records whose frames
// survived whole and report the rest as torn.
TEST(JournalRead, TruncationAtEveryOffsetRecoversValidPrefix) {
  JournalHeader header;
  header.fingerprint = 0x5EEDULL;
  header.num_tasks = 3;
  std::string bytes = FramePayload(EncodeHeaderPayload(header));
  std::vector<std::uint64_t> frame_ends;  // cumulative end of each task frame
  for (std::uint64_t i = 0; i < 3; ++i) {
    bytes += FramePayload(EncodeTaskPayload(MakeRecord(i)));
    frame_ends.push_back(bytes.size());
  }
  const std::uint64_t header_end =
      frame_ends.empty() ? bytes.size() : frame_ends[0] -
          FramePayload(EncodeTaskPayload(MakeRecord(0))).size();

  const std::string path = TempPath("wolt_journal_trunc.wal");
  for (std::size_t cut = 0; cut <= bytes.size(); ++cut) {
    Dump(path, bytes.substr(0, cut));
    const JournalReadResult r = ReadJournal(path);
    if (cut < header_end) {
      EXPECT_FALSE(r.ok) << "cut at " << cut;
      continue;
    }
    ASSERT_TRUE(r.ok) << "cut at " << cut << ": " << r.error;
    std::size_t expect_records = 0;
    std::uint64_t expect_valid = header_end;
    for (std::size_t k = 0; k < frame_ends.size(); ++k) {
      if (cut >= frame_ends[k]) {
        ++expect_records;
        expect_valid = frame_ends[k];
      }
    }
    EXPECT_EQ(r.records.size(), expect_records) << "cut at " << cut;
    EXPECT_EQ(r.valid_bytes, expect_valid) << "cut at " << cut;
    EXPECT_EQ(r.torn_bytes, cut - expect_valid) << "cut at " << cut;
    for (std::size_t k = 0; k < r.records.size(); ++k) {
      ExpectRecordsEqual(MakeRecord(k), r.records[k]);
    }
  }
  fs::remove(path);
}

TEST(JournalRead, CorruptedMidFileByteEndsValidPrefix) {
  JournalHeader header;
  header.num_tasks = 2;
  std::string bytes = FramePayload(EncodeHeaderPayload(header));
  bytes += FramePayload(EncodeTaskPayload(MakeRecord(0)));
  const std::size_t first_end = bytes.size();
  bytes += FramePayload(EncodeTaskPayload(MakeRecord(1)));
  // Flip one payload byte inside the second task frame: checksum must catch
  // it, keeping record 0 and discarding the rest as torn.
  bytes[first_end + 20] = static_cast<char>(bytes[first_end + 20] ^ 0x41);

  const std::string path = TempPath("wolt_journal_corrupt.wal");
  Dump(path, bytes);
  const JournalReadResult r = ReadJournal(path);
  ASSERT_TRUE(r.ok) << r.error;
  ASSERT_EQ(r.records.size(), 1u);
  ExpectRecordsEqual(MakeRecord(0), r.records[0]);
  EXPECT_EQ(r.valid_bytes, first_end);
  EXPECT_EQ(r.torn_bytes, bytes.size() - first_end);
  fs::remove(path);
}

TEST(JournalRead, DuplicateIndicesDedupeFirstWins) {
  JournalHeader header;
  header.num_tasks = 2;
  TaskRecord first = MakeRecord(1);
  first.aggregate_mbps = 111.0;
  TaskRecord second = MakeRecord(1);
  second.aggregate_mbps = 222.0;
  std::string bytes = FramePayload(EncodeHeaderPayload(header));
  bytes += FramePayload(EncodeTaskPayload(first));
  bytes += FramePayload(EncodeTaskPayload(second));
  bytes += FramePayload(EncodeTaskPayload(MakeRecord(0)));

  const std::string path = TempPath("wolt_journal_dup.wal");
  Dump(path, bytes);
  const JournalReadResult r = ReadJournal(path);
  ASSERT_TRUE(r.ok) << r.error;
  ASSERT_EQ(r.records.size(), 2u);
  EXPECT_EQ(r.duplicates, 1u);
  EXPECT_EQ(r.records[0].index, 1u);
  EXPECT_EQ(r.records[0].aggregate_mbps, 111.0);  // first record won
  EXPECT_EQ(r.records[1].index, 0u);
  fs::remove(path);
}

TEST(JournalWriter, WriteReadRoundTripAndResume) {
  const std::string path = TempPath("wolt_journal_rt.wal");
  JournalHeader header;
  header.fingerprint = 99;
  header.num_tasks = 10;
  {
    JournalWriter w(path, header, {});
    ASSERT_TRUE(w.ok());
    for (std::uint64_t i = 0; i < 4; ++i) w.Append(MakeRecord(i));
    w.Close();
  }
  // Simulate a crash that tore the 5th record mid-frame.
  std::string bytes = Slurp(path);
  const std::string frame = FramePayload(EncodeTaskPayload(MakeRecord(4)));
  Dump(path, bytes + frame.substr(0, frame.size() / 2));

  JournalReadResult existing = ReadJournal(path);
  ASSERT_TRUE(existing.ok) << existing.error;
  EXPECT_EQ(existing.records.size(), 4u);
  EXPECT_GT(existing.torn_bytes, 0u);
  EXPECT_EQ(existing.header.fingerprint, 99u);

  {
    // Resume: the torn tail is truncated away, new appends follow cleanly.
    JournalWriter w(path, existing, {});
    ASSERT_TRUE(w.ok());
    w.Append(MakeRecord(4));
    w.Append(MakeRecord(2));  // duplicate of a restored record: dropped
    w.Close();
  }
  const JournalReadResult final_read = ReadJournal(path);
  ASSERT_TRUE(final_read.ok) << final_read.error;
  ASSERT_EQ(final_read.records.size(), 5u);
  EXPECT_EQ(final_read.torn_bytes, 0u);
  EXPECT_EQ(final_read.duplicates, 0u);  // writer-side dedup kept it clean
  for (std::uint64_t i = 0; i < 5; ++i) {
    ExpectRecordsEqual(MakeRecord(i), final_read.records[i]);
  }
  fs::remove(path);
}

TEST(JournalWriter, CompactionDedupesAndBoundsGrowth) {
  const std::string path = TempPath("wolt_journal_compact.wal");
  JournalHeader header;
  header.num_tasks = 4;
  JournalWriter::Options opts;
  opts.compact_every = 4;
  std::size_t appends_seen = 0;
  opts.after_append = [&](std::size_t n) { appends_seen = n; };
  {
    JournalWriter w(path, header, opts);
    ASSERT_TRUE(w.ok());
    // 8 appends of the same 4 records; each duplicate is dropped before it
    // hits the file, and compaction rewrites the rest canonically.
    for (int round = 0; round < 2; ++round) {
      for (std::uint64_t i = 0; i < 4; ++i) w.Append(MakeRecord(i));
    }
    w.Close();
  }
  EXPECT_EQ(appends_seen, 4u);  // duplicates never count as appends
  const JournalReadResult r = ReadJournal(path);
  ASSERT_TRUE(r.ok) << r.error;
  ASSERT_EQ(r.records.size(), 4u);
  EXPECT_EQ(r.duplicates, 0u);
  const std::uint64_t compact_size = fs::file_size(path);
  // A journal with the same 4 unique records written once is the floor.
  std::string canonical = FramePayload(EncodeHeaderPayload(header));
  for (std::uint64_t i = 0; i < 4; ++i) {
    canonical += FramePayload(EncodeTaskPayload(MakeRecord(i)));
  }
  EXPECT_EQ(compact_size, canonical.size());
  fs::remove(path);
}

TEST(JournalWriter, FreshWriterTruncatesPreexistingFile) {
  const std::string path = TempPath("wolt_journal_fresh.wal");
  Dump(path, "garbage from a previous life");
  JournalHeader header;
  header.num_tasks = 1;
  {
    JournalWriter w(path, header, {});
    ASSERT_TRUE(w.ok());
    w.Append(MakeRecord(0));
    w.Close();
  }
  const JournalReadResult r = ReadJournal(path);
  ASSERT_TRUE(r.ok) << r.error;
  EXPECT_EQ(r.records.size(), 1u);
  EXPECT_EQ(r.torn_bytes, 0u);
  fs::remove(path);
}

TEST(Fnv1a, MatchesReferenceVectors) {
  // Published FNV-1a 64 test vectors.
  EXPECT_EQ(Fnv1a64("", 0), 0xcbf29ce484222325ULL);
  EXPECT_EQ(Fnv1a64("a", 1), 0xaf63dc4c8601ec8cULL);
  EXPECT_EQ(Fnv1a64("foobar", 6), 0x85944171f73967e8ULL);
}

}  // namespace
}  // namespace wolt::recover
