// Chaos soak of the fleet runtime — the acceptance gate of the fault-
// isolation work: many seeds, a large shard count, a chaos window (wire
// corruption, PLC crashes, client churn) and forcibly wedged shards that
// must crash-loop into the circuit breaker. Every seed must end with all
// four fleet invariants intact:
//   * isolation    — no shard ever held a foreign building's user id
//   * accounting   — enqueued == delivered + shed + discarded + depth
//   * degraded-hold — circuit-broken shards never moved a client off its
//                     last-good extender
//   * supervision  — the wedged shards actually restarted, broke, and were
//                    probed, while healthy shards never restarted
#include <gtest/gtest.h>

#include <cstdint>
#include <set>
#include <string>

#include "fleet/runtime.h"
#include "fleet/shard.h"
#include "fleet/supervisor.h"
#include "util/rng.h"

namespace wolt::fleet {
namespace {

#if defined(__SANITIZE_ADDRESS__) || defined(__SANITIZE_THREAD__)
constexpr int kSeeds = 8;          // instrumented shards are ~20x slower
constexpr std::size_t kShards = 64;
#else
constexpr int kSeeds = 50;
constexpr std::size_t kShards = 256;
#endif
constexpr std::uint64_t kRounds = 10;

FleetParams SoakParams() {
  FleetParams p;
  p.num_shards = kShards;
  p.rounds = kRounds;
  p.threads = 8;

  // Overloaded on purpose: the fleet's round traffic is ~8 messages per
  // shard (capacity probes + scans) plus acks, so a capacity of 6/shard
  // forces sustained shedding.
  p.queue_capacity = kShards * 6;
  p.batch_per_shard = 8;

  // Chaos window: wire corruption/loss/duplication, PLC backhaul crashes
  // and client departures on rounds [2, 8).
  p.chaos_from = 2;
  p.chaos_to = 8;
  fault::WireFaults w;
  w.loss = 0.05;
  w.duplicate = 0.05;
  w.corrupt = 0.15;
  p.shard.wire = fault::FaultPlaneParams::Uniform(w);
  p.shard.plc_crash_prob = 0.1;
  p.shard.plc_down_rounds = 2;
  p.shard.departure_prob = 0.08;
  p.shard.rejoin_after = 2;
  // High enough that background corruption (~2 mangled messages per shard
  // per chaos round) cannot trip a decode storm; the soak wants restarts to
  // come only from the deliberately wedged shards so it can assert the
  // failure never spread.
  p.shard.decode_storm_threshold = 6;

  // Two forced crash-loop shards, wedged permanently from round 2. With
  // threshold 2 / backoff 1 they restart once at round 3 and trip the
  // breaker the same round; probe_after 5 grants a (failing) probation
  // round at round 8, re-parking them — the full supervision cycle inside
  // ten rounds.
  p.poison_shards = {7, kShards - 3};
  p.poison_from = 2;
  p.poison_to = ~std::uint64_t{0};
  p.supervisor.storm_tolerance = 1;
  p.supervisor.backoff_initial = 1;
  p.supervisor.crash_loop_threshold = 2;
  p.supervisor.crash_loop_window = 8;
  p.supervisor.probe_after = 5;

  // Tight virtual reopt budget: the scheduler must walk the degradation
  // ladder every round instead of running every shard at kFull. Off a
  // multiple of the kFull cost so the remainder lands on a cheaper tier.
  p.reopt_units_per_round = kShards + 2;
  return p;
}

TEST(FleetSoak, ChaosSoakHoldsAllInvariantsAcrossSeeds) {
  const FleetParams params = SoakParams();
  const std::set<std::uint32_t> poisoned(params.poison_shards.begin(),
                                         params.poison_shards.end());
  util::Rng seed_gen(0x50AC0ULL);

  for (int i = 0; i < kSeeds; ++i) {
    const std::uint64_t seed = seed_gen.Next();
    SCOPED_TRACE("seed=" + std::to_string(seed));

    FleetRuntime fleet(params, seed);
    const FleetResult result = fleet.Run();
    ASSERT_TRUE(result.completed) << result.error;

    // The four soak invariants.
    EXPECT_TRUE(result.isolation_ok);
    EXPECT_TRUE(result.accounting_ok);
    EXPECT_TRUE(result.degraded_held_ok);
    ASSERT_EQ(result.shard_records.size(), kShards * kRounds);

    // The wedged shards crash-looped into the breaker and were probed.
    for (const std::uint32_t s : poisoned) {
      EXPECT_GE(fleet.supervisor().Restarts(s), 1u) << "shard " << s;
      EXPECT_GE(fleet.supervisor().CircuitBreaks(s), 1u) << "shard " << s;
      EXPECT_GE(fleet.supervisor().Probes(s), 1u) << "shard " << s;
      // A permanently wedged shard must end parked (or mid-probe), never
      // back in healthy rotation.
      EXPECT_NE(fleet.supervisor().state(s), ShardState::kHealthy)
          << "shard " << s;
    }

    // The wedge never spread: every restart and break in the whole run
    // belongs to a poisoned shard.
    std::uint64_t poisoned_restarts = 0, poisoned_breaks = 0;
    for (const std::uint32_t s : poisoned) {
      poisoned_restarts += fleet.supervisor().Restarts(s);
      poisoned_breaks += fleet.supervisor().CircuitBreaks(s);
    }
    EXPECT_EQ(result.restarts, poisoned_restarts);
    EXPECT_EQ(result.circuit_breaks, poisoned_breaks);

    // Overload was real and the per-class shed counters account for every
    // shed message.
    EXPECT_GT(result.queue.shed, 0u);
    std::uint64_t by_class = 0;
    for (int c = 0; c < fault::kNumMessageClasses; ++c) {
      by_class += result.queue.shed_by_class[c];
    }
    EXPECT_EQ(by_class, result.queue.shed);

    // Parked shards processed nothing while degraded; their lanes were
    // discarded, not silently dropped.
    for (const recover::ShardRoundRecord& r : result.shard_records) {
      if (r.state == static_cast<std::uint8_t>(ShardState::kDegraded)) {
        EXPECT_EQ(r.processed, 0u)
            << "shard " << r.shard << " round " << r.round;
      }
      if (poisoned.count(r.shard) == 0) {
        EXPECT_EQ(r.restarted, 0u)
            << "healthy shard " << r.shard << " restarted";
      }
    }

    // The degradation ladder was exercised: with a budget of one unit per
    // shard, not everyone can get a full solve.
    bool saw_non_full_tier = false;
    for (const recover::ShardRoundRecord& r : result.shard_records) {
      if (r.tier > 0) saw_non_full_tier = true;
    }
    EXPECT_TRUE(saw_non_full_tier);
  }
}

}  // namespace
}  // namespace wolt::fleet
