// Failure injection: PLC links dying mid-run (tripped breakers, unplugged
// extenders) and how the model, the policies and the controller react.
#include <gtest/gtest.h>

#include <memory>

#include "core/controller.h"
#include "core/greedy.h"
#include "core/wolt.h"
#include "model/evaluator.h"
#include "sim/scenario.h"
#include "testbed/lab.h"
#include "util/rng.h"

namespace wolt {
namespace {

TEST(FailureTest, DeadBackhaulDeliversZeroWithoutPoisoningOthers) {
  model::Network net = testbed::CaseStudyNetwork();
  model::Assignment a(2);
  a.Assign(0, 1);
  a.Assign(1, 0);  // the optimal 10 + 30 split
  net.SetPlcRate(1, 0.0);  // extender 2's power line dies
  const model::EvalResult r = model::Evaluator().Evaluate(net, a);
  // User 0 (on the dead extender) starves...
  EXPECT_DOUBLE_EQ(r.user_throughput_mbps[0], 0.0);
  EXPECT_EQ(r.extenders[1].bottleneck, model::Bottleneck::kPlc);
  // ...but the dead extender stops consuming airtime, so user 1 now gets
  // the full 40 its WiFi supports (not just 30).
  EXPECT_NEAR(r.user_throughput_mbps[1], 40.0, 1e-9);
  EXPECT_NEAR(r.aggregate_mbps, 40.0, 1e-9);
}

TEST(FailureTest, DeadBackhaulWithDemandsAlsoSafe) {
  model::Network net = testbed::CaseStudyNetwork();
  net.SetUserDemand(1, 5.0);
  model::Assignment a(2);
  a.Assign(0, 1);
  a.Assign(1, 1);  // both users on extender 2
  net.SetPlcRate(1, 0.0);
  const model::EvalResult r = model::Evaluator().Evaluate(net, a);
  EXPECT_DOUBLE_EQ(r.aggregate_mbps, 0.0);
  EXPECT_DOUBLE_EQ(r.user_throughput_mbps[0], 0.0);
  EXPECT_DOUBLE_EQ(r.user_throughput_mbps[1], 0.0);
}

TEST(FailureTest, WoltAvoidsDeadExtenders) {
  model::Network net = testbed::CaseStudyNetwork();
  net.SetPlcRate(0, 0.0);  // the strong extender dies before association
  core::WoltPolicy wolt;
  const model::Assignment a = wolt.AssociateFresh(net);
  EXPECT_EQ(a.ExtenderOf(0), 1);
  EXPECT_EQ(a.ExtenderOf(1), 1);
  const double agg = model::Evaluator().AggregateThroughput(net, a);
  // Both users share extender 2: min(WiFi 2/(1/10+1/20)=13.3, PLC 20).
  EXPECT_NEAR(agg, 2.0 / (1.0 / 10.0 + 1.0 / 20.0), 1e-9);
}

TEST(FailureTest, DeadBackhaulSafeUnderAllPlcSharingModes) {
  // The dead extender must starve its users — and only its users — under
  // every PLC airtime-sharing model, not just the physical default.
  model::Network net = testbed::CaseStudyNetwork();
  model::Assignment a(2);
  a.Assign(0, 1);  // user 0 on the (soon dead) extender 2
  a.Assign(1, 0);
  net.SetPlcRate(1, 0.0);

  // kMaxMinActive / kEqualActive: the dead cell advertises zero demand, so
  // the survivor owns the whole airtime: min(WiFi 40, PLC 60) = 40.
  for (const auto mode :
       {model::PlcSharing::kMaxMinActive, model::PlcSharing::kEqualActive}) {
    model::EvalOptions opt;
    opt.plc_sharing = mode;
    const model::EvalResult r = model::Evaluator(opt).Evaluate(net, a);
    EXPECT_DOUBLE_EQ(r.user_throughput_mbps[0], 0.0) << ToString(mode);
    EXPECT_EQ(r.extenders[1].bottleneck, model::Bottleneck::kPlc);
    EXPECT_NEAR(r.user_throughput_mbps[1], 40.0, 1e-9) << ToString(mode);
    EXPECT_NEAR(r.aggregate_mbps, 40.0, 1e-9) << ToString(mode);
  }

  // kEqualAll: the planning model reserves 1/|A| airtime for every
  // extender, dead or not — the survivor is throttled to 60/2 = 30.
  {
    model::EvalOptions opt;
    opt.plc_sharing = model::PlcSharing::kEqualAll;
    const model::EvalResult r = model::Evaluator(opt).Evaluate(net, a);
    EXPECT_DOUBLE_EQ(r.user_throughput_mbps[0], 0.0);
    EXPECT_NEAR(r.user_throughput_mbps[1], 30.0, 1e-9);
    EXPECT_NEAR(r.aggregate_mbps, 30.0, 1e-9);
  }
}

TEST(FailureTest, DeadCellStillContendsOnSharedWifiChannel) {
  // A client camped on a dead-backhaul extender keeps transmitting on the
  // WiFi side: when both cells share a channel it still eats airtime even
  // though its backhaul delivers nothing. Evacuating the dead cell frees
  // the channel.
  model::Network net = testbed::CaseStudyNetwork();
  model::EvalOptions opt;
  opt.wifi_contention_domain = {0, 0};  // co-channel cells
  const model::Evaluator eval(opt);

  model::Assignment camped(2);
  camped.Assign(0, 1);
  camped.Assign(1, 0);
  net.SetPlcRate(1, 0.0);
  const model::EvalResult r = eval.Evaluate(net, camped);
  EXPECT_DOUBLE_EQ(r.user_throughput_mbps[0], 0.0);
  // Survivor's cell halves: min(40/2, 60) = 20.
  EXPECT_NEAR(r.user_throughput_mbps[1], 20.0, 1e-9);
  EXPECT_NEAR(r.aggregate_mbps, 20.0, 1e-9);

  // Once the ghost user leaves the dead cell, the survivor gets the full
  // channel back.
  model::Assignment evacuated(2);
  evacuated.Assign(1, 0);  // user 0 unassigned
  EXPECT_NEAR(eval.Evaluate(net, evacuated).aggregate_mbps, 40.0, 1e-9);
}

TEST(FailureTest, ControllerEvacuatesAfterCapacityLoss) {
  core::CentralController cc(2, std::make_unique<core::WoltPolicy>());
  cc.HandleCapacityReport({0, 60.0});
  cc.HandleCapacityReport({1, 20.0});
  cc.HandleUserArrival({101, {15.0, 10.0}, {}, {}});
  cc.HandleUserArrival({102, {40.0, 20.0}, {}, {}});
  ASSERT_NEAR(cc.CurrentAggregate(), 40.0, 1e-9);

  // Extender 1's power line dies; the next probe reports 0.
  cc.HandleCapacityReport({0, 0.0});
  const auto directives = cc.Reoptimize();
  EXPECT_FALSE(directives.empty());
  EXPECT_EQ(cc.ExtenderOf(101), 1);
  EXPECT_EQ(cc.ExtenderOf(102), 1);
  EXPECT_GT(cc.CurrentAggregate(), 10.0);
}

TEST(FailureTest, ReassociationRecoversMostThroughputAtScale) {
  sim::ScenarioParams p;
  p.num_extenders = 10;
  p.num_users = 24;
  const sim::ScenarioGenerator gen(p);
  util::Rng rng(99);
  model::Network net = gen.Generate(rng);
  core::WoltOptions so;
  so.subset_search = true;
  core::WoltPolicy wolt(so);
  const model::Assignment before = wolt.AssociateFresh(net);
  const double healthy =
      model::Evaluator().AggregateThroughput(net, before);

  // Kill the busiest extender.
  const auto load = before.LoadVector(net.NumExtenders());
  std::size_t busiest = 0;
  for (std::size_t j = 1; j < net.NumExtenders(); ++j) {
    if (load[j] > load[busiest]) busiest = j;
  }
  net.SetPlcRate(busiest, 0.0);
  const double degraded =
      model::Evaluator().AggregateThroughput(net, before);

  // Re-associating recovers throughput lost to the stranded users.
  const model::Assignment after = wolt.Associate(net, before);
  const double recovered =
      model::Evaluator().AggregateThroughput(net, after);
  EXPECT_GE(recovered, degraded - 1e-9);
  EXPECT_GT(recovered, 0.7 * healthy);
  // Nobody remains on the dead extender.
  EXPECT_TRUE(after.UsersOf(busiest).empty());
}

TEST(FailureTest, GreedyStrandsUsersButWoltDoesNot) {
  // Greedy never re-assigns: users on a failed extender stay stranded
  // until they leave. WOLT's epoch re-optimization moves them.
  model::Network net = testbed::CaseStudyNetwork();
  core::GreedyPolicy greedy;
  const model::Assignment before = greedy.AssociateFresh(net);
  net.SetPlcRate(1, 0.0);  // user 1 (on extender 2 under greedy) stranded
  const model::Assignment after = greedy.Associate(net, before);
  EXPECT_EQ(after, before);  // greedy does nothing
  const model::EvalResult r = model::Evaluator().Evaluate(net, after);
  EXPECT_DOUBLE_EQ(r.user_throughput_mbps[1], 0.0);

  core::WoltPolicy wolt;
  const model::Assignment rescued = wolt.Associate(net, before);
  const model::EvalResult r2 = model::Evaluator().Evaluate(net, rescued);
  EXPECT_GT(r2.user_throughput_mbps[1], 0.0);
}

}  // namespace
}  // namespace wolt
