// The anytime control plane: cooperative deadline tokens, the controller's
// degradation ladder, and the flap quarantine.
//
// Contracts under test:
//  * a null or generous deadline leaves every solver and the budgeted
//    Reoptimize bit-identical to the unbudgeted path;
//  * a born-expired budget always yields a valid assignment served by the
//    hold-last-good tier, with the obs counters recording the tier;
//  * a deadline-truncated Hungarian solve is a consistent partial matching;
//  * a flapping backhaul is quarantined after the threshold and released
//    after the hold, restoring the last reported capacity.
#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "assign/hungarian.h"
#include "core/controller.h"
#include "core/greedy.h"
#include "core/wolt.h"
#include "obs/metrics.h"
#include "obs/obs.h"
#include "util/deadline.h"
#include "util/rng.h"

namespace wolt::core {
namespace {

constexpr std::size_t kExtenders = 4;

// Deterministic controller with `num_users` arrived users and live
// backhauls. Rates are seeded so every run builds the identical state.
std::unique_ptr<CentralController> MakeController(
    std::size_t num_users, QuarantineParams quarantine = {}) {
  auto cc = std::make_unique<CentralController>(
      kExtenders, std::make_unique<WoltPolicy>(), RetryParams{}, quarantine);
  const double caps[kExtenders] = {120.0, 90.0, 60.0, 45.0};
  for (std::size_t j = 0; j < kExtenders; ++j) {
    EXPECT_EQ(cc->HandleCapacityReport({static_cast<int>(j), caps[j]}),
              HandleStatus::kOk);
  }
  util::Rng rng(4242);
  for (std::size_t u = 0; u < num_users; ++u) {
    ScanReport scan;
    scan.user_id = static_cast<std::int64_t>(100 + u);
    for (std::size_t j = 0; j < kExtenders; ++j) {
      scan.rates_mbps.push_back(rng.Uniform(20.0, 120.0));
    }
    EXPECT_TRUE(cc->HandleUserArrival(scan).ok());
  }
  return cc;
}

void ExpectSameAssignment(const CentralController& a,
                          const CentralController& b) {
  ASSERT_EQ(a.NumUsers(), b.NumUsers());
  for (std::size_t i = 0; i < a.NumUsers(); ++i) {
    EXPECT_EQ(a.assignment().ExtenderOf(i), b.assignment().ExtenderOf(i))
        << "user index " << i;
  }
}

std::uint64_t CounterValue(const obs::MetricsSnapshot& snap,
                           const std::string& name) {
  for (const auto& c : snap.counters) {
    if (c.name == name) return c.value;
  }
  return 0;
}

// Every assigned user must actually hear its extender and the extender's
// backhaul must be believed live — the "always valid" half of the anytime
// contract.
void ExpectValidAssignment(const CentralController& cc) {
  const model::Network& net = cc.network();
  for (std::size_t i = 0; i < cc.NumUsers(); ++i) {
    const int j = cc.assignment().ExtenderOf(i);
    if (j == model::Assignment::kUnassigned) continue;
    EXPECT_GT(net.WifiRate(i, static_cast<std::size_t>(j)), 0.0)
        << "user " << i << " assigned to an unreachable extender";
  }
}

TEST(DeadlineToken, BasicSemantics) {
  const util::Deadline unlimited;
  EXPECT_FALSE(unlimited.Expired());
  EXPECT_FALSE(util::DeadlineExpired(nullptr));
  const util::Deadline born_dead = util::Deadline::After(0.0);
  EXPECT_TRUE(born_dead.Expired());
  EXPECT_TRUE(born_dead.Expired());  // sticky
  const util::Deadline negative = util::Deadline::After(-5.0);
  EXPECT_TRUE(negative.Expired());
  const util::Deadline generous = util::Deadline::After(3600.0);
  EXPECT_FALSE(generous.Expired());
}

TEST(DeadlineHungarian, BornExpiredLeavesEveryRowUnmatched) {
  assign::Matrix utilities(3, 4, 0.0);
  for (std::size_t r = 0; r < 3; ++r) {
    for (std::size_t c = 0; c < 4; ++c) {
      utilities(r, c) = static_cast<double>(1 + r * 4 + c);
    }
  }
  const util::Deadline dead = util::Deadline::After(0.0);
  const assign::HungarianResult result =
      assign::SolveAssignmentMax(utilities, &dead);
  EXPECT_TRUE(result.deadline_hit);
  EXPECT_EQ(result.total_utility, 0.0);
  for (int c : result.col_of_row) EXPECT_EQ(c, -1);
}

TEST(DeadlineHungarian, UnexpiredDeadlineIsBitIdentical) {
  util::Rng rng(7);
  assign::Matrix utilities(6, 9, 0.0);
  for (std::size_t r = 0; r < 6; ++r) {
    for (std::size_t c = 0; c < 9; ++c) {
      utilities(r, c) = rng.Uniform(0.0, 50.0);
    }
  }
  const util::Deadline generous = util::Deadline::After(3600.0);
  const assign::HungarianResult with =
      assign::SolveAssignmentMax(utilities, &generous);
  const assign::HungarianResult without =
      assign::SolveAssignmentMax(utilities, nullptr);
  EXPECT_FALSE(with.deadline_hit);
  EXPECT_EQ(with.col_of_row, without.col_of_row);
  EXPECT_EQ(with.total_utility, without.total_utility);
}

TEST(DeadlineGreedy, BornExpiredPlacesNobodyButStaysValid) {
  GreedyPolicy greedy;
  const util::Deadline dead = util::Deadline::After(0.0);
  greedy.SetDeadline(&dead);
  model::Network net(3, 2);
  for (std::size_t i = 0; i < 3; ++i) {
    net.SetWifiRate(i, 0, 50.0);
    net.SetWifiRate(i, 1, 40.0);
  }
  net.SetPlcRate(0, 100.0);
  net.SetPlcRate(1, 100.0);
  const model::Assignment out = greedy.AssociateFresh(net);
  for (std::size_t i = 0; i < 3; ++i) EXPECT_FALSE(out.IsAssigned(i));
}

TEST(AnytimeReopt, GenerousBudgetMatchesUnbudgetedReoptimize) {
  auto budgeted = MakeController(10);
  auto plain = MakeController(10);
  // Perturb both identically so reoptimization has real work: kill the
  // strongest backhaul.
  EXPECT_EQ(budgeted->HandleCapacityReport({0, 0.0}), HandleStatus::kOk);
  EXPECT_EQ(plain->HandleCapacityReport({0, 0.0}), HandleStatus::kOk);

  const std::vector<AssociationDirective> want = plain->Reoptimize();
  const ReoptReport got = budgeted->Reoptimize(/*budget_seconds=*/3600.0);

  EXPECT_EQ(got.tier, ReoptTier::kFull);
  EXPECT_FALSE(got.budget_limited);
  ASSERT_EQ(got.directives.size(), want.size());
  for (std::size_t k = 0; k < want.size(); ++k) {
    EXPECT_EQ(got.directives[k].user_id, want[k].user_id);
    EXPECT_EQ(got.directives[k].extender, want[k].extender);
  }
  ExpectSameAssignment(*budgeted, *plain);
}

TEST(AnytimeReopt, ZeroBudgetHoldsLastGoodAndStaysValid) {
  auto cc = MakeController(8);
  const model::Assignment before = cc->assignment();

  const ReoptReport report = cc->Reoptimize(/*budget_seconds=*/0.0);
  EXPECT_EQ(report.tier, ReoptTier::kHoldLastGood);
  EXPECT_TRUE(report.budget_limited);
  // Healthy backhauls: hold-last-good means literally nothing moves.
  EXPECT_TRUE(report.directives.empty());
  ExpectSameAssignment(*cc, *cc);
  for (std::size_t i = 0; i < cc->NumUsers(); ++i) {
    EXPECT_EQ(cc->assignment().ExtenderOf(i), before.ExtenderOf(i));
  }
  ExpectValidAssignment(*cc);
}

TEST(AnytimeReopt, ZeroBudgetEvacuatesDeadBackhaul) {
  auto cc = MakeController(8);
  EXPECT_EQ(cc->HandleCapacityReport({1, 0.0}), HandleStatus::kOk);
  const model::Assignment before = cc->assignment();

  const ReoptReport report = cc->Reoptimize(/*budget_seconds=*/0.0);
  EXPECT_EQ(report.tier, ReoptTier::kHoldLastGood);
  // Users who sat on extender 1 are evacuated (unassigned, no directive);
  // everyone else holds.
  for (std::size_t i = 0; i < cc->NumUsers(); ++i) {
    if (before.ExtenderOf(i) == 1) {
      EXPECT_FALSE(cc->assignment().IsAssigned(i)) << "user " << i;
    } else {
      EXPECT_EQ(cc->assignment().ExtenderOf(i), before.ExtenderOf(i));
    }
  }
  EXPECT_TRUE(report.directives.empty());
  ExpectValidAssignment(*cc);
}

TEST(AnytimeReopt, TinyBudgetAlwaysYieldsValidAssignment) {
  // 1 microsecond: whatever rung (if any) wins the race, the result must be
  // deployable (every assigned user hears its extender) and must score at
  // least the evacuation baseline — the do-no-harm floor. Run several
  // times: the serving tier may vary with scheduling, the validity must not.
  for (int round = 0; round < 20; ++round) {
    auto cc = MakeController(12);
    EXPECT_EQ(cc->HandleCapacityReport({0, 0.0}), HandleStatus::kOk);
    const double evacuation_floor = [&] {
      model::Assignment evac = cc->assignment();
      for (std::size_t i = 0; i < cc->NumUsers(); ++i) {
        if (evac.ExtenderOf(i) == 0) evac.Unassign(i);
      }
      return model::Evaluator().AggregateThroughput(cc->network(), evac);
    }();
    const ReoptReport report = cc->Reoptimize(/*budget_seconds=*/1e-6);
    (void)report;
    ExpectValidAssignment(*cc);
    EXPECT_GE(cc->CurrentAggregate() + 1e-6, evacuation_floor)
        << "round " << round;
  }
}

TEST(AnytimeReopt, ObsCountersRecordServingTier) {
  obs::MetricsRegistry registry;
  {
    obs::ScopedMetrics scoped(registry);
    auto cc = MakeController(6);
    cc->Reoptimize(/*budget_seconds=*/0.0);     // hold tier + overrun
    cc->Reoptimize(/*budget_seconds=*/3600.0);  // full tier
  }
  const obs::MetricsSnapshot snap = registry.Snapshot();
  EXPECT_EQ(CounterValue(snap, "ctrl.reopt.tier.hold"), 1u);
  EXPECT_EQ(CounterValue(snap, "ctrl.reopt.tier.full"), 1u);
  EXPECT_EQ(CounterValue(snap, "ctrl.reopt.budget_overruns"), 1u);
}

TEST(FlapQuarantine, DisabledByDefault) {
  auto cc = MakeController(4);
  for (int k = 0; k < 20; ++k) {
    EXPECT_EQ(cc->HandleCapacityReport({2, k % 2 ? 60.0 : 0.0}),
              HandleStatus::kOk);
  }
  EXPECT_FALSE(cc->IsQuarantined(2));
  EXPECT_EQ(cc->QuarantineTrips(), 0u);
}

TEST(FlapQuarantine, TripsOnThresholdAndReleasesAfterHold) {
  QuarantineParams q;
  q.flap_threshold = 3;
  q.window = 100.0;
  q.hold = 5.0;
  auto cc = MakeController(4, q);

  // Three up<->down transitions inside the window: down, up, down.
  cc->AdvanceTime(1.0);
  EXPECT_EQ(cc->HandleCapacityReport({2, 0.0}), HandleStatus::kOk);
  cc->AdvanceTime(2.0);
  EXPECT_EQ(cc->HandleCapacityReport({2, 60.0}), HandleStatus::kOk);
  EXPECT_FALSE(cc->IsQuarantined(2));
  cc->AdvanceTime(3.0);
  EXPECT_EQ(cc->HandleCapacityReport({2, 0.0}), HandleStatus::kOk);
  EXPECT_TRUE(cc->IsQuarantined(2));
  EXPECT_EQ(cc->QuarantineTrips(), 1u);
  // While quarantined the controller plans as if the link were down, even
  // when a (possibly transient) healthy report arrives.
  cc->AdvanceTime(4.0);
  EXPECT_EQ(cc->HandleCapacityReport({2, 75.0}), HandleStatus::kOk);
  EXPECT_EQ(cc->network().PlcRate(2), 0.0);
  EXPECT_TRUE(cc->IsQuarantined(2));

  // Flap-free for the hold: released, last reported capacity restored.
  cc->AdvanceTime(20.0);
  EXPECT_FALSE(cc->IsQuarantined(2));
  EXPECT_EQ(cc->QuarantineReleases(), 1u);
  EXPECT_EQ(cc->network().PlcRate(2), 75.0);
}

TEST(FlapQuarantine, FlappingDuringHoldExtendsQuarantine) {
  QuarantineParams q;
  q.flap_threshold = 2;
  q.window = 100.0;
  q.hold = 10.0;
  auto cc = MakeController(4, q);

  cc->AdvanceTime(1.0);
  EXPECT_EQ(cc->HandleCapacityReport({3, 0.0}), HandleStatus::kOk);
  cc->AdvanceTime(2.0);
  EXPECT_EQ(cc->HandleCapacityReport({3, 45.0}), HandleStatus::kOk);
  EXPECT_TRUE(cc->IsQuarantined(3));

  // A fresh flap at t=9 restarts the hold clock: still quarantined at t=13
  // (old release would have been t=12), released only at t=19+.
  cc->AdvanceTime(9.0);
  EXPECT_EQ(cc->HandleCapacityReport({3, 0.0}), HandleStatus::kOk);
  cc->AdvanceTime(13.0);
  EXPECT_TRUE(cc->IsQuarantined(3));
  cc->AdvanceTime(19.5);
  EXPECT_FALSE(cc->IsQuarantined(3));
}

TEST(FlapQuarantine, OutOfRangeExtenderIsNeverQuarantined) {
  auto cc = MakeController(2);
  EXPECT_FALSE(cc->IsQuarantined(-1));
  EXPECT_FALSE(cc->IsQuarantined(99));
}

TEST(ReoptTierNames, ToStringCoversAllTiers) {
  EXPECT_STREQ(ToString(ReoptTier::kFull), "full");
  EXPECT_STREQ(ToString(ReoptTier::kHungarianOnly), "hungarian-only");
  EXPECT_STREQ(ToString(ReoptTier::kGreedy), "greedy");
  EXPECT_STREQ(ToString(ReoptTier::kHoldLastGood), "hold-last-good");
}

TEST(FlapQuarantine, QuarantineHoldsAcrossEveryDegradationTier) {
  // A quarantined extender's capacity is pinned to zero for *planning*, and
  // that pin must survive every rung of the ladder — including the degraded
  // tiers a budget-starved (or fleet-scheduled) epoch runs at. If any tier
  // consulted the raw reported capacity instead of the quarantine view, a
  // flapping backhaul would reabsorb users exactly when the controller is
  // under the most pressure.
  for (const ReoptTier tier : {ReoptTier::kFull, ReoptTier::kHungarianOnly,
                               ReoptTier::kGreedy, ReoptTier::kHoldLastGood}) {
    QuarantineParams q;
    q.flap_threshold = 3;
    q.window = 100.0;
    q.hold = 50.0;
    auto cc = MakeController(6, q);

    // Trip the breaker on extender 2: down, up, down inside the window.
    cc->AdvanceTime(1.0);
    EXPECT_EQ(cc->HandleCapacityReport({2, 0.0}), HandleStatus::kOk);
    cc->AdvanceTime(2.0);
    EXPECT_EQ(cc->HandleCapacityReport({2, 60.0}), HandleStatus::kOk);
    cc->AdvanceTime(3.0);
    EXPECT_EQ(cc->HandleCapacityReport({2, 0.0}), HandleStatus::kOk);
    ASSERT_TRUE(cc->IsQuarantined(2)) << ToString(tier);
    // A healthy-looking report mid-quarantine must not lift the pin.
    cc->AdvanceTime(4.0);
    EXPECT_EQ(cc->HandleCapacityReport({2, 80.0}), HandleStatus::kOk);
    ASSERT_TRUE(cc->IsQuarantined(2)) << ToString(tier);

    cc->ReoptimizeAtTier(tier);

    EXPECT_EQ(cc->network().PlcRate(2), 0.0) << ToString(tier);
    ExpectValidAssignment(*cc);
    for (std::size_t i = 0; i < cc->NumUsers(); ++i) {
      EXPECT_NE(cc->assignment().ExtenderOf(i), 2)
          << "tier " << ToString(tier) << " parked user " << i
          << " on the quarantined extender";
    }
  }
}

}  // namespace
}  // namespace wolt::core
