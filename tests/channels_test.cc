#include "wifi/channels.h"

#include <gtest/gtest.h>

#include <set>
#include <stdexcept>

#include "model/evaluator.h"
#include "sim/scenario.h"
#include "util/rng.h"

namespace wolt::wifi {
namespace {

model::Network LineOfExtenders(std::size_t count, double spacing_m) {
  model::Network net(0, count);
  for (std::size_t j = 0; j < count; ++j) {
    net.SetExtenderPosition(j, {static_cast<double>(j) * spacing_m, 0.0});
    net.SetPlcRate(j, 100.0);
  }
  return net;
}

TEST(InterferenceEdgesTest, RangeCutoff) {
  const model::Network net = LineOfExtenders(3, 50.0);
  // 50 m apart: neighbours interfere at 60 m range, 0-2 (100 m apart) not.
  const auto edges = InterferenceEdges(net, 60.0);
  EXPECT_EQ(edges.size(), 2u);
  const auto none = InterferenceEdges(net, 10.0);
  EXPECT_TRUE(none.empty());
}

TEST(AssignChannelsTest, NeighboursGetDistinctChannels) {
  const model::Network net = LineOfExtenders(3, 50.0);
  const auto channels = AssignChannels(net, {3, 60.0});
  EXPECT_NE(channels[0], channels[1]);
  EXPECT_NE(channels[1], channels[2]);
  EXPECT_EQ(CountConflicts(net, channels, 60.0), 0u);
}

TEST(AssignChannelsTest, RejectsZeroChannels) {
  const model::Network net = LineOfExtenders(2, 10.0);
  EXPECT_THROW(AssignChannels(net, {0, 60.0}), std::invalid_argument);
}

TEST(AssignChannelsTest, ChannelsWithinRange) {
  util::Rng rng(3);
  sim::ScenarioParams p;
  p.num_users = 0;
  const model::Network net = sim::ScenarioGenerator(p).Generate(rng);
  const ChannelPlanParams params{3, 60.0};
  const auto channels = AssignChannels(net, params);
  for (int c : channels) {
    EXPECT_GE(c, 0);
    EXPECT_LT(c, 3);
  }
}

TEST(AssignChannelsTest, GracefulDegradationWhenChannelsExhausted) {
  // 5 mutually interfering extenders, 3 channels: colouring must still
  // return a valid plan (with some conflicts).
  const model::Network net = LineOfExtenders(5, 1.0);
  const auto channels = AssignChannels(net, {3, 60.0});
  EXPECT_EQ(channels.size(), 5u);
  // A clique of 5 with 3 colours has at least 2 monochromatic edges.
  EXPECT_GE(CountConflicts(net, channels, 60.0), 2u);
  // But far fewer than the same-channel plan's 10.
  EXPECT_LT(CountConflicts(net, channels, 60.0),
            CountConflicts(net, SameChannelPlan(net), 60.0));
}

TEST(AssignChannelsTest, BeatsRandomAndSameChannelOnEnterpriseFloor) {
  util::Rng rng(7);
  sim::ScenarioParams p;
  p.num_users = 0;
  const model::Network net = sim::ScenarioGenerator(p).Generate(rng);
  const auto planned = AssignChannels(net, {3, 60.0});
  const auto same = SameChannelPlan(net);
  std::vector<int> random(net.NumExtenders());
  for (auto& c : random) c = rng.UniformInt(0, 2);
  EXPECT_LT(CountConflicts(net, planned, 60.0),
            CountConflicts(net, same, 60.0));
  EXPECT_LE(CountConflicts(net, planned, 60.0),
            CountConflicts(net, random, 60.0));
}

TEST(ContentionDomainsTest, SameChannelNeighboursShareDomain) {
  const model::Network net = LineOfExtenders(4, 50.0);
  // Channels: 0,0,1,1 -> domains {0,1} merged, {2,3} merged.
  const std::vector<int> channels = {0, 0, 1, 1};
  const auto domains = ContentionDomains(net, channels, 60.0);
  EXPECT_EQ(domains[0], domains[1]);
  EXPECT_EQ(domains[2], domains[3]);
  EXPECT_NE(domains[0], domains[2]);
}

TEST(ContentionDomainsTest, DistinctChannelsAreSingletons) {
  const model::Network net = LineOfExtenders(3, 10.0);
  const std::vector<int> channels = {0, 1, 2};
  const auto domains = ContentionDomains(net, channels, 60.0);
  std::set<int> unique(domains.begin(), domains.end());
  EXPECT_EQ(unique.size(), 3u);
}

TEST(ContentionDomainsTest, SizeMismatchThrows) {
  const model::Network net = LineOfExtenders(3, 10.0);
  EXPECT_THROW(ContentionDomains(net, {0, 1}, 60.0), std::invalid_argument);
  EXPECT_THROW(CountConflicts(net, {0}, 60.0), std::invalid_argument);
}

// Evaluator integration: co-channel cells time-share the WiFi air.
TEST(CoChannelEvaluatorTest, SharedDomainHalvesWifiThroughput) {
  model::Network net(2, 2);
  net.SetPlcRate(0, 1000.0);
  net.SetPlcRate(1, 1000.0);
  net.SetWifiRate(0, 0, 40.0);
  net.SetWifiRate(1, 1, 40.0);
  model::Assignment a(2);
  a.Assign(0, 0);
  a.Assign(1, 1);

  model::EvalOptions separate;  // default: own channel each
  const double free_air =
      model::Evaluator(separate).AggregateThroughput(net, a);
  EXPECT_NEAR(free_air, 80.0, 1e-9);

  model::EvalOptions shared;
  shared.wifi_contention_domain = {0, 0};  // same channel, in range
  const double contended =
      model::Evaluator(shared).AggregateThroughput(net, a);
  EXPECT_NEAR(contended, 40.0, 1e-9);  // each cell halved
}

TEST(CoChannelEvaluatorTest, IdleCellsDoNotContend) {
  model::Network net(1, 2);
  net.SetPlcRate(0, 1000.0);
  net.SetPlcRate(1, 1000.0);
  net.SetWifiRate(0, 0, 40.0);
  model::Assignment a(1);
  a.Assign(0, 0);
  model::EvalOptions shared;
  shared.wifi_contention_domain = {0, 0};
  // Extender 1 has no users: extender 0 keeps the full air.
  EXPECT_NEAR(model::Evaluator(shared).AggregateThroughput(net, a), 40.0,
              1e-9);
}

TEST(CoChannelEvaluatorTest, BadDomainVectorThrows) {
  model::Network net(1, 2);
  net.SetPlcRate(0, 100.0);
  net.SetWifiRate(0, 0, 10.0);
  model::Assignment a(1);
  a.Assign(0, 0);
  model::EvalOptions opts;
  opts.wifi_contention_domain = {0};  // wrong size
  EXPECT_THROW(model::Evaluator(opts).Evaluate(net, a),
               std::invalid_argument);
  opts.wifi_contention_domain = {-1, 0};
  EXPECT_THROW(model::Evaluator(opts).Evaluate(net, a),
               std::invalid_argument);
}

}  // namespace
}  // namespace wolt::wifi
