#include "util/stats.h"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "util/rng.h"

namespace wolt::util {
namespace {

TEST(StatsTest, MeanOfKnownValues) {
  const std::vector<double> xs = {1.0, 2.0, 3.0, 4.0};
  EXPECT_DOUBLE_EQ(Mean(xs), 2.5);
}

TEST(StatsTest, EmptyInputsAreZero) {
  const std::vector<double> xs;
  EXPECT_EQ(Mean(xs), 0.0);
  EXPECT_EQ(Variance(xs), 0.0);
  EXPECT_EQ(StdDev(xs), 0.0);
  EXPECT_EQ(Min(xs), 0.0);
  EXPECT_EQ(Max(xs), 0.0);
  EXPECT_EQ(Percentile(xs, 50.0), 0.0);
}

TEST(StatsTest, VarianceOfConstantIsZero) {
  const std::vector<double> xs = {5.0, 5.0, 5.0};
  EXPECT_DOUBLE_EQ(Variance(xs), 0.0);
}

TEST(StatsTest, VarianceKnownValue) {
  const std::vector<double> xs = {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0};
  EXPECT_DOUBLE_EQ(Variance(xs), 4.0);
  EXPECT_DOUBLE_EQ(StdDev(xs), 2.0);
}

TEST(StatsTest, MinMaxSum) {
  const std::vector<double> xs = {3.0, -1.0, 7.0, 2.0};
  EXPECT_DOUBLE_EQ(Min(xs), -1.0);
  EXPECT_DOUBLE_EQ(Max(xs), 7.0);
  EXPECT_DOUBLE_EQ(Sum(xs), 11.0);
}

TEST(StatsTest, MedianOddAndEven) {
  EXPECT_DOUBLE_EQ(Median(std::vector<double>{3.0, 1.0, 2.0}), 2.0);
  EXPECT_DOUBLE_EQ(Median(std::vector<double>{4.0, 1.0, 2.0, 3.0}), 2.5);
}

TEST(StatsTest, PercentileEndpointsAndInterpolation) {
  const std::vector<double> xs = {10.0, 20.0, 30.0, 40.0, 50.0};
  EXPECT_DOUBLE_EQ(Percentile(xs, 0.0), 10.0);
  EXPECT_DOUBLE_EQ(Percentile(xs, 100.0), 50.0);
  EXPECT_DOUBLE_EQ(Percentile(xs, 50.0), 30.0);
  EXPECT_DOUBLE_EQ(Percentile(xs, 25.0), 20.0);
  EXPECT_DOUBLE_EQ(Percentile(xs, 12.5), 15.0);
}

TEST(StatsTest, PercentileClampsOutOfRange) {
  const std::vector<double> xs = {1.0, 2.0};
  EXPECT_DOUBLE_EQ(Percentile(xs, -5.0), 1.0);
  EXPECT_DOUBLE_EQ(Percentile(xs, 200.0), 2.0);
}

TEST(JainTest, AllEqualIsOne) {
  const std::vector<double> xs = {4.0, 4.0, 4.0, 4.0};
  EXPECT_DOUBLE_EQ(JainFairnessIndex(xs), 1.0);
}

TEST(JainTest, SingleDominatorApproachesOneOverN) {
  const std::vector<double> xs = {100.0, 0.0, 0.0, 0.0};
  EXPECT_DOUBLE_EQ(JainFairnessIndex(xs), 0.25);
}

TEST(JainTest, KnownMixedValue) {
  // J([1,2,3]) = 36 / (3*14) = 6/7.
  const std::vector<double> xs = {1.0, 2.0, 3.0};
  EXPECT_NEAR(JainFairnessIndex(xs), 6.0 / 7.0, 1e-12);
}

TEST(JainTest, EmptyAndAllZeroAreVacuouslyFair) {
  EXPECT_DOUBLE_EQ(JainFairnessIndex(std::vector<double>{}), 1.0);
  EXPECT_DOUBLE_EQ(JainFairnessIndex(std::vector<double>{0.0, 0.0}), 1.0);
}

TEST(JainTest, ScaleInvariant) {
  const std::vector<double> xs = {1.0, 5.0, 9.0};
  std::vector<double> scaled;
  for (double x : xs) scaled.push_back(x * 37.0);
  EXPECT_NEAR(JainFairnessIndex(xs), JainFairnessIndex(scaled), 1e-12);
}

TEST(CdfTest, EmpiricalCdfIsSortedAndEndsAtOne) {
  const std::vector<double> xs = {5.0, 1.0, 3.0};
  const auto cdf = EmpiricalCdf(xs);
  ASSERT_EQ(cdf.size(), 3u);
  EXPECT_DOUBLE_EQ(cdf[0].value, 1.0);
  EXPECT_DOUBLE_EQ(cdf[2].value, 5.0);
  EXPECT_NEAR(cdf[0].cumulative_probability, 1.0 / 3.0, 1e-12);
  EXPECT_DOUBLE_EQ(cdf[2].cumulative_probability, 1.0);
}

TEST(CdfTest, CdfAtMatchesCounts) {
  const std::vector<double> xs = {1.0, 2.0, 3.0, 4.0};
  EXPECT_DOUBLE_EQ(CdfAt(xs, 0.5), 0.0);
  EXPECT_DOUBLE_EQ(CdfAt(xs, 2.0), 0.5);
  EXPECT_DOUBLE_EQ(CdfAt(xs, 10.0), 1.0);
}

TEST(RunningStatsTest, MatchesBatchComputation) {
  util::Rng rng(5);
  std::vector<double> xs;
  RunningStats rs;
  for (int i = 0; i < 5000; ++i) {
    const double x = rng.Normal(3.0, 2.0);
    xs.push_back(x);
    rs.Add(x);
  }
  EXPECT_EQ(rs.Count(), xs.size());
  EXPECT_NEAR(rs.Mean(), Mean(xs), 1e-9);
  EXPECT_NEAR(rs.Variance(), Variance(xs), 1e-6);
  EXPECT_DOUBLE_EQ(rs.Min(), Min(xs));
  EXPECT_DOUBLE_EQ(rs.Max(), Max(xs));
  EXPECT_NEAR(rs.Sum(), Sum(xs), 1e-6);
}

TEST(AccumulatorTest, MatchesBatchFunctions) {
  util::Rng rng(5150);
  std::vector<double> xs;
  Accumulator acc;
  for (int i = 0; i < 500; ++i) {
    const double x = rng.Uniform(-50.0, 150.0);
    xs.push_back(x);
    acc.Add(x);
  }
  EXPECT_EQ(acc.Count(), xs.size());
  EXPECT_NEAR(acc.Mean(), Mean(xs), 1e-9);
  EXPECT_NEAR(acc.Variance(), Variance(xs), 1e-6);
  EXPECT_DOUBLE_EQ(acc.Min(), Min(xs));
  EXPECT_DOUBLE_EQ(acc.Max(), Max(xs));
  EXPECT_NEAR(acc.Sum(), Sum(xs), 1e-9);
  EXPECT_NEAR(acc.Percentile(50.0), Percentile(xs, 50.0), 1e-12);
  EXPECT_NEAR(acc.Percentile(90.0), Percentile(xs, 90.0), 1e-12);
  EXPECT_EQ(acc.Samples(), xs);  // insertion order retained
}

TEST(AccumulatorTest, JainMatchesBatchAndConventions) {
  std::vector<double> xs = {4.0, 2.0, 4.0, 2.0};
  Accumulator acc;
  for (double x : xs) acc.Add(x);
  EXPECT_NEAR(acc.Jain(), JainFairnessIndex(xs), 1e-12);
  EXPECT_DOUBLE_EQ(Accumulator().Jain(), 1.0);  // empty: vacuously fair
  Accumulator zeros;
  zeros.Add(0.0);
  zeros.Add(0.0);
  EXPECT_DOUBLE_EQ(zeros.Jain(), 1.0);
}

TEST(AccumulatorTest, MergeEqualsSequentialWithinTolerance) {
  util::Rng rng(6174);
  Accumulator whole, left, right;
  for (int i = 0; i < 400; ++i) {
    const double x = rng.Uniform(0.0, 1000.0);
    whole.Add(x);
    (i < 250 ? left : right).Add(x);
  }
  Accumulator merged = left;
  merged.Merge(right);
  EXPECT_EQ(merged.Count(), whole.Count());
  EXPECT_NEAR(merged.Mean(), whole.Mean(), 1e-9);
  EXPECT_NEAR(merged.Variance(), whole.Variance(), 1e-6);
  EXPECT_DOUBLE_EQ(merged.Min(), whole.Min());
  EXPECT_DOUBLE_EQ(merged.Max(), whole.Max());
  EXPECT_EQ(merged.Samples(), whole.Samples());
}

TEST(AccumulatorTest, MergeInFixedOrderIsBitReproducible) {
  // The engine's contract: merging the SAME partials in the SAME order must
  // give bit-identical state no matter when or where the partials were
  // produced. (Different orders may differ in the last ulp — that is why
  // the engine fixes task-index order.)
  util::Rng rng(31337);
  std::vector<Accumulator> parts(8);
  for (int i = 0; i < 320; ++i) {
    parts[static_cast<std::size_t>(i) % parts.size()].Add(
        rng.Uniform(0.0, 10.0));
  }
  Accumulator a, b;
  for (const Accumulator& p : parts) a.Merge(p);
  for (const Accumulator& p : parts) b.Merge(p);
  EXPECT_EQ(a.Mean(), b.Mean());
  EXPECT_EQ(a.Variance(), b.Variance());
  EXPECT_EQ(a.Sum(), b.Sum());
  EXPECT_EQ(a.SumSquares(), b.SumSquares());
  EXPECT_EQ(a.Samples(), b.Samples());
}

TEST(AccumulatorTest, MergeWithEmptyIsIdentity) {
  Accumulator acc;
  acc.Add(3.0);
  acc.Add(5.0);
  const double mean = acc.Mean();
  const double var = acc.Variance();
  acc.Merge(Accumulator());  // no-op
  EXPECT_EQ(acc.Count(), 2u);
  EXPECT_EQ(acc.Mean(), mean);
  EXPECT_EQ(acc.Variance(), var);

  Accumulator empty;
  empty.Merge(acc);  // adopt
  EXPECT_EQ(empty.Count(), 2u);
  EXPECT_EQ(empty.Mean(), mean);
}

TEST(RunningStatsTest, EmptyIsZero) {
  RunningStats rs;
  EXPECT_EQ(rs.Count(), 0u);
  EXPECT_EQ(rs.Mean(), 0.0);
  EXPECT_EQ(rs.Variance(), 0.0);
}

// Property: for any sample, quantiles are monotone and pinned to min/max.
class PercentileMonotoneTest : public ::testing::TestWithParam<int> {};

TEST_P(PercentileMonotoneTest, QuantilesAreMonotone) {
  util::Rng rng(static_cast<std::uint64_t>(GetParam()));
  std::vector<double> xs;
  for (int i = 0; i < 200; ++i) xs.push_back(rng.Uniform(-50.0, 50.0));
  const double p0 = Percentile(xs, 0.0);
  const double p25 = Percentile(xs, 25.0);
  const double p50 = Percentile(xs, 50.0);
  const double p75 = Percentile(xs, 75.0);
  const double p100 = Percentile(xs, 100.0);
  EXPECT_LE(p0, p25);
  EXPECT_LE(p25, p50);
  EXPECT_LE(p50, p75);
  EXPECT_LE(p75, p100);
  EXPECT_DOUBLE_EQ(p0, Min(xs));
  EXPECT_DOUBLE_EQ(p100, Max(xs));
}

INSTANTIATE_TEST_SUITE_P(Seeds, PercentileMonotoneTest,
                         ::testing::Range(1, 11));

// Property: Jain index is always in [1/n, 1] for nonnegative input.
class JainRangeTest : public ::testing::TestWithParam<int> {};

TEST_P(JainRangeTest, WithinTheoreticalBounds) {
  util::Rng rng(static_cast<std::uint64_t>(GetParam()) * 977);
  const int n = rng.UniformInt(1, 40);
  std::vector<double> xs;
  for (int i = 0; i < n; ++i) xs.push_back(rng.Uniform(0.0, 100.0));
  const double j = JainFairnessIndex(xs);
  EXPECT_GE(j, 1.0 / n - 1e-12);
  EXPECT_LE(j, 1.0 + 1e-12);
}

INSTANTIATE_TEST_SUITE_P(Seeds, JainRangeTest, ::testing::Range(1, 21));

}  // namespace
}  // namespace wolt::util
