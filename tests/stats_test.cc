#include "util/stats.h"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "util/rng.h"

namespace wolt::util {
namespace {

TEST(StatsTest, MeanOfKnownValues) {
  const std::vector<double> xs = {1.0, 2.0, 3.0, 4.0};
  EXPECT_DOUBLE_EQ(Mean(xs), 2.5);
}

TEST(StatsTest, EmptyInputsAreZero) {
  const std::vector<double> xs;
  EXPECT_EQ(Mean(xs), 0.0);
  EXPECT_EQ(Variance(xs), 0.0);
  EXPECT_EQ(StdDev(xs), 0.0);
  EXPECT_EQ(Min(xs), 0.0);
  EXPECT_EQ(Max(xs), 0.0);
  EXPECT_EQ(Percentile(xs, 50.0), 0.0);
}

TEST(StatsTest, VarianceOfConstantIsZero) {
  const std::vector<double> xs = {5.0, 5.0, 5.0};
  EXPECT_DOUBLE_EQ(Variance(xs), 0.0);
}

TEST(StatsTest, VarianceKnownValue) {
  const std::vector<double> xs = {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0};
  EXPECT_DOUBLE_EQ(Variance(xs), 4.0);
  EXPECT_DOUBLE_EQ(StdDev(xs), 2.0);
}

TEST(StatsTest, MinMaxSum) {
  const std::vector<double> xs = {3.0, -1.0, 7.0, 2.0};
  EXPECT_DOUBLE_EQ(Min(xs), -1.0);
  EXPECT_DOUBLE_EQ(Max(xs), 7.0);
  EXPECT_DOUBLE_EQ(Sum(xs), 11.0);
}

TEST(StatsTest, MedianOddAndEven) {
  EXPECT_DOUBLE_EQ(Median(std::vector<double>{3.0, 1.0, 2.0}), 2.0);
  EXPECT_DOUBLE_EQ(Median(std::vector<double>{4.0, 1.0, 2.0, 3.0}), 2.5);
}

TEST(StatsTest, PercentileEndpointsAndInterpolation) {
  const std::vector<double> xs = {10.0, 20.0, 30.0, 40.0, 50.0};
  EXPECT_DOUBLE_EQ(Percentile(xs, 0.0), 10.0);
  EXPECT_DOUBLE_EQ(Percentile(xs, 100.0), 50.0);
  EXPECT_DOUBLE_EQ(Percentile(xs, 50.0), 30.0);
  EXPECT_DOUBLE_EQ(Percentile(xs, 25.0), 20.0);
  EXPECT_DOUBLE_EQ(Percentile(xs, 12.5), 15.0);
}

TEST(StatsTest, PercentileClampsOutOfRange) {
  const std::vector<double> xs = {1.0, 2.0};
  EXPECT_DOUBLE_EQ(Percentile(xs, -5.0), 1.0);
  EXPECT_DOUBLE_EQ(Percentile(xs, 200.0), 2.0);
}

TEST(JainTest, AllEqualIsOne) {
  const std::vector<double> xs = {4.0, 4.0, 4.0, 4.0};
  EXPECT_DOUBLE_EQ(JainFairnessIndex(xs), 1.0);
}

TEST(JainTest, SingleDominatorApproachesOneOverN) {
  const std::vector<double> xs = {100.0, 0.0, 0.0, 0.0};
  EXPECT_DOUBLE_EQ(JainFairnessIndex(xs), 0.25);
}

TEST(JainTest, KnownMixedValue) {
  // J([1,2,3]) = 36 / (3*14) = 6/7.
  const std::vector<double> xs = {1.0, 2.0, 3.0};
  EXPECT_NEAR(JainFairnessIndex(xs), 6.0 / 7.0, 1e-12);
}

TEST(JainTest, EmptyAndAllZeroAreVacuouslyFair) {
  EXPECT_DOUBLE_EQ(JainFairnessIndex(std::vector<double>{}), 1.0);
  EXPECT_DOUBLE_EQ(JainFairnessIndex(std::vector<double>{0.0, 0.0}), 1.0);
}

TEST(JainTest, ScaleInvariant) {
  const std::vector<double> xs = {1.0, 5.0, 9.0};
  std::vector<double> scaled;
  for (double x : xs) scaled.push_back(x * 37.0);
  EXPECT_NEAR(JainFairnessIndex(xs), JainFairnessIndex(scaled), 1e-12);
}

TEST(CdfTest, EmpiricalCdfIsSortedAndEndsAtOne) {
  const std::vector<double> xs = {5.0, 1.0, 3.0};
  const auto cdf = EmpiricalCdf(xs);
  ASSERT_EQ(cdf.size(), 3u);
  EXPECT_DOUBLE_EQ(cdf[0].value, 1.0);
  EXPECT_DOUBLE_EQ(cdf[2].value, 5.0);
  EXPECT_NEAR(cdf[0].cumulative_probability, 1.0 / 3.0, 1e-12);
  EXPECT_DOUBLE_EQ(cdf[2].cumulative_probability, 1.0);
}

TEST(CdfTest, CdfAtMatchesCounts) {
  const std::vector<double> xs = {1.0, 2.0, 3.0, 4.0};
  EXPECT_DOUBLE_EQ(CdfAt(xs, 0.5), 0.0);
  EXPECT_DOUBLE_EQ(CdfAt(xs, 2.0), 0.5);
  EXPECT_DOUBLE_EQ(CdfAt(xs, 10.0), 1.0);
}

TEST(RunningStatsTest, MatchesBatchComputation) {
  util::Rng rng(5);
  std::vector<double> xs;
  RunningStats rs;
  for (int i = 0; i < 5000; ++i) {
    const double x = rng.Normal(3.0, 2.0);
    xs.push_back(x);
    rs.Add(x);
  }
  EXPECT_EQ(rs.Count(), xs.size());
  EXPECT_NEAR(rs.Mean(), Mean(xs), 1e-9);
  EXPECT_NEAR(rs.Variance(), Variance(xs), 1e-6);
  EXPECT_DOUBLE_EQ(rs.Min(), Min(xs));
  EXPECT_DOUBLE_EQ(rs.Max(), Max(xs));
  EXPECT_NEAR(rs.Sum(), Sum(xs), 1e-6);
}

TEST(RunningStatsTest, EmptyIsZero) {
  RunningStats rs;
  EXPECT_EQ(rs.Count(), 0u);
  EXPECT_EQ(rs.Mean(), 0.0);
  EXPECT_EQ(rs.Variance(), 0.0);
}

// Property: for any sample, quantiles are monotone and pinned to min/max.
class PercentileMonotoneTest : public ::testing::TestWithParam<int> {};

TEST_P(PercentileMonotoneTest, QuantilesAreMonotone) {
  util::Rng rng(static_cast<std::uint64_t>(GetParam()));
  std::vector<double> xs;
  for (int i = 0; i < 200; ++i) xs.push_back(rng.Uniform(-50.0, 50.0));
  const double p0 = Percentile(xs, 0.0);
  const double p25 = Percentile(xs, 25.0);
  const double p50 = Percentile(xs, 50.0);
  const double p75 = Percentile(xs, 75.0);
  const double p100 = Percentile(xs, 100.0);
  EXPECT_LE(p0, p25);
  EXPECT_LE(p25, p50);
  EXPECT_LE(p50, p75);
  EXPECT_LE(p75, p100);
  EXPECT_DOUBLE_EQ(p0, Min(xs));
  EXPECT_DOUBLE_EQ(p100, Max(xs));
}

INSTANTIATE_TEST_SUITE_P(Seeds, PercentileMonotoneTest,
                         ::testing::Range(1, 11));

// Property: Jain index is always in [1/n, 1] for nonnegative input.
class JainRangeTest : public ::testing::TestWithParam<int> {};

TEST_P(JainRangeTest, WithinTheoreticalBounds) {
  util::Rng rng(static_cast<std::uint64_t>(GetParam()) * 977);
  const int n = rng.UniformInt(1, 40);
  std::vector<double> xs;
  for (int i = 0; i < n; ++i) xs.push_back(rng.Uniform(0.0, 100.0));
  const double j = JainFairnessIndex(xs);
  EXPECT_GE(j, 1.0 / n - 1e-12);
  EXPECT_LE(j, 1.0 + 1e-12);
}

INSTANTIATE_TEST_SUITE_P(Seeds, JainRangeTest, ::testing::Range(1, 21));

}  // namespace
}  // namespace wolt::util
