// Unit coverage of the fault-injection layer itself: the wire fault plane
// and the extender health model.
#include <gtest/gtest.h>

#include <cmath>
#include <string>
#include <vector>

#include "fault/health.h"
#include "fault/plane.h"
#include "sim/des.h"

namespace wolt::fault {
namespace {

TEST(FaultPlaneTest, CleanWireIsTransparent) {
  FaultPlane plane(FaultPlaneParams{}, 1);
  const std::string msg = "SCAN user=1 rates=10";
  for (int k = 0; k < 100; ++k) {
    const auto out = plane.Transmit(MessageClass::kScan, msg);
    ASSERT_EQ(out.size(), 1u);
    EXPECT_EQ(out[0].bytes, msg);
    EXPECT_DOUBLE_EQ(out[0].delay, 0.0);
  }
  EXPECT_EQ(plane.stats().sent, 100u);
  EXPECT_EQ(plane.stats().delivered, 100u);
  EXPECT_EQ(plane.stats().lost, 0u);
  EXPECT_EQ(plane.stats().corrupted, 0u);
}

TEST(FaultPlaneTest, DeterministicGivenSeed) {
  WireFaults w;
  w.loss = 0.2;
  w.duplicate = 0.2;
  w.corrupt = 0.3;
  w.delay_prob = 0.5;
  const FaultPlaneParams params = FaultPlaneParams::Uniform(w);
  FaultPlane a(params, 42), b(params, 42);
  for (int k = 0; k < 500; ++k) {
    const auto da = a.Transmit(MessageClass::kDirective, "DIRECTIVE user=1 extender=2");
    const auto db = b.Transmit(MessageClass::kDirective, "DIRECTIVE user=1 extender=2");
    ASSERT_EQ(da.size(), db.size());
    for (std::size_t i = 0; i < da.size(); ++i) {
      EXPECT_EQ(da[i].bytes, db[i].bytes);
      EXPECT_DOUBLE_EQ(da[i].delay, db[i].delay);
    }
  }
}

TEST(FaultPlaneTest, FaultRatesMatchConfiguration) {
  WireFaults w;
  w.loss = 0.25;
  w.duplicate = 0.25;
  w.base_latency = 0.1;
  FaultPlaneParams params;  // faults on kScan only
  params.ForClass(MessageClass::kScan) = w;
  FaultPlane plane(params, 7);

  const int n = 4000;
  for (int k = 0; k < n; ++k) plane.Transmit(MessageClass::kScan, "x");
  const auto& s = plane.stats();
  EXPECT_NEAR(static_cast<double>(s.lost) / n, 0.25, 0.03);
  // Duplication only applies to delivered messages.
  EXPECT_NEAR(static_cast<double>(s.duplicated) / (n - s.lost), 0.25, 0.03);
  EXPECT_EQ(s.delivered, n - s.lost + s.duplicated);

  // Other classes are untouched.
  const auto out = plane.Transmit(MessageClass::kAck, "ACK user=1 extender=0");
  ASSERT_EQ(out.size(), 1u);
  EXPECT_DOUBLE_EQ(out[0].delay, 0.0);
}

TEST(FaultPlaneTest, CorruptionMutatesBytes) {
  WireFaults w;
  w.corrupt = 1.0;
  FaultPlane plane(FaultPlaneParams::Uniform(w), 13);
  const std::string msg = "CAPACITY extender=3 mbps=117.5";
  int changed = 0;
  for (int k = 0; k < 200; ++k) {
    for (const auto& d : plane.Transmit(MessageClass::kCapacity, msg)) {
      if (d.bytes != msg) ++changed;
    }
  }
  // Mutation is byte-level and random; near-misses (flip to the same byte)
  // are possible but the overwhelming majority must differ.
  EXPECT_GT(changed, 150);
  EXPECT_GT(plane.stats().corrupted, 150u);
}

// --- HealthModel ----------------------------------------------------------

TEST(HealthModelTest, CrashAndRepairCycle) {
  HealthParams hp;
  hp.crash_rate = 2.0;
  hp.repair_rate = 1.0;
  HealthModel health({100.0, 80.0, 60.0}, hp, 11);
  sim::EventQueue queue;
  std::vector<double> last(3, -1.0);
  health.Schedule(queue, [&](std::size_t j, double mbps) { last[j] = mbps; });
  queue.RunUntil(50.0);
  EXPECT_GT(health.stats().crashes, 0u);
  EXPECT_GT(health.stats().repairs, 0u);
  // Every down extender reports capacity 0; every up one a positive value.
  for (std::size_t j = 0; j < 3; ++j) {
    if (health.IsUp(j)) {
      EXPECT_GT(health.Capacity(j), 0.0);
    } else {
      EXPECT_DOUBLE_EQ(health.Capacity(j), 0.0);
      EXPECT_DOUBLE_EQ(last[j], 0.0);
    }
  }
}

TEST(HealthModelTest, DriftStaysInsideClampBand) {
  HealthParams hp;
  hp.drift_rate = 5.0;
  hp.drift_sigma = 0.5;  // violent steps to stress the clamp
  hp.drift_min_factor = 0.5;
  hp.drift_max_factor = 1.25;
  HealthModel health({100.0}, hp, 3);
  sim::EventQueue queue;
  double min_seen = 100.0, max_seen = 100.0;
  health.Schedule(queue, [&](std::size_t, double mbps) {
    min_seen = std::min(min_seen, mbps);
    max_seen = std::max(max_seen, mbps);
  });
  queue.RunUntil(50.0);
  EXPECT_GT(health.stats().drifts, 10u);
  EXPECT_GE(min_seen, 50.0 - 1e-9);
  EXPECT_LE(max_seen, 125.0 + 1e-9);
}

TEST(HealthModelTest, StopAndRestoreHealsEverything) {
  HealthParams hp;
  hp.crash_rate = 3.0;
  hp.repair_rate = 0.05;  // long repairs: extenders stay down
  hp.flap_rate = 2.0;
  hp.drift_rate = 2.0;
  HealthModel health({100.0, 80.0, 60.0, 40.0}, hp, 21);
  sim::EventQueue queue;
  std::vector<double> cap = {100.0, 80.0, 60.0, 40.0};
  health.Schedule(queue, [&](std::size_t j, double mbps) { cap[j] = mbps; });
  queue.RunUntil(20.0);

  health.StopAndRestore();
  EXPECT_EQ(health.NumDown(), 0u);
  for (std::size_t j = 0; j < 4; ++j) {
    EXPECT_TRUE(health.IsUp(j));
    EXPECT_DOUBLE_EQ(health.Capacity(j), cap[j]);  // callback fired
  }
  EXPECT_DOUBLE_EQ(cap[0], 100.0);
  EXPECT_DOUBLE_EQ(cap[3], 40.0);

  // Pending repair timers from the chaotic past must be inert: draining the
  // queue afterwards changes nothing.
  const auto stats = health.stats();
  queue.RunUntil(200.0);
  EXPECT_EQ(health.stats().crashes, stats.crashes);
  for (std::size_t j = 0; j < 4; ++j) EXPECT_TRUE(health.IsUp(j));
}

}  // namespace
}  // namespace wolt::fault
