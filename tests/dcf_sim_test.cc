#include "wifi/dcf_sim.h"

#include <gtest/gtest.h>

#include <stdexcept>
#include <vector>

#include "model/evaluator.h"
#include "util/rng.h"

namespace wolt::wifi {
namespace {

constexpr double kSimSeconds = 5.0;

TEST(DcfSimTest, RejectsBadInputs) {
  util::Rng rng(1);
  DcfParams params;
  EXPECT_THROW(SimulateDcf(std::vector<double>{}, 1.0, params, rng),
               std::invalid_argument);
  EXPECT_THROW(SimulateDcf(std::vector<double>{10.0, 0.0}, 1.0, params, rng),
               std::invalid_argument);
  EXPECT_THROW(EffectiveRate(0.0, params), std::invalid_argument);
}

TEST(DcfSimTest, SingleStationNearsEffectiveRate) {
  util::Rng rng(2);
  const DcfParams params;
  const std::vector<double> rates = {54.0};
  const DcfResult r = SimulateDcf(rates, kSimSeconds, params, rng);
  EXPECT_EQ(r.collision_events, 0);
  EXPECT_NEAR(r.aggregate_mbps, EffectiveRate(54.0, params),
              EffectiveRate(54.0, params) * 0.05);
}

TEST(DcfSimTest, EqualRatesShareEqually) {
  util::Rng rng(3);
  const std::vector<double> rates = {24.0, 24.0, 24.0};
  const DcfResult r = SimulateDcf(rates, kSimSeconds, DcfParams{}, rng);
  for (const auto& st : r.stations) {
    EXPECT_NEAR(st.throughput_mbps, r.aggregate_mbps / 3.0,
                r.aggregate_mbps * 0.03);
  }
}

TEST(DcfSimTest, ThroughputFairSharingWithUnequalRates) {
  // The 802.11 performance anomaly (Fig. 2a): fast and slow stations obtain
  // the SAME throughput, not the same airtime.
  util::Rng rng(4);
  const std::vector<double> rates = {54.0, 6.0};
  const DcfResult r = SimulateDcf(rates, kSimSeconds, DcfParams{}, rng);
  EXPECT_NEAR(r.stations[0].throughput_mbps, r.stations[1].throughput_mbps,
              r.stations[0].throughput_mbps * 0.08);
  // The slow station hogs airtime.
  EXPECT_GT(r.stations[1].airtime_share, 2.0 * r.stations[0].airtime_share);
}

TEST(DcfSimTest, AnomalyDragsFastStationBelowHalfItsSoloThroughput) {
  util::Rng rng(5);
  const DcfParams params;
  const DcfResult solo =
      SimulateDcf(std::vector<double>{54.0}, kSimSeconds, params, rng);
  const DcfResult pair =
      SimulateDcf(std::vector<double>{54.0, 6.0}, kSimSeconds, params, rng);
  EXPECT_LT(pair.stations[0].throughput_mbps,
            0.5 * solo.stations[0].throughput_mbps);
}

TEST(DcfSimTest, MatchesAnalyticFormulaWithinTolerance) {
  // Validates Eq. 1 (with effective rates) against the slot-level MAC —
  // the model-fidelity link between the evaluator and the simulator.
  util::Rng rng(6);
  const DcfParams params;
  const std::vector<std::vector<double>> cases = {
      {54.0, 54.0},
      {54.0, 24.0},
      {36.0, 12.0, 6.0},
      {65.0, 39.0, 19.5, 6.5},
  };
  for (const auto& rates : cases) {
    const DcfResult r = SimulateDcf(rates, kSimSeconds, params, rng);
    const double analytic = AnalyticCellThroughput(rates, params);
    EXPECT_NEAR(r.aggregate_mbps, analytic, analytic * 0.15)
        << "n=" << rates.size();
  }
}

TEST(DcfSimTest, HarmonicShapeMatchesEvaluatorFormula) {
  // The simulator's aggregate across mixed-rate stations must track the
  // harmonic-mean shape of model::WifiCellThroughput once rates are mapped
  // to effective rates.
  util::Rng rng(7);
  const DcfParams params;
  const std::vector<double> rates = {54.0, 12.0};
  const DcfResult r = SimulateDcf(rates, kSimSeconds, params, rng);
  const double harmonic = model::WifiCellThroughput(
      {EffectiveRate(54.0, params), EffectiveRate(12.0, params)});
  EXPECT_NEAR(r.aggregate_mbps, harmonic, harmonic * 0.15);
}

TEST(DcfSimTest, CollisionsOccurWithManyStations) {
  util::Rng rng(8);
  const std::vector<double> rates(10, 24.0);
  const DcfResult r = SimulateDcf(rates, kSimSeconds, DcfParams{}, rng);
  EXPECT_GT(r.collision_events, 0);
  double total_share = 0.0;
  for (const auto& st : r.stations) total_share += st.airtime_share;
  EXPECT_NEAR(total_share, 1.0, 1e-9);
}

TEST(DcfSimTest, DeterministicGivenSeed) {
  const std::vector<double> rates = {54.0, 6.0};
  util::Rng rng1(99), rng2(99);
  const DcfResult a = SimulateDcf(rates, 1.0, DcfParams{}, rng1);
  const DcfResult b = SimulateDcf(rates, 1.0, DcfParams{}, rng2);
  ASSERT_EQ(a.stations.size(), b.stations.size());
  for (std::size_t i = 0; i < a.stations.size(); ++i) {
    EXPECT_EQ(a.stations[i].successes, b.stations[i].successes);
    EXPECT_EQ(a.stations[i].collisions, b.stations[i].collisions);
  }
}

TEST(DcfSimTest, EffectiveRateBelowPhyRate) {
  const DcfParams params;
  for (double rate : {6.5, 13.0, 26.0, 54.0, 65.0}) {
    EXPECT_LT(EffectiveRate(rate, params), rate);
    EXPECT_GT(EffectiveRate(rate, params), 0.0);
  }
}

// More stations => higher collision overhead => aggregate does not grow.
class DcfScalingTest : public ::testing::TestWithParam<int> {};

TEST_P(DcfScalingTest, AggregateBoundedByEffectiveRate) {
  util::Rng rng(static_cast<std::uint64_t>(GetParam()));
  const DcfParams params;
  const std::vector<double> rates(static_cast<std::size_t>(GetParam()), 24.0);
  const DcfResult r = SimulateDcf(rates, 2.0, params, rng);
  EXPECT_LE(r.aggregate_mbps, EffectiveRate(24.0, params) * 1.02);
  EXPECT_GT(r.aggregate_mbps, EffectiveRate(24.0, params) * 0.5);
}

INSTANTIATE_TEST_SUITE_P(StationCounts, DcfScalingTest,
                         ::testing::Values(1, 2, 4, 8, 16));

}  // namespace
}  // namespace wolt::wifi
