// Storage fault plane units and the atomic-writer durability property.
//
// MemVfs is checked against its own durability model (fsync barriers,
// data=ordered renames, power cuts); FaultVfs against its deterministic
// fail-at-op / crash-at-op modes and probabilistic injections; and
// WriteFileAtomic / AtomicFileWriter against the contract every reporter
// relies on: under ANY fault schedule — short writes, EINTR, hard errors,
// fsync lies, torn renames, a power cut at any operation — the destination
// holds either the complete old bytes or the complete new bytes, never a
// prefix or a mix. The degraded-journal units at the bottom pin the
// graceful-degradation semantics (append failure disables journaling
// without taking the run down; a failed compaction keeps the old journal).
#include "fault/storage.h"

#include <gtest/gtest.h>

#include <cerrno>
#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "io/vfs.h"
#include "obs/obs.h"
#include "recover/journal.h"
#include "util/csv.h"
#include "util/fileio.h"
#include "util/rng.h"

namespace wolt {
namespace {

using fault::FaultVfs;
using fault::MemVfs;
using fault::StorageFaultParams;
using fault::StorageOp;
using fault::StorageOpFaults;

// ---------------------------------------------------------------------------
// MemVfs durability model

TEST(MemVfsTest, UnsyncedWritesDieInACrash) {
  MemVfs mem;
  io::IoStatus st;
  const int fd = mem.OpenWrite("f", io::Vfs::OpenMode::kTruncate, &st);
  ASSERT_GE(fd, 0);
  ASSERT_EQ(mem.Write(fd, "hello", 5, &st), 5);
  ASSERT_TRUE(mem.Close(fd).ok());
  EXPECT_EQ(mem.GetFileBytes("f"), "hello");     // page cache has it
  EXPECT_FALSE(mem.GetDurableBytes("f").has_value());  // disk does not
  mem.SimulateCrash();
  EXPECT_FALSE(mem.Exists("f"));
}

TEST(MemVfsTest, FsyncMakesBytesDurable) {
  MemVfs mem;
  io::IoStatus st;
  const int fd = mem.OpenWrite("f", io::Vfs::OpenMode::kTruncate, &st);
  ASSERT_EQ(mem.Write(fd, "hello", 5, &st), 5);
  ASSERT_TRUE(mem.Fsync(fd).ok());
  ASSERT_EQ(mem.Write(fd, " tail", 5, &st), 5);  // after the barrier
  ASSERT_TRUE(mem.Close(fd).ok());
  mem.SimulateCrash();
  EXPECT_EQ(mem.GetFileBytes("f"), "hello");  // only the synced prefix
}

TEST(MemVfsTest, RenameNeedsDirSyncToBeDurable) {
  MemVfs mem;
  io::IoStatus st;
  int fd = mem.OpenWrite("tmp", io::Vfs::OpenMode::kTruncate, &st);
  ASSERT_EQ(mem.Write(fd, "new", 3, &st), 3);
  ASSERT_TRUE(mem.Fsync(fd).ok());
  ASSERT_TRUE(mem.Close(fd).ok());
  ASSERT_TRUE(mem.Rename("tmp", "dest").ok());
  EXPECT_EQ(mem.GetFileBytes("dest"), "new");  // visible immediately
  mem.SimulateCrash();                         // ... but not durable yet
  EXPECT_FALSE(mem.Exists("dest"));
  EXPECT_EQ(mem.GetFileBytes("tmp"), "new");  // fsync'd under the old name

  ASSERT_TRUE(mem.Rename("tmp", "dest").ok());
  ASSERT_TRUE(mem.SyncDir(".").ok());  // the directory barrier commits it
  mem.SimulateCrash();
  EXPECT_EQ(mem.GetFileBytes("dest"), "new");
  EXPECT_FALSE(mem.Exists("tmp"));
}

TEST(MemVfsTest, DataOrderedRenameCarriesUnsyncedContents) {
  // ext4 data=ordered: a committed rename carries the renamed file's bytes
  // as of rename time even when the file itself was never fsynced — the
  // property that makes fsync-lie schedules survivable for correct code.
  MemVfs mem;
  io::IoStatus st;
  const int fd = mem.OpenWrite("tmp", io::Vfs::OpenMode::kTruncate, &st);
  ASSERT_EQ(mem.Write(fd, "new", 3, &st), 3);  // no fsync
  ASSERT_TRUE(mem.Close(fd).ok());
  ASSERT_TRUE(mem.Rename("tmp", "dest").ok());
  ASSERT_TRUE(mem.SyncDir(".").ok());
  mem.SimulateCrash();
  EXPECT_EQ(mem.GetFileBytes("dest"), "new");
}

TEST(MemVfsTest, CrashKillsOpenHandles) {
  MemVfs mem;
  io::IoStatus st;
  const int fd = mem.OpenWrite("f", io::Vfs::OpenMode::kTruncate, &st);
  mem.SimulateCrash();
  EXPECT_EQ(mem.Write(fd, "x", 1, &st), -1);
  EXPECT_EQ(st.err, EBADF);
  EXPECT_EQ(mem.Fsync(fd).err, EBADF);
}

TEST(MemVfsTest, FlipBitCorruptsBothImages) {
  MemVfs mem;
  mem.SetFileBytes("f", std::string("\x00", 1));
  ASSERT_TRUE(mem.FlipBit("f", 3));
  EXPECT_EQ(mem.GetFileBytes("f"), std::string("\x08", 1));
  mem.SimulateCrash();
  EXPECT_EQ(mem.GetFileBytes("f"), std::string("\x08", 1));
  EXPECT_FALSE(mem.FlipBit("f", 64));  // past the end
  EXPECT_FALSE(mem.FlipBit("missing", 0));
}

// ---------------------------------------------------------------------------
// FaultVfs deterministic modes

TEST(FaultVfsTest, FailAtExactOpIndex) {
  MemVfs mem;
  StorageFaultParams params;
  params.fail_at_op = 2;  // op0=open, op1=write, op2=fsync
  params.fail_at_op_err = ENOSPC;
  FaultVfs vfs(mem, params, /*seed=*/1);
  io::IoStatus st;
  const int fd = vfs.OpenWrite("f", io::Vfs::OpenMode::kTruncate, &st);
  ASSERT_GE(fd, 0);
  ASSERT_EQ(vfs.Write(fd, "abc", 3, &st), 3);
  const io::IoStatus fs = vfs.Fsync(fd);
  EXPECT_FALSE(fs.ok());
  EXPECT_EQ(fs.err, ENOSPC);
  EXPECT_TRUE(vfs.Close(fd).ok());  // only the exact index fails
  EXPECT_EQ(vfs.op_count(), 4u);
  EXPECT_EQ(vfs.stats().injected_fail, 1u);
}

TEST(FaultVfsTest, CrashAtOpSwallowsEverythingAfter) {
  MemVfs mem;
  StorageFaultParams params;
  params.crash_at_op = 2;  // open, write land; second write is torn
  FaultVfs vfs(mem, params, /*seed=*/1);
  io::IoStatus st;
  const int fd = vfs.OpenWrite("f", io::Vfs::OpenMode::kTruncate, &st);
  ASSERT_EQ(vfs.Write(fd, "abcd", 4, &st), 4);
  // The crash-index write reports success but lands only half its bytes —
  // a torn final write, exactly what a power cut mid-write leaves behind.
  ASSERT_EQ(vfs.Write(fd, "EFGH", 4, &st), 4);
  EXPECT_TRUE(vfs.Fsync(fd).ok());   // silently swallowed
  EXPECT_TRUE(vfs.Close(fd).ok());
  EXPECT_EQ(mem.GetFileBytes("f"), "abcdEF");
  EXPECT_GE(vfs.stats().crashed_ops, 3u);
  mem.SimulateCrash();
  EXPECT_FALSE(mem.Exists("f"));  // the swallowed fsync never ran
}

TEST(FaultVfsTest, CrashedOpensHandOutDeadHandles) {
  MemVfs mem;
  StorageFaultParams params;
  params.crash_at_op = 0;
  FaultVfs vfs(mem, params, /*seed=*/1);
  io::IoStatus st;
  const int fd = vfs.OpenWrite("f", io::Vfs::OpenMode::kTruncate, &st);
  ASSERT_GE(fd, 0);  // reports success (the process hasn't noticed yet)
  EXPECT_EQ(vfs.Write(fd, "abcd", 4, &st), 4);  // swallowed
  EXPECT_FALSE(mem.Exists("f"));  // nothing ever reached the inner Vfs
}

TEST(FaultVfsTest, EintrAndShortWritesAreAbsorbedByWriteAll) {
  // Under heavy EINTR + short-write injection, io::WriteAll must still land
  // every byte, for any seed.
  const std::string payload(10000, 'x');
  bool saw_short = false;
  bool saw_eintr = false;
  for (std::uint64_t seed = 0; seed < 32; ++seed) {
    MemVfs mem;
    StorageOpFaults f;
    f.eintr = 0.25;
    f.short_write = 0.5;
    FaultVfs vfs(mem, StorageFaultParams::Uniform(f), seed);
    io::IoStatus st;
    const int fd = vfs.OpenWrite("f", io::Vfs::OpenMode::kTruncate, &st);
    ASSERT_GE(fd, 0);
    ASSERT_TRUE(io::WriteAll(vfs, fd, payload).ok()) << "seed " << seed;
    ASSERT_TRUE(vfs.Close(fd).ok());
    ASSERT_EQ(mem.GetFileBytes("f"), payload) << "seed " << seed;
    saw_short = saw_short || vfs.stats().injected_short > 0;
    saw_eintr = saw_eintr || vfs.stats().injected_eintr > 0;
  }
  EXPECT_TRUE(saw_short);
  EXPECT_TRUE(saw_eintr);
}

TEST(FaultVfsTest, BitFlipCorruptsWrittenBytes) {
  MemVfs mem;
  StorageOpFaults f;
  f.bit_flip = 1.0;
  FaultVfs vfs(mem, StorageFaultParams::Uniform(f), /*seed=*/7);
  io::IoStatus st;
  const int fd = vfs.OpenWrite("f", io::Vfs::OpenMode::kTruncate, &st);
  const std::string payload(64, '\0');
  ASSERT_TRUE(io::WriteAll(vfs, fd, payload).ok());  // reported clean
  ASSERT_TRUE(vfs.Close(fd).ok());
  const std::optional<std::string> got = mem.GetFileBytes("f");
  ASSERT_TRUE(got.has_value());
  ASSERT_EQ(got->size(), payload.size());  // same length...
  EXPECT_NE(*got, payload);                // ...different bits
  EXPECT_GE(vfs.stats().injected_bit_flip, 1u);
}

TEST(FaultVfsTest, ReadsPassThroughUncounted) {
  MemVfs mem;
  mem.SetFileBytes("f", "bytes");
  StorageFaultParams params;
  params.fail_at_op = 0;  // would fail the very first counted op
  FaultVfs vfs(mem, params, /*seed=*/1);
  std::string out;
  EXPECT_TRUE(vfs.ReadFileBytes("f", &out).ok());
  EXPECT_EQ(out, "bytes");
  EXPECT_EQ(vfs.op_count(), 0u);
}

// ---------------------------------------------------------------------------
// The old-or-new property of the atomic writers

const char kDest[] = "report.csv";
const std::string kOldBytes = "old,complete,artefact\n1,2,3\n";

std::string NewBytes(std::uint64_t seed) {
  std::string s = "new,artefact,seed=" + std::to_string(seed) + "\n";
  util::Rng rng(seed ^ 0x5EEDF11EULL);
  for (int i = 0; i < 200; ++i) {
    s += std::to_string(rng.Next()) + "\n";
  }
  return s;
}

// Probabilities tuned so most schedules inject at least one fault while a
// meaningful fraction of runs still succeed (both branches of the property
// get exercised). bit_flip stays 0: silent medium corruption of acknowledged
// bytes is *designed* to break old-or-new (that is what the journal checksum
// layer is for) — it gets its own rot-recovery tests.
StorageFaultParams PropertyFaults() {
  StorageOpFaults f;
  f.fail = 0.08;
  f.eintr = 0.15;
  f.short_write = 0.3;
  f.fsync_lie = 0.5;
  f.torn_rename = 0.3;
  return StorageFaultParams::Uniform(f);
}

void CheckOldOrNew(const MemVfs& mem, const std::string& want,
                   std::uint64_t seed, const char* when) {
  const std::optional<std::string> got = mem.GetFileBytes(kDest);
  ASSERT_TRUE(got.has_value()) << when << ", seed " << seed;
  EXPECT_TRUE(*got == kOldBytes || *got == want)
      << when << ", seed " << seed << ": destination is " << got->size()
      << " bytes, neither the old nor the new artefact";
}

TEST(AtomicWriteProperty, WriteFileAtomicIsOldOrNewUnderRandomFaults) {
  for (std::uint64_t seed = 0; seed < 100; ++seed) {
    const std::string want = NewBytes(seed);
    MemVfs mem;
    mem.SetFileBytes(kDest, kOldBytes);
    FaultVfs vfs(mem, PropertyFaults(), seed);
    const io::IoStatus st = util::WriteFileAtomic(kDest, want, &vfs);
    CheckOldOrNew(mem, want, seed, "after write");
    if (st.ok()) {
      EXPECT_EQ(mem.GetFileBytes(kDest), want) << "seed " << seed;
    }
    // And the same holds for what survives a power cut right afterwards.
    mem.SimulateCrash();
    CheckOldOrNew(mem, want, seed, "after crash");
  }
}

TEST(AtomicWriteProperty, WriteFileAtomicIsOldOrNewUnderPowerCuts) {
  // Exhaustively cut power at every operation index of the atomic-write
  // protocol, composed with fsync lies (the nastiest schedule: the barrier
  // claims success, then power dies).
  for (const bool lie : {false, true}) {
    // Instrumented clean run to learn the op count.
    std::uint64_t ops = 0;
    {
      MemVfs mem;
      mem.SetFileBytes(kDest, kOldBytes);
      StorageFaultParams params;
      if (lie) params.ForOp(StorageOp::kFsync).fsync_lie = 1.0;
      FaultVfs vfs(mem, params, /*seed=*/0);
      ASSERT_TRUE(util::WriteFileAtomic(kDest, NewBytes(0), &vfs).ok());
      ops = vfs.op_count();
      ASSERT_GE(ops, 5u);  // open, write(s), fsync, close, rename, syncdir
    }
    for (std::uint64_t k = 0; k <= ops; ++k) {
      const std::uint64_t seed = 1000 + k;
      const std::string want = NewBytes(seed);
      MemVfs mem;
      mem.SetFileBytes(kDest, kOldBytes);
      StorageFaultParams params;
      params.crash_at_op = k;
      if (lie) params.ForOp(StorageOp::kFsync).fsync_lie = 1.0;
      FaultVfs vfs(mem, params, seed);
      util::WriteFileAtomic(kDest, want, &vfs);
      mem.SimulateCrash();
      CheckOldOrNew(mem, want, seed,
                    lie ? "power cut with lying fsync" : "power cut");
    }
  }
}

TEST(AtomicWriteProperty, StreamingWriterIsOldOrNewUnderRandomFaults) {
  for (std::uint64_t seed = 0; seed < 100; ++seed) {
    const std::string want = NewBytes(seed);
    MemVfs mem;
    mem.SetFileBytes(kDest, kOldBytes);
    FaultVfs vfs(mem, PropertyFaults(), seed ^ 0xA70A70ULL);
    util::AtomicFileWriter writer(kDest, &vfs);
    writer.stream() << want;
    const io::IoStatus st = writer.Commit();
    CheckOldOrNew(mem, want, seed, "after commit");
    if (st.ok()) {
      EXPECT_EQ(mem.GetFileBytes(kDest), want) << "seed " << seed;
    }
    mem.SimulateCrash();
    CheckOldOrNew(mem, want, seed, "after crash");
  }
}

TEST(AtomicWriteProperty, AbandonNeverTouchesDestination) {
  MemVfs mem;
  mem.SetFileBytes(kDest, kOldBytes);
  util::AtomicFileWriter writer(kDest, &mem);
  writer.stream() << "half-finished";
  writer.Abandon();
  EXPECT_EQ(mem.GetFileBytes(kDest), kOldBytes);
  EXPECT_FALSE(writer.ok());
}

TEST(AtomicWriteProperty, OpenFailureReportsErrnoAndLeavesOldFile) {
  MemVfs mem;
  mem.SetFileBytes(kDest, kOldBytes);
  StorageFaultParams params;
  params.fail_at_op = 0;  // the temp-file open
  params.fail_at_op_err = ENOSPC;
  FaultVfs vfs(mem, params, /*seed=*/1);
  util::AtomicFileWriter writer(kDest, &vfs);
  EXPECT_FALSE(writer.ok());
  EXPECT_EQ(writer.status().err, ENOSPC);
  writer.stream() << "goes nowhere";
  EXPECT_FALSE(writer.Commit().ok());
  EXPECT_EQ(mem.GetFileBytes(kDest), kOldBytes);
}

TEST(AtomicWriteProperty, CsvWriterSurfacesFaultStatus) {
  MemVfs mem;
  StorageFaultParams params;
  params.fail_at_op = 0;
  params.fail_at_op_err = ENOSPC;
  FaultVfs vfs(mem, params, /*seed=*/1);
  util::CsvWriter csv("out.csv", {"a", "b"}, &vfs);
  EXPECT_FALSE(csv.ok());
  EXPECT_EQ(csv.status().err, ENOSPC);
}

// ---------------------------------------------------------------------------
// Graceful journal degradation

recover::TaskRecord MakeRecord(std::uint64_t index) {
  recover::TaskRecord rec;
  rec.index = index;
  rec.aggregate_mbps = 100.0 + static_cast<double>(index);
  rec.jain_fairness = 0.9;
  rec.user_throughput = {1.0, 2.0};
  return rec;
}

TEST(JournalDegradeTest, AppendFailureDisablesJournalingKeepsValidPrefix) {
  MemVfs mem;
  StorageFaultParams params;
  params.fail_at_op = 3;  // op0=open, op1=header, op2=rec0, op3=rec1
  params.fail_at_op_err = ENOSPC;
  FaultVfs vfs(mem, params, /*seed=*/1);

  obs::MetricsRegistry reg;
  obs::ScopedMetrics scoped(reg);

  recover::JournalWriter::Options opts;
  opts.compact_every = 0;
  opts.vfs = &vfs;
  recover::JournalHeader header;
  header.fingerprint = 42;
  header.num_tasks = 8;
  recover::JournalWriter writer("sweep.wal", header, opts);
  ASSERT_TRUE(writer.ok());
  writer.Append(MakeRecord(0));
  EXPECT_TRUE(writer.ok());
  writer.Append(MakeRecord(1));  // the ENOSPC append
  EXPECT_FALSE(writer.ok());
  EXPECT_TRUE(writer.degraded());
  writer.Append(MakeRecord(2));  // best-effort no-op, must not crash
  writer.Close();

  // The file keeps its valid prefix: header + the one good record.
  const recover::JournalReadResult check =
      recover::ReadJournal("sweep.wal", &mem);
  ASSERT_TRUE(check.ok) << check.error;
  ASSERT_EQ(check.records.size(), 1u);
  EXPECT_EQ(check.records[0].index, 0u);
  EXPECT_FALSE(check.tail_torn);
  EXPECT_FALSE(check.tail_rot);
#if WOLT_OBS_ENABLED
  EXPECT_GE(reg.GetCounter("recover.journal.io_error").Value(), 1u);
  EXPECT_EQ(reg.GetCounter("recover.journal.degraded").Value(), 1u);
#endif
}

TEST(JournalDegradeTest, CompactionFailureKeepsOldJournalAndKeepsGoing) {
  MemVfs mem;
  StorageFaultParams params;
  // Fail every rename: appends never rename, so this hits exactly the
  // compaction's atomic rewrite, leaving the uncompacted journal in place.
  params.ForOp(StorageOp::kRename).fail = 1.0;
  params.ForOp(StorageOp::kRename).fail_err = ENOSPC;
  FaultVfs vfs(mem, params, /*seed=*/1);

  obs::MetricsRegistry reg;
  obs::ScopedMetrics scoped(reg);

  recover::JournalWriter::Options opts;
  opts.compact_every = 2;
  opts.vfs = &vfs;
  recover::JournalHeader header;
  header.fingerprint = 42;
  header.num_tasks = 8;
  recover::JournalWriter writer("sweep.wal", header, opts);
  for (std::uint64_t i = 0; i < 5; ++i) {
    writer.Append(MakeRecord(i));
    EXPECT_TRUE(writer.ok()) << "append " << i;  // never degrades
  }
  EXPECT_FALSE(writer.degraded());
  writer.Close();

  const recover::JournalReadResult check =
      recover::ReadJournal("sweep.wal", &mem);
  ASSERT_TRUE(check.ok) << check.error;
  EXPECT_EQ(check.records.size(), 5u);  // nothing lost
#if WOLT_OBS_ENABLED
  EXPECT_GE(reg.GetCounter("recover.journal.compact_failed").Value(), 2u);
  EXPECT_EQ(reg.GetCounter("recover.journal.degraded").Value(), 0u);
#endif
}

TEST(JournalDegradeTest, OpenFailureDegradesImmediatelyRunContinues) {
  MemVfs mem;
  StorageFaultParams params;
  params.fail_at_op = 0;
  FaultVfs vfs(mem, params, /*seed=*/1);
  recover::JournalWriter::Options opts;
  opts.vfs = &vfs;
  recover::JournalWriter writer("sweep.wal", recover::JournalHeader{}, opts);
  EXPECT_FALSE(writer.ok());
  EXPECT_TRUE(writer.degraded());
  writer.Append(MakeRecord(0));  // no-op, no crash
  writer.Close();
  EXPECT_FALSE(mem.Exists("sweep.wal"));
}

TEST(JournalRotTest, BitRotTruncatesToLastGoodFrameInsteadOfAborting) {
  MemVfs mem;
  {
    recover::JournalWriter::Options opts;
    opts.vfs = &mem;
    recover::JournalHeader header;
    header.fingerprint = 42;
    header.num_tasks = 8;
    recover::JournalWriter writer("sweep.wal", header, opts);
    for (std::uint64_t i = 0; i < 4; ++i) writer.Append(MakeRecord(i));
    writer.Close();
  }
  const std::optional<std::string> bytes = mem.GetFileBytes("sweep.wal");
  ASSERT_TRUE(bytes.has_value());
  // Rot a payload byte of the final record: the frame still *looks*
  // complete, but its checksum no longer matches.
  ASSERT_TRUE(mem.FlipBit("sweep.wal", (bytes->size() - 3) * 8));

  obs::MetricsRegistry reg;
  obs::ScopedMetrics scoped(reg);
  const recover::JournalReadResult check =
      recover::ReadJournal("sweep.wal", &mem);
  ASSERT_TRUE(check.ok) << check.error;
  EXPECT_EQ(check.records.size(), 3u);  // truncated to the last good frame
  EXPECT_TRUE(check.tail_rot);
  EXPECT_FALSE(check.tail_torn);
  EXPECT_GT(check.torn_bytes, 0u);
#if WOLT_OBS_ENABLED
  EXPECT_GE(reg.GetCounter("recover.journal.rot_truncated").Value(), 1u);
#endif
}

TEST(JournalRotTest, TornTailIsClassifiedAsTornNotRot) {
  MemVfs mem;
  {
    recover::JournalWriter::Options opts;
    opts.vfs = &mem;
    recover::JournalHeader header;
    header.fingerprint = 42;
    header.num_tasks = 8;
    recover::JournalWriter writer("sweep.wal", header, opts);
    for (std::uint64_t i = 0; i < 3; ++i) writer.Append(MakeRecord(i));
    writer.Close();
  }
  const std::optional<std::string> bytes = mem.GetFileBytes("sweep.wal");
  ASSERT_TRUE(bytes.has_value());
  // Chop mid-frame: an incomplete final record (crash mid-append).
  ASSERT_TRUE(mem.Truncate("sweep.wal", bytes->size() - 7).ok());
  const recover::JournalReadResult check =
      recover::ReadJournal("sweep.wal", &mem);
  ASSERT_TRUE(check.ok) << check.error;
  EXPECT_EQ(check.records.size(), 2u);
  EXPECT_TRUE(check.tail_torn);
  EXPECT_FALSE(check.tail_rot);
}

// ---------------------------------------------------------------------------
// Misc seam units

TEST(VfsTest, DirOf) {
  EXPECT_EQ(io::DirOf("a/b/c.csv"), "a/b");
  EXPECT_EQ(io::DirOf("c.csv"), ".");
  EXPECT_EQ(io::DirOf("/c.csv"), "/");
}

TEST(VfsTest, IoStatusMessageNamesOpAndErrno) {
  const io::IoStatus st = io::IoStatus::Fail("write", ENOSPC);
  const std::string msg = st.Message();
  EXPECT_NE(msg.find("write"), std::string::npos);
  EXPECT_NE(msg.find("28"), std::string::npos);
  EXPECT_TRUE(io::IoStatus::Ok().ok());
  EXPECT_EQ(io::IoStatus::Fail("x", 0).err, EIO);  // 0 coerced: never "ok"
}

}  // namespace
}  // namespace wolt
