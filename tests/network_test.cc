#include "model/network.h"

#include <gtest/gtest.h>

#include <stdexcept>

namespace wolt::model {
namespace {

TEST(NetworkTest, ConstructionSizes) {
  Network net(3, 2);
  EXPECT_EQ(net.NumUsers(), 3u);
  EXPECT_EQ(net.NumExtenders(), 2u);
  EXPECT_DOUBLE_EQ(net.WifiRate(0, 0), 0.0);
  EXPECT_DOUBLE_EQ(net.PlcRate(1), 0.0);
}

TEST(NetworkTest, SetAndGetRates) {
  Network net(2, 2);
  net.SetWifiRate(0, 1, 39.0);
  net.SetPlcRate(1, 120.0);
  EXPECT_DOUBLE_EQ(net.WifiRate(0, 1), 39.0);
  EXPECT_DOUBLE_EQ(net.WifiRate(1, 0), 0.0);
  EXPECT_DOUBLE_EQ(net.PlcRate(1), 120.0);
}

TEST(NetworkTest, NegativeRatesRejected) {
  Network net(1, 1);
  EXPECT_THROW(net.SetWifiRate(0, 0, -1.0), std::invalid_argument);
  EXPECT_THROW(net.SetPlcRate(0, -5.0), std::invalid_argument);
}

TEST(NetworkTest, OutOfRangeIndicesThrow) {
  Network net(1, 1);
  EXPECT_THROW(net.SetWifiRate(1, 0, 1.0), std::out_of_range);
  EXPECT_THROW(net.SetPlcRate(3, 1.0), std::out_of_range);
  EXPECT_THROW((void)net.WifiRate(0, 2), std::out_of_range);
}

TEST(NetworkTest, ReachabilityAndBestExtender) {
  Network net(2, 3);
  net.SetWifiRate(0, 0, 10.0);
  net.SetWifiRate(0, 2, 25.0);
  EXPECT_TRUE(net.UserReachable(0));
  EXPECT_FALSE(net.UserReachable(1));
  ASSERT_TRUE(net.BestRateExtender(0).has_value());
  EXPECT_EQ(*net.BestRateExtender(0), 2u);
  EXPECT_FALSE(net.BestRateExtender(1).has_value());
}

TEST(NetworkTest, AddUserAppendsRow) {
  Network net(1, 2);
  net.SetWifiRate(0, 0, 5.0);
  User u;
  u.label = "new";
  const std::size_t idx = net.AddUser(u, {7.0, 8.0});
  EXPECT_EQ(idx, 1u);
  EXPECT_EQ(net.NumUsers(), 2u);
  EXPECT_DOUBLE_EQ(net.WifiRate(1, 0), 7.0);
  EXPECT_DOUBLE_EQ(net.WifiRate(1, 1), 8.0);
  EXPECT_DOUBLE_EQ(net.WifiRate(0, 0), 5.0);  // original row intact
  EXPECT_EQ(net.UserAt(1).label, "new");
}

TEST(NetworkTest, AddUserRejectsWrongRowSize) {
  Network net(0, 2);
  EXPECT_THROW(net.AddUser(User{}, {1.0}), std::invalid_argument);
}

TEST(NetworkTest, RemoveUserShiftsRows) {
  Network net(3, 2);
  net.SetWifiRate(0, 0, 1.0);
  net.SetWifiRate(1, 0, 2.0);
  net.SetWifiRate(2, 0, 3.0);
  net.RemoveUser(1);
  EXPECT_EQ(net.NumUsers(), 2u);
  EXPECT_DOUBLE_EQ(net.WifiRate(0, 0), 1.0);
  EXPECT_DOUBLE_EQ(net.WifiRate(1, 0), 3.0);
  EXPECT_THROW(net.RemoveUser(5), std::out_of_range);
}

TEST(NetworkTest, DistanceHelper) {
  EXPECT_DOUBLE_EQ(Distance({0.0, 0.0}, {3.0, 4.0}), 5.0);
  EXPECT_DOUBLE_EQ(Distance({1.0, 1.0}, {1.0, 1.0}), 0.0);
}

TEST(NetworkTest, RssiMatrixOptional) {
  Network net(2, 2);
  EXPECT_FALSE(net.HasRssi());
  net.SetWifiRate(0, 0, 10.0);
  net.SetWifiRate(0, 1, 40.0);
  // No RSSI recorded: best-RSSI falls back to best rate.
  EXPECT_EQ(*net.BestRssiExtender(0), 1u);

  // Record RSSI that contradicts the rate ordering (possible with
  // heterogeneous hardware): RSSI ranking must win.
  net.SetRssi(0, 0, -50.0);
  net.SetRssi(0, 1, -70.0);
  EXPECT_TRUE(net.HasRssi());
  EXPECT_EQ(*net.BestRssiExtender(0), 0u);
  EXPECT_DOUBLE_EQ(net.Rssi(0, 0), -50.0);
}

TEST(NetworkTest, BestRssiSkipsUnreachableExtenders) {
  Network net(1, 2);
  net.SetWifiRate(0, 1, 5.0);
  net.SetRssi(0, 0, -40.0);  // strong signal but rate 0 (e.g. 5 GHz-only AP)
  net.SetRssi(0, 1, -75.0);
  EXPECT_EQ(*net.BestRssiExtender(0), 1u);
}

TEST(NetworkTest, RemoveUserKeepsRssiAligned) {
  Network net(2, 1);
  net.SetWifiRate(0, 0, 1.0);
  net.SetWifiRate(1, 0, 2.0);
  net.SetRssi(0, 0, -80.0);
  net.SetRssi(1, 0, -60.0);
  net.RemoveUser(0);
  EXPECT_DOUBLE_EQ(net.Rssi(0, 0), -60.0);
}

TEST(NetworkTest, MaxUsersDefaultsUnlimited) {
  Network net(1, 1);
  EXPECT_EQ(net.MaxUsers(0), 0);
  net.SetMaxUsers(0, 4);
  EXPECT_EQ(net.MaxUsers(0), 4);
}

}  // namespace
}  // namespace wolt::model
