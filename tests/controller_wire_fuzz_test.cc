// Decoder fuzz: the wire decoders are total functions. Whatever bytes the
// (possibly fault-injected) wire delivers, Decode* either returns a fully
// validated message or nullopt — it never throws, never crashes, never lets
// NaN/Inf/negative rates or out-of-range ids into the controller. Run under
// the `sanitize` preset this also proves the parsers are memory-clean on
// hostile input.
#include <gtest/gtest.h>

#include <cmath>
#include <string>
#include <vector>

#include "core/controller.h"
#include "fault/plane.h"
#include "util/rng.h"

namespace wolt::core {
namespace {

// Every decoder applied to the same bytes; none may throw, and whatever
// decodes must satisfy the message invariants.
void DecodeAllAndCheck(const std::string& line) {
  ASSERT_NO_THROW({
    const auto scan = DecodeScanReport(line);
    const auto directive = DecodeAssociationDirective(line);
    const auto ack = DecodeDirectiveAck(line);
    const auto depart = DecodeDepartureNotice(line);
    const auto capacity = DecodeCapacityReport(line);

    if (scan) {
      EXPECT_FALSE(scan->rates_mbps.empty());
      for (const double r : scan->rates_mbps) {
        EXPECT_TRUE(std::isfinite(r) && r >= 0.0) << line;
      }
      EXPECT_TRUE(scan->rssi_dbm.empty() ||
                  scan->rssi_dbm.size() == scan->rates_mbps.size())
          << line;
      for (const double r : scan->rssi_dbm) {
        EXPECT_TRUE(std::isfinite(r)) << line;
      }
      if (scan->associated_extender) {
        EXPECT_GE(*scan->associated_extender, -1) << line;
      }
    }
    if (directive) {
      EXPECT_GE(directive->extender, 0) << line;
    }
    if (ack) {
      EXPECT_GE(ack->extender, 0) << line;
    }
    (void)depart;
    if (capacity) {
      EXPECT_GE(capacity->extender, 0) << line;
      EXPECT_TRUE(std::isfinite(capacity->capacity_mbps) &&
                  capacity->capacity_mbps >= 0.0)
          << line;
    }
  }) << line;
}

TEST(WireFuzzTest, HostileLiteralsNeverDecode) {
  const std::vector<std::string> hostile = {
      "",
      " ",
      "\n",
      "SCAN",
      "SCAN ",
      "SCAN user=",
      "SCAN user=1",
      "SCAN rates=1",
      "SCAN user=1 rates=",
      "SCAN user=1 rates=,",
      "SCAN user=1 rates=1,",
      "SCAN user=1 rates=nan",
      "SCAN user=1 rates=NaN",
      "SCAN user=1 rates=inf",
      "SCAN user=1 rates=-inf",
      "SCAN user=1 rates=-0.001",
      "SCAN user=1 rates=1e999",
      "SCAN user=1 rates=0x10",
      "SCAN user=1 rates=1 rssi=nan",
      "SCAN user=1 rates=1,2 rssi=-50",
      "SCAN user=1 rates=1 rssi=",
      "SCAN user=1 rates=1 assoc=-2",
      "SCAN user=1 rates=1 assoc=1.5",
      "SCAN user=1 rates=1 assoc=99999999999999999999",
      "SCAN user=9223372036854775808 rates=1",
      "SCAN user=1.0 rates=1",
      "SCAN user=+-3 rates=1",
      "SCAN user=1 user=2 rates=1",
      "SCAN user=1 rates=1 rates=2",
      "SCAN user=1 rates=1 trailing",
      "SCAN user=1 rates=1 =",
      "SCAN user=1 rates=1 junk=",
      "scan user=1 rates=1",
      "SCANuser=1 rates=1",
      "DIRECTIVE user=1",
      "DIRECTIVE extender=1",
      "DIRECTIVE user=1 extender=-1",
      "DIRECTIVE user=1 extender=2147483648",
      "DIRECTIVE user=1 extender=1 extra=2",
      "ACK user=1",
      "ACK user=1 extender=-3",
      "DEPART",
      "DEPART user=abc",
      "DEPART user=1 extender=0",
      "CAPACITY extender=1",
      "CAPACITY mbps=5",
      "CAPACITY extender=-1 mbps=5",
      "CAPACITY extender=1 mbps=-5",
      "CAPACITY extender=1 mbps=nan",
      "CAPACITY extender=1 mbps=inf",
      "CAPACITY extender=1 mbps=5 mbps=6",
      "CAPACITY extender=1 mbps=5 x",
      std::string("SCAN user=1 rates=1\0hidden", 25),
  };
  for (const auto& line : hostile) {
    SCOPED_TRACE(line);
    DecodeAllAndCheck(line);
    EXPECT_FALSE(DecodeScanReport(line).has_value());
    EXPECT_FALSE(DecodeAssociationDirective(line).has_value());
    EXPECT_FALSE(DecodeDirectiveAck(line).has_value());
    EXPECT_FALSE(DecodeDepartureNotice(line).has_value());
    EXPECT_FALSE(DecodeCapacityReport(line).has_value());
  }
}

TEST(WireFuzzTest, RandomByteSoupNeverThrows) {
  util::Rng rng(0xF00D);
  for (int iter = 0; iter < 5000; ++iter) {
    const int len = rng.UniformInt(0, 80);
    std::string line;
    line.reserve(static_cast<std::size_t>(len));
    for (int k = 0; k < len; ++k) {
      line.push_back(static_cast<char>(rng.UniformInt(0, 255)));
    }
    DecodeAllAndCheck(line);
  }
}

TEST(WireFuzzTest, KeywordSeededSoupNeverThrows) {
  // Byte soup that starts with a real verb exercises the field parsers.
  const std::vector<std::string> verbs = {"SCAN ", "DIRECTIVE ", "ACK ",
                                          "DEPART ", "CAPACITY "};
  const std::string alphabet = "0123456789.,-+eE= usratexndbmcifALN\t";
  util::Rng rng(0xBEEF);
  for (int iter = 0; iter < 5000; ++iter) {
    std::string line = verbs[static_cast<std::size_t>(
        rng.UniformInt(0, static_cast<int>(verbs.size()) - 1))];
    const int len = rng.UniformInt(0, 60);
    for (int k = 0; k < len; ++k) {
      line.push_back(alphabet[static_cast<std::size_t>(
          rng.UniformInt(0, static_cast<int>(alphabet.size()) - 1))]);
    }
    DecodeAllAndCheck(line);
  }
}

TEST(WireFuzzTest, CorruptedValidMessagesNeverThrow) {
  // Drive real encodings through the fault plane's corruptor — the exact
  // byte-mangling the chaos harness injects — and decode every mutant.
  util::Rng rng(0xC0FFEE);
  fault::FaultPlaneParams params;
  for (auto& w : params.per_class) w.corrupt = 1.0;
  fault::FaultPlane plane(params, /*seed=*/7);

  ScanReport scan;
  scan.user_id = 12345;
  scan.rates_mbps = {10.5, 0.0, 32.25};
  scan.rssi_dbm = {-70.0, -90.5, -61.0};
  scan.associated_extender = 2;
  const std::vector<std::string> valid = {
      Encode(scan),
      Encode(AssociationDirective{12345, 2}),
      Encode(DirectiveAck{12345, 2}),
      Encode(DepartureNotice{12345}),
      Encode(CapacityReport{3, 117.5}),
  };
  for (int iter = 0; iter < 3000; ++iter) {
    const auto& base = valid[static_cast<std::size_t>(
        rng.UniformInt(0, static_cast<int>(valid.size()) - 1))];
    const auto deliveries =
        plane.Transmit(fault::MessageClass::kScan, base);
    for (const auto& d : deliveries) DecodeAllAndCheck(d.bytes);
  }
}

TEST(WireFuzzTest, ValidMessagesAlwaysDecode) {
  // Sanity inverse: round-trips still work for randomly generated valid
  // messages (the fuzzing above must not be vacuous).
  util::Rng rng(0xABCD);
  for (int iter = 0; iter < 1000; ++iter) {
    ScanReport scan;
    scan.user_id = rng.UniformInt(0, 1 << 20);
    const int n = rng.UniformInt(1, 6);
    for (int j = 0; j < n; ++j) {
      scan.rates_mbps.push_back(rng.Uniform(0.0, 100.0));
    }
    if (rng.Bernoulli(0.5)) {
      for (int j = 0; j < n; ++j) {
        scan.rssi_dbm.push_back(rng.Uniform(-90.0, -30.0));
      }
    }
    if (rng.Bernoulli(0.5)) {
      scan.associated_extender = rng.UniformInt(0, n - 1);
    }
    const auto decoded = DecodeScanReport(Encode(scan));
    ASSERT_TRUE(decoded.has_value());
    EXPECT_EQ(decoded->user_id, scan.user_id);
    EXPECT_EQ(decoded->rates_mbps.size(), scan.rates_mbps.size());
  }
}

}  // namespace
}  // namespace wolt::core
