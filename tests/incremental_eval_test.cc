// Differential test for the incremental delta-evaluation engine: on
// randomized networks, a long random sequence of ApplyMove calls must keep
// the engine's objective values and per-user throughputs in lockstep with a
// fresh Evaluator::Evaluate of the same assignment (within 1e-9), across
// all three PLC sharing modes, multi-domain PLC segments, and the
// exact-fallback configurations (per-user demands, co-channel WiFi
// contention). Peeks (PeekMove / PeekSwap) must match the value a real
// apply would produce and leave the engine state untouched.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <vector>

#include "model/assignment.h"
#include "model/evaluator.h"
#include "model/incremental.h"
#include "model/network.h"
#include "util/rng.h"

namespace wolt::model {
namespace {

constexpr double kTol = 1e-9;

struct ScenarioConfig {
  std::size_t num_users = 0;
  std::size_t num_extenders = 0;
  PlcSharing sharing = PlcSharing::kMaxMinActive;
  int plc_domains = 1;
  bool with_demands = false;         // triggers the exact-fallback
  bool with_wifi_contention = false; // triggers the exact-fallback
};

ScenarioConfig RandomConfig(util::Rng& rng) {
  ScenarioConfig cfg;
  cfg.num_users = static_cast<std::size_t>(rng.UniformInt(2, 40));
  cfg.num_extenders = static_cast<std::size_t>(rng.UniformInt(2, 8));
  switch (rng.UniformInt(0, 2)) {
    case 0: cfg.sharing = PlcSharing::kMaxMinActive; break;
    case 1: cfg.sharing = PlcSharing::kEqualActive; break;
    default: cfg.sharing = PlcSharing::kEqualAll; break;
  }
  cfg.plc_domains = rng.UniformInt(1, 3);
  cfg.with_demands = rng.Bernoulli(0.25);
  cfg.with_wifi_contention = rng.Bernoulli(0.2);
  return cfg;
}

Network RandomNetwork(const ScenarioConfig& cfg, util::Rng& rng) {
  Network net(cfg.num_users, cfg.num_extenders);
  for (std::size_t j = 0; j < cfg.num_extenders; ++j) {
    // Occasionally a dead backhaul (c_j = 0) to exercise that branch.
    const double plc = rng.Bernoulli(0.1) ? 0.0 : rng.Uniform(20.0, 400.0);
    net.SetPlcRate(j, plc);
    net.SetPlcDomain(j, rng.UniformInt(0, cfg.plc_domains - 1));
  }
  for (std::size_t i = 0; i < cfg.num_users; ++i) {
    bool reachable = false;
    for (std::size_t j = 0; j < cfg.num_extenders; ++j) {
      if (rng.Bernoulli(0.7)) {
        net.SetWifiRate(i, j, rng.Uniform(5.0, 600.0));
        reachable = true;
      }
    }
    if (!reachable) net.SetWifiRate(i, 0, rng.Uniform(5.0, 600.0));
    if (cfg.with_demands && rng.Bernoulli(0.5)) {
      net.SetUserDemand(i, rng.Uniform(1.0, 80.0));
    }
  }
  return net;
}

EvalOptions OptionsFor(const ScenarioConfig& cfg, util::Rng& rng) {
  EvalOptions opt;
  opt.plc_sharing = cfg.sharing;
  if (cfg.with_wifi_contention) {
    opt.wifi_contention_domain.resize(cfg.num_extenders);
    for (std::size_t j = 0; j < cfg.num_extenders; ++j) {
      opt.wifi_contention_domain[j] = rng.UniformInt(0, 2);
    }
  }
  return opt;
}

// Random initial assignment: each user goes to a random reachable extender
// or stays unassigned.
Assignment RandomAssignment(const Network& net, util::Rng& rng) {
  Assignment a(net.NumUsers());
  for (std::size_t i = 0; i < net.NumUsers(); ++i) {
    if (rng.Bernoulli(0.15)) continue;  // leave unassigned
    std::vector<std::size_t> reach;
    for (std::size_t j = 0; j < net.NumExtenders(); ++j) {
      if (net.WifiRate(i, j) > 0.0) reach.push_back(j);
    }
    if (reach.empty()) continue;
    a.Assign(i, reach[static_cast<std::size_t>(
                   rng.UniformInt(0, static_cast<int>(reach.size()) - 1))]);
  }
  return a;
}

double LogUtilityOf(const EvalResult& res, const Assignment& assign,
                    double floor) {
  double sum = 0.0;
  for (std::size_t i = 0; i < res.user_throughput_mbps.size(); ++i) {
    if (!assign.IsAssigned(i)) continue;
    sum += std::log(std::max(res.user_throughput_mbps[i], floor));
  }
  return sum;
}

void ExpectMatchesFresh(IncrementalEvaluator& inc, const Network& net,
                        const Assignment& assign, const Evaluator& evaluator,
                        const char* where) {
  const EvalResult fresh = evaluator.Evaluate(net, assign);
  EXPECT_NEAR(inc.aggregate_mbps(), fresh.aggregate_mbps, kTol) << where;
  EXPECT_NEAR(inc.log_utility(),
              LogUtilityOf(fresh, assign,
                           IncrementalEvaluator::kDefaultLogFloorMbps),
              kTol)
      << where;
  for (std::size_t i = 0; i < net.NumUsers(); ++i) {
    EXPECT_NEAR(inc.UserThroughput(i), fresh.user_throughput_mbps[i], kTol)
        << where << " user " << i;
  }
}

// Pick a random legal move (possibly an unassign) for the current state.
// Returns false if the scenario offers none.
bool RandomMove(const Network& net, const Assignment& assign, util::Rng& rng,
                std::size_t* user, int* to) {
  for (int attempt = 0; attempt < 64; ++attempt) {
    const std::size_t i = static_cast<std::size_t>(
        rng.UniformInt(0, static_cast<int>(net.NumUsers()) - 1));
    if (assign.IsAssigned(i) && rng.Bernoulli(0.2)) {
      *user = i;
      *to = Assignment::kUnassigned;
      return true;
    }
    std::vector<std::size_t> reach;
    for (std::size_t j = 0; j < net.NumExtenders(); ++j) {
      if (net.WifiRate(i, j) > 0.0 &&
          static_cast<int>(j) != assign.ExtenderOf(i)) {
        reach.push_back(j);
      }
    }
    if (reach.empty()) continue;
    *user = i;
    *to = static_cast<int>(reach[static_cast<std::size_t>(
        rng.UniformInt(0, static_cast<int>(reach.size()) - 1))]);
    return true;
  }
  return false;
}

TEST(IncrementalEvalDifferential, RandomScenariosMatchFreshEvaluate) {
  util::Rng rng(20260806);
  int fallback_scenarios = 0;
  int incremental_scenarios = 0;
  for (int scenario = 0; scenario < 200; ++scenario) {
    const ScenarioConfig cfg = RandomConfig(rng);
    const Network net = RandomNetwork(cfg, rng);
    const EvalOptions opt = OptionsFor(cfg, rng);
    Assignment assign = RandomAssignment(net, rng);

    const Evaluator evaluator(opt);
    IncrementalEvaluator inc(net, assign, opt);
    (inc.incremental() ? incremental_scenarios : fallback_scenarios)++;
    ExpectMatchesFresh(inc, net, assign, evaluator, "initial");

    const int moves = rng.UniformInt(5, 30);
    for (int mv = 0; mv < moves; ++mv) {
      std::size_t user = 0;
      int to = Assignment::kUnassigned;
      if (!RandomMove(net, assign, rng, &user, &to)) break;

      // Peek first: must predict the post-move values and not disturb state.
      const double agg_before = inc.aggregate_mbps();
      const IncrementalValues peeked = inc.PeekMove(user, to);
      ASSERT_DOUBLE_EQ(inc.aggregate_mbps(), agg_before);

      inc.ApplyMove(user, to);
      if (to == Assignment::kUnassigned) {
        assign.Unassign(user);
      } else {
        assign.Assign(user, static_cast<std::size_t>(to));
      }
      EXPECT_NEAR(peeked.aggregate_mbps, inc.aggregate_mbps(), kTol);
      EXPECT_NEAR(peeked.log_utility, inc.log_utility(), kTol);

      if (mv % 7 == 0) {
        ExpectMatchesFresh(inc, net, assign, evaluator, "mid-sequence");
      }
    }
    ExpectMatchesFresh(inc, net, assign, evaluator, "final");
  }
  // The generator must exercise both regimes.
  EXPECT_GT(incremental_scenarios, 0);
  EXPECT_GT(fallback_scenarios, 0);
}

TEST(IncrementalEvalDifferential, PeekSwapMatchesAppliedExchange) {
  util::Rng rng(77);
  int swaps_checked = 0;
  for (int scenario = 0; scenario < 60; ++scenario) {
    const ScenarioConfig cfg = RandomConfig(rng);
    const Network net = RandomNetwork(cfg, rng);
    const EvalOptions opt = OptionsFor(cfg, rng);
    Assignment assign = RandomAssignment(net, rng);
    IncrementalEvaluator inc(net, assign, opt);

    for (int attempt = 0; attempt < 40; ++attempt) {
      const std::size_t u1 = static_cast<std::size_t>(
          rng.UniformInt(0, static_cast<int>(net.NumUsers()) - 1));
      const std::size_t u2 = static_cast<std::size_t>(
          rng.UniformInt(0, static_cast<int>(net.NumUsers()) - 1));
      const int e1 = assign.ExtenderOf(u1);
      const int e2 = assign.ExtenderOf(u2);
      if (e1 == Assignment::kUnassigned || e2 == Assignment::kUnassigned ||
          e1 == e2) {
        continue;
      }
      if (net.WifiRate(u1, static_cast<std::size_t>(e2)) <= 0.0 ||
          net.WifiRate(u2, static_cast<std::size_t>(e1)) <= 0.0) {
        continue;
      }
      const double agg_before = inc.aggregate_mbps();
      const IncrementalValues peeked = inc.PeekSwap(u1, u2);
      ASSERT_DOUBLE_EQ(inc.aggregate_mbps(), agg_before);

      inc.ApplyMove(u1, e2);
      inc.ApplyMove(u2, e1);
      EXPECT_NEAR(peeked.aggregate_mbps, inc.aggregate_mbps(), kTol);
      EXPECT_NEAR(peeked.log_utility, inc.log_utility(), kTol);
      // Revert for the next attempt on this scenario.
      inc.ApplyMove(u2, e2);
      inc.ApplyMove(u1, e1);
      EXPECT_NEAR(inc.aggregate_mbps(), agg_before, kTol);
      ++swaps_checked;
    }
  }
  EXPECT_GT(swaps_checked, 50);
}

TEST(IncrementalEvalDifferential, MoveDeltaIsPeekMinusCurrent) {
  util::Rng rng(5);
  const ScenarioConfig cfg{12, 4, PlcSharing::kMaxMinActive, 2, false, false};
  const Network net = RandomNetwork(cfg, rng);
  Assignment assign = RandomAssignment(net, rng);
  IncrementalEvaluator inc(net, assign, {});
  for (int attempt = 0; attempt < 50; ++attempt) {
    std::size_t user = 0;
    int to = Assignment::kUnassigned;
    if (!RandomMove(net, assign, rng, &user, &to)) break;
    const IncrementalValues peek = inc.PeekMove(user, to);
    const IncrementalValues delta = inc.MoveDelta(user, to);
    EXPECT_NEAR(delta.aggregate_mbps, peek.aggregate_mbps - inc.aggregate_mbps(),
                kTol);
    EXPECT_NEAR(delta.log_utility, peek.log_utility - inc.log_utility(), kTol);
  }
}

TEST(IncrementalEvalDifferential, UntrackedLogUtilityThrows) {
  util::Rng rng(11);
  const ScenarioConfig cfg{8, 3, PlcSharing::kMaxMinActive, 1, false, false};
  const Network net = RandomNetwork(cfg, rng);
  const Assignment assign = RandomAssignment(net, rng);
  IncrementalEvaluator inc(net, assign, {},
                           IncrementalEvaluator::kDefaultLogFloorMbps,
                           /*track_log_utility=*/false);
  EXPECT_THROW(inc.log_utility(), std::logic_error);
  // The aggregate side must be unaffected by the opt-out.
  IncrementalEvaluator tracked(net, assign, {});
  EXPECT_NEAR(inc.aggregate_mbps(), tracked.aggregate_mbps(), kTol);
}

TEST(IncrementalEvalDifferential, MutationsCountsStateChanges) {
  util::Rng rng(13);
  const ScenarioConfig cfg{10, 4, PlcSharing::kMaxMinActive, 1, false, false};
  const Network net = RandomNetwork(cfg, rng);
  Assignment assign(net.NumUsers());
  for (std::size_t i = 0; i < net.NumUsers(); ++i) {
    for (std::size_t j = 0; j < net.NumExtenders(); ++j) {
      if (net.WifiRate(i, j) > 0.0) {
        assign.Assign(i, j);
        break;
      }
    }
  }
  IncrementalEvaluator inc(net, assign, {});
  const std::uint64_t m0 = inc.mutations();
  std::size_t user = 0;
  int to = Assignment::kUnassigned;
  ASSERT_TRUE(RandomMove(net, assign, rng, &user, &to));
  (void)inc.PeekMove(user, to);  // peeks never mutate
  EXPECT_EQ(inc.mutations(), m0);
  inc.ApplyMove(user, to);
  EXPECT_GT(inc.mutations(), m0);
  inc.ApplyMove(user, to);  // no-op move: same target
  EXPECT_EQ(inc.mutations(), m0 + 1);
}

}  // namespace
}  // namespace wolt::model
