// Unit battery for src/obs/: metric primitives (saturation, histogram edge
// cases, registry shape checks, snapshot merge algebra) and the tracer
// (well-formed Chrome trace JSON under nested/overlapping spans, validated
// with a tiny in-test JSON parser — no external JSON dependency).
#include <gtest/gtest.h>

#include <cctype>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <fstream>
#include <limits>
#include <map>
#include <memory>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "obs/metrics.h"
#include "obs/obs.h"
#include "obs/trace.h"

namespace wolt::obs {
namespace {

// --- A minimal recursive-descent JSON parser ----------------------------
// Just enough to validate the two JSON documents this library emits
// (ChromeTraceJson, MetricsSnapshot::Json): objects, arrays, strings
// (escapes limited to what the emitters produce), numbers, literals.
struct JsonValue {
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };
  Kind kind = Kind::kNull;
  bool boolean = false;
  double number = 0.0;
  std::string str;
  std::vector<JsonValue> array;
  std::map<std::string, JsonValue> object;

  const JsonValue& At(const std::string& key) const {
    const auto it = object.find(key);
    if (it == object.end()) throw std::runtime_error("missing key: " + key);
    return it->second;
  }
  bool Has(const std::string& key) const { return object.count(key) > 0; }
};

class JsonParser {
 public:
  explicit JsonParser(const std::string& text) : text_(text) {}

  JsonValue Parse() {
    JsonValue v = ParseValue();
    SkipWs();
    if (pos_ != text_.size()) throw std::runtime_error("trailing junk");
    return v;
  }

 private:
  void SkipWs() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }
  char Peek() {
    SkipWs();
    if (pos_ >= text_.size()) throw std::runtime_error("unexpected end");
    return text_[pos_];
  }
  void Expect(char c) {
    if (Peek() != c) {
      throw std::runtime_error(std::string("expected '") + c + "' at " +
                               std::to_string(pos_));
    }
    ++pos_;
  }

  JsonValue ParseValue() {
    const char c = Peek();
    if (c == '{') return ParseObject();
    if (c == '[') return ParseArray();
    if (c == '"') return ParseString();
    if (c == 't' || c == 'f') return ParseBool();
    if (c == 'n') return ParseNull();
    return ParseNumber();
  }

  JsonValue ParseObject() {
    JsonValue v;
    v.kind = JsonValue::Kind::kObject;
    Expect('{');
    if (Peek() == '}') {
      ++pos_;
      return v;
    }
    while (true) {
      JsonValue key = ParseString();
      Expect(':');
      v.object.emplace(key.str, ParseValue());
      if (Peek() == ',') {
        ++pos_;
        continue;
      }
      Expect('}');
      return v;
    }
  }

  JsonValue ParseArray() {
    JsonValue v;
    v.kind = JsonValue::Kind::kArray;
    Expect('[');
    if (Peek() == ']') {
      ++pos_;
      return v;
    }
    while (true) {
      v.array.push_back(ParseValue());
      if (Peek() == ',') {
        ++pos_;
        continue;
      }
      Expect(']');
      return v;
    }
  }

  JsonValue ParseString() {
    JsonValue v;
    v.kind = JsonValue::Kind::kString;
    Expect('"');
    while (pos_ < text_.size() && text_[pos_] != '"') {
      char c = text_[pos_++];
      if (c == '\\') {
        if (pos_ >= text_.size()) throw std::runtime_error("bad escape");
        const char e = text_[pos_++];
        switch (e) {
          case '"': c = '"'; break;
          case '\\': c = '\\'; break;
          case '/': c = '/'; break;
          case 'n': c = '\n'; break;
          case 't': c = '\t'; break;
          default: throw std::runtime_error("unsupported escape");
        }
      }
      v.str += c;
    }
    if (pos_ >= text_.size()) throw std::runtime_error("unterminated string");
    ++pos_;  // closing quote
    return v;
  }

  JsonValue ParseBool() {
    JsonValue v;
    v.kind = JsonValue::Kind::kBool;
    if (text_.compare(pos_, 4, "true") == 0) {
      v.boolean = true;
      pos_ += 4;
    } else if (text_.compare(pos_, 5, "false") == 0) {
      v.boolean = false;
      pos_ += 5;
    } else {
      throw std::runtime_error("bad literal");
    }
    return v;
  }

  JsonValue ParseNull() {
    if (text_.compare(pos_, 4, "null") != 0) {
      throw std::runtime_error("bad literal");
    }
    pos_ += 4;
    return JsonValue{};
  }

  JsonValue ParseNumber() {
    const std::size_t start = pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '-' || text_[pos_] == '+' || text_[pos_] == '.' ||
            text_[pos_] == 'e' || text_[pos_] == 'E')) {
      ++pos_;
    }
    if (pos_ == start) throw std::runtime_error("bad number");
    JsonValue v;
    v.kind = JsonValue::Kind::kNumber;
    v.number = std::stod(text_.substr(start, pos_ - start));
    return v;
  }

  const std::string& text_;
  std::size_t pos_ = 0;
};

// --- Counter ------------------------------------------------------------

TEST(CounterTest, AddsAndDefaultsToOne) {
  Counter c;
  EXPECT_EQ(c.Value(), 0u);
  c.Add();
  c.Add(41);
  EXPECT_EQ(c.Value(), 42u);
}

TEST(CounterTest, SaturatesInsteadOfWrapping) {
  Counter c;
  const std::uint64_t max = std::numeric_limits<std::uint64_t>::max();
  c.Add(max - 1);
  c.Add(10);  // would wrap
  EXPECT_EQ(c.Value(), max);
  c.Add(1);  // stays pinned
  EXPECT_EQ(c.Value(), max);
}

// --- Gauge --------------------------------------------------------------

TEST(GaugeTest, SetAndMax) {
  Gauge g;
  g.Set(3.5);
  EXPECT_DOUBLE_EQ(g.Value(), 3.5);
  g.Max(2.0);  // lower: no effect
  EXPECT_DOUBLE_EQ(g.Value(), 3.5);
  g.Max(7.0);
  EXPECT_DOUBLE_EQ(g.Value(), 7.0);
}

// --- Histogram ----------------------------------------------------------

TEST(HistogramTest, BucketsUnderflowOverflow) {
  const double bounds[] = {1.0, 10.0, 100.0};
  Histogram h(bounds);
  ASSERT_EQ(h.NumBuckets(), 2u);
  h.Observe(0.5);    // underflow
  h.Observe(1.0);    // [1, 10)
  h.Observe(9.999);  // [1, 10)
  h.Observe(10.0);   // [10, 100)
  h.Observe(100.0);  // overflow (at the last edge)
  h.Observe(1e9);    // overflow
  EXPECT_EQ(h.Underflow(), 1u);
  EXPECT_EQ(h.BucketCount(0), 2u);
  EXPECT_EQ(h.BucketCount(1), 1u);
  EXPECT_EQ(h.Overflow(), 2u);
  EXPECT_EQ(h.Count(), 6u);
}

TEST(HistogramTest, RejectsNaNWithoutCounting) {
  const double bounds[] = {0.0, 1.0};
  Histogram h(bounds);
  h.Observe(std::numeric_limits<double>::quiet_NaN());
  EXPECT_EQ(h.Count(), 0u);
  EXPECT_EQ(h.Rejected(), 1u);
  // Infinities are not NaN: they land in overflow/underflow.
  h.Observe(std::numeric_limits<double>::infinity());
  h.Observe(-std::numeric_limits<double>::infinity());
  EXPECT_EQ(h.Overflow(), 1u);
  EXPECT_EQ(h.Underflow(), 1u);
  EXPECT_EQ(h.Rejected(), 1u);
}

TEST(HistogramTest, RejectsBadBounds) {
  const double one[] = {1.0};
  EXPECT_THROW(Histogram{std::span<const double>(one)},
               std::invalid_argument);
  const double unsorted[] = {2.0, 1.0};
  EXPECT_THROW(Histogram{std::span<const double>(unsorted)},
               std::invalid_argument);
  const double equal[] = {1.0, 1.0};
  EXPECT_THROW(Histogram{std::span<const double>(equal)},
               std::invalid_argument);
  const double nan_edge[] = {0.0, std::numeric_limits<double>::quiet_NaN()};
  EXPECT_THROW(Histogram{std::span<const double>(nan_edge)},
               std::invalid_argument);
  const double inf_edge[] = {0.0, std::numeric_limits<double>::infinity()};
  EXPECT_THROW(Histogram{std::span<const double>(inf_edge)},
               std::invalid_argument);
}

// --- Registry -----------------------------------------------------------

TEST(RegistryTest, FindOrCreateReturnsStableReferences) {
  MetricsRegistry r;
  Counter& a = r.GetCounter("x");
  Counter& b = r.GetCounter("x");
  EXPECT_EQ(&a, &b);
  a.Add(5);
  EXPECT_EQ(r.GetCounter("x").Value(), 5u);
}

TEST(RegistryTest, RejectsShapeConflicts) {
  MetricsRegistry r;
  r.GetCounter("c");
  EXPECT_THROW(r.GetGauge("c"), std::invalid_argument);        // kind clash
  EXPECT_THROW(r.GetCounter("c", true), std::invalid_argument);  // timing
  r.GetHistogram("h", kLatencyBoundsUs);
  const double other[] = {1.0, 2.0};
  EXPECT_THROW(r.GetHistogram("h", other), std::invalid_argument);
  EXPECT_THROW(r.GetCounter(""), std::invalid_argument);
}

TEST(RegistryTest, SnapshotIsSortedAndComplete) {
  MetricsRegistry r;
  r.GetCounter("zeta").Add(1);
  r.GetCounter("alpha").Add(2);
  r.GetGauge("mid").Set(0.5);
  r.GetHistogram("lat", kLatencyBoundsUs, /*timing=*/true).Observe(5.0);
  const MetricsSnapshot snap = r.Snapshot();
  ASSERT_EQ(snap.counters.size(), 2u);
  EXPECT_EQ(snap.counters[0].name, "alpha");
  EXPECT_EQ(snap.counters[1].name, "zeta");
  ASSERT_EQ(snap.histograms.size(), 1u);
  EXPECT_TRUE(snap.histograms[0].timing);
  EXPECT_EQ(snap.histograms[0].counts[0], 1u);
}

// --- Snapshot merge algebra ---------------------------------------------

TEST(SnapshotTest, MergeAddsCountersMaxesGaugesFoldsHistograms) {
  MetricsRegistry r1, r2;
  r1.GetCounter("c").Add(3);
  r2.GetCounter("c").Add(4);
  r2.GetCounter("only2").Add(7);
  r1.GetGauge("g").Set(2.0);
  r2.GetGauge("g").Set(5.0);
  r1.GetHistogram("h", kLatencyBoundsUs).Observe(5.0);
  r2.GetHistogram("h", kLatencyBoundsUs).Observe(50.0);

  MetricsSnapshot merged = r1.Snapshot();
  merged.Merge(r2.Snapshot());
  EXPECT_EQ(merged.counters[0].value, 7u);   // c
  EXPECT_EQ(merged.counters[1].value, 7u);   // only2 (adopted)
  EXPECT_DOUBLE_EQ(merged.gauges[0].value, 5.0);
  EXPECT_EQ(merged.histograms[0].counts[0], 1u);
  EXPECT_EQ(merged.histograms[0].counts[1], 1u);
}

TEST(SnapshotTest, MergeSaturates) {
  MetricsRegistry r1, r2;
  r1.GetCounter("c").Add(std::numeric_limits<std::uint64_t>::max() - 1);
  r2.GetCounter("c").Add(100);
  MetricsSnapshot merged = r1.Snapshot();
  merged.Merge(r2.Snapshot());
  EXPECT_EQ(merged.counters[0].value,
            std::numeric_limits<std::uint64_t>::max());
}

TEST(SnapshotTest, MergeRejectsShapeConflicts) {
  MetricsRegistry r1, r2, r3;
  r1.GetCounter("x");
  r2.GetCounter("x", /*timing=*/true);  // timing-flag clash
  MetricsSnapshot a = r1.Snapshot();
  EXPECT_THROW(a.Merge(r2.Snapshot()), std::invalid_argument);
  r1.GetHistogram("h", kLatencyBoundsUs);
  const double other[] = {1.0, 2.0};
  r3.GetHistogram("h", other);  // bounds clash
  MetricsSnapshot b = r1.Snapshot();
  EXPECT_THROW(b.Merge(r3.Snapshot()), std::invalid_argument);
  // A name reused across kinds is NOT a merge conflict: counters and gauges
  // live in separate sections, so both entries survive side by side (the
  // registry forbids the reuse within one process; two independent
  // registries may legitimately disagree).
  MetricsRegistry r4;
  r4.GetGauge("x").Set(1.0);
  MetricsSnapshot c = r1.Snapshot();
  EXPECT_NO_THROW(c.Merge(r4.Snapshot()));
}

TEST(SnapshotTest, JsonQuarantinesTimingSection) {
  MetricsRegistry r;
  r.GetCounter("det").Add(1);
  r.GetCounter("wall", /*timing=*/true).Add(2);
  r.GetHistogram("lat", kLatencyBoundsUs, /*timing=*/true).Observe(3.0);
  const MetricsSnapshot snap = r.Snapshot();

  const JsonValue with = JsonParser(snap.Json(true)).Parse();
  EXPECT_TRUE(with.At("counters").Has("det"));
  EXPECT_FALSE(with.At("counters").Has("wall"));
  EXPECT_TRUE(with.At("timing").At("counters").Has("wall"));
  EXPECT_TRUE(with.At("timing").At("histograms").Has("lat"));

  const JsonValue without = JsonParser(snap.DeterministicJson()).Parse();
  EXPECT_FALSE(without.Has("timing"));
  EXPECT_TRUE(without.At("counters").Has("det"));
}

// --- Hook layer ---------------------------------------------------------

TEST(ScopeTest, InstallsAndRestoresNested) {
#if WOLT_OBS_ENABLED
  EXPECT_EQ(CurrentScope(), nullptr);
  MetricsRegistry outer_reg, inner_reg;
  {
    ScopedMetrics outer(outer_reg);
    CurrentScope()->solver.hungarian_solves.Add(1);
    {
      ScopedMetrics inner(inner_reg);  // shadows, does not merge
      CurrentScope()->solver.hungarian_solves.Add(10);
    }
    CurrentScope()->solver.hungarian_solves.Add(1);
  }
  EXPECT_EQ(CurrentScope(), nullptr);
  EXPECT_EQ(outer_reg.GetCounter("hungarian.solves").Value(), 2u);
  EXPECT_EQ(inner_reg.GetCounter("hungarian.solves").Value(), 10u);
#else
  EXPECT_EQ(CurrentScope(), nullptr);
#endif
}

TEST(ScopeTest, ScopeIsThreadLocal) {
#if WOLT_OBS_ENABLED
  MetricsRegistry reg;
  ScopedMetrics scoped(reg);
  bool other_thread_saw_scope = true;
  std::thread([&] { other_thread_saw_scope = CurrentScope() != nullptr; })
      .join();
  EXPECT_FALSE(other_thread_saw_scope);
  EXPECT_NE(CurrentScope(), nullptr);
#endif
}

// --- Tracer -------------------------------------------------------------

TEST(TracerTest, RecordsNestedAndOverlappingSpansAsValidChromeTrace) {
  Tracer tracer;
  {
    ScopedTimer outer("outer", "test", &tracer);
    { ScopedTimer inner("inner", "test", &tracer); }
    { ScopedTimer inner2("inner2", "test", &tracer); }
  }
  // A span recorded from another thread gets its own lane (tid).
  std::thread([&] { ScopedTimer t("worker", "test", &tracer); }).join();

  ASSERT_EQ(tracer.NumEvents(), 4u);
  const JsonValue doc = JsonParser(tracer.ChromeTraceJson()).Parse();
  const JsonValue& events = doc.At("traceEvents");
  ASSERT_EQ(events.array.size(), 4u);

  std::map<std::string, const JsonValue*> by_name;
  for (const JsonValue& e : events.array) {
    EXPECT_EQ(e.At("ph").str, "X");
    EXPECT_EQ(e.At("cat").str, "test");
    EXPECT_GE(e.At("ts").number, 0.0);
    EXPECT_GE(e.At("dur").number, 0.0);
    EXPECT_EQ(e.At("pid").number, 1.0);
    by_name[e.At("name").str] = &e;
  }
  ASSERT_TRUE(by_name.count("outer") && by_name.count("inner") &&
              by_name.count("inner2") && by_name.count("worker"));

  // Exact containment: children start no earlier and end no later than the
  // parent (both endpoints read the same trace clock).
  const auto begin = [](const JsonValue* e) { return e->At("ts").number; };
  const auto end = [](const JsonValue* e) {
    return e->At("ts").number + e->At("dur").number;
  };
  const JsonValue* outer = by_name["outer"];
  for (const char* child : {"inner", "inner2"}) {
    EXPECT_GE(begin(by_name[child]), begin(outer)) << child;
    EXPECT_LE(end(by_name[child]), end(outer)) << child;
  }
  // The two siblings do not overlap.
  EXPECT_LE(end(by_name["inner"]), begin(by_name["inner2"]));
  // The cross-thread span sits in a different lane.
  EXPECT_NE(by_name["worker"]->At("tid").number,
            by_name["outer"]->At("tid").number);
}

TEST(TracerTest, DeepNestingFuzz) {
  // 64 spans nested 8 deep, interleaved with siblings; every event must
  // parse and every child must be contained by its parent.
  Tracer tracer;
  std::function<void(int)> recurse = [&](int depth) {
    ScopedTimer t("d" + std::to_string(depth), "fuzz", &tracer);
    if (depth >= 8) return;
    recurse(depth + 1);
    recurse(depth + 1);
  };
  recurse(1);
  const JsonValue doc = JsonParser(tracer.ChromeTraceJson()).Parse();
  const auto& events = doc.At("traceEvents").array;
  EXPECT_EQ(events.size(), 255u);  // 2^8 - 1 spans
  // Stack-check containment: sort is unnecessary — Tracer records in
  // destruction order, so replay and verify with an explicit stack.
  for (const JsonValue& e : events) {
    EXPECT_GE(e.At("ts").number, 0.0);
    EXPECT_GE(e.At("dur").number, 0.0);
  }
}

TEST(TracerTest, SpanFeedsLatencyHistogram) {
  const double bounds[] = {0.0, 1e9};
  Histogram h(bounds);
  { ScopedTimer t("span", "test", nullptr, &h); }
  EXPECT_EQ(h.Count(), 1u);
}

TEST(TracerTest, InertWithoutSinks) {
  ScopedTimer t("noop", "test", nullptr, nullptr);
  EXPECT_FALSE(t.active());
}

TEST(TracerTest, GlobalInstallUninstall) {
  EXPECT_EQ(Tracer::Global(), nullptr);
  {
    Tracer tracer;
    Tracer::SetGlobal(&tracer);
    { ScopedTimer t("global-span", "test"); }
    Tracer::SetGlobal(nullptr);
    EXPECT_EQ(tracer.NumEvents(), 1u);
  }
  EXPECT_EQ(Tracer::Global(), nullptr);
}

TEST(RegistryTest, GaugeLookupReturnsExistingSlot) {
  MetricsRegistry registry;
  Gauge& first = registry.GetGauge("sweep.threads");
  Gauge& second = registry.GetGauge("sweep.threads");
  EXPECT_EQ(&first, &second);
}

TEST(RegistryTest, DefaultIsAProcessSingleton) {
  EXPECT_EQ(&MetricsRegistry::Default(), &MetricsRegistry::Default());
}

TEST(SnapshotTest, JsonEscapesHostileMetricNames) {
  // Names are identifier-like by convention, but the serializer must stay
  // total for any string: quotes, backslashes, whitespace controls, and
  // sub-0x20 bytes all need escaping or the JSON document is corrupt.
  MetricsRegistry registry;
  registry.GetCounter("a\"b\\c\nd\te\rf\x01g").Add(7);
  const std::string json = registry.Snapshot().Json(false);
  EXPECT_NE(json.find("a\\\"b\\\\c\\nd\\te\\rf\\u0001g"), std::string::npos)
      << json;
  // The in-test parser understands the common escapes; the exotic ones are
  // asserted on the raw text above.
  MetricsRegistry plain;
  plain.GetCounter("quote\"and\\slash").Add(1);
  const JsonValue doc = JsonParser(plain.Snapshot().Json(false)).Parse();
  EXPECT_EQ(doc.At("counters").At("quote\"and\\slash").number, 1.0);
}

TEST(SnapshotTest, TableStringRendersEverySection) {
  MetricsRegistry registry;
  registry.GetCounter("ls.moves").Add(5);
  registry.GetGauge("sweep.threads", /*timing=*/true).Set(4.0);
  const double bounds[] = {0.0, 10.0, 100.0};
  Histogram& h = registry.GetHistogram("eval.latency_us", bounds);
  h.Observe(-1.0);   // underflow
  h.Observe(5.0);    // bucket 0
  h.Observe(1e6);    // overflow
  const std::string table = registry.Snapshot().TableString();
  EXPECT_NE(table.find("ls.moves"), std::string::npos) << table;
  EXPECT_NE(table.find("sweep.threads"), std::string::npos);
  EXPECT_NE(table.find("eval.latency_us"), std::string::npos);
  EXPECT_NE(table.find("yes"), std::string::npos);  // timing column marker
}

TEST(SnapshotTest, TableStringEmptyWhenNoMetrics) {
  MetricsRegistry registry;
  EXPECT_TRUE(registry.Snapshot().TableString().empty());
}

TEST(TracerTest, EventsAccessorCopiesRecordedSpans) {
  Tracer tracer;
  tracer.Record("alpha", "cat", 1.0, 2.0, 0);
  tracer.Record("beta", "cat", 4.0, 1.0, 3);
  const std::vector<TraceEvent> events = tracer.Events();
  ASSERT_EQ(events.size(), 2u);
  EXPECT_EQ(events[0].name, "alpha");
  EXPECT_EQ(events[1].tid, 3);
  EXPECT_DOUBLE_EQ(events[1].ts_us, 4.0);
}

TEST(TracerTest, ChromeJsonEscapesHostileSpanNames) {
  Tracer tracer;
  tracer.Record("a\"b\\c\nd\te\rf\x02g", "cat\"x", 0.0, 1.0, 0);
  const std::string json = tracer.ChromeTraceJson();
  EXPECT_NE(json.find("a\\\"b\\\\c\\nd\\te\\rf\\u0002g"), std::string::npos)
      << json;
  EXPECT_NE(json.find("cat\\\"x"), std::string::npos);
}

TEST(TracerTest, WriteChromeTraceRoundTripsThroughFile) {
  Tracer tracer;
  { ScopedTimer t("disk-span", "test", &tracer); }
  const std::string path = testing::TempDir() + "obs_trace_roundtrip.json";
  ASSERT_TRUE(tracer.WriteChromeTrace(path));
  std::ifstream in(path, std::ios::binary);
  ASSERT_TRUE(in);
  std::string contents((std::istreambuf_iterator<char>(in)),
                       std::istreambuf_iterator<char>());
  EXPECT_EQ(contents, tracer.ChromeTraceJson());
  std::remove(path.c_str());
}

TEST(TracerTest, WriteChromeTraceFailsOnBadPath) {
  Tracer tracer;
  EXPECT_FALSE(tracer.WriteChromeTrace("/nonexistent-dir/trace.json"));
}

TEST(TracerTest, SummaryTableAggregatesByName) {
  Tracer tracer;
  { ScopedTimer a("alpha", "test", &tracer); }
  { ScopedTimer b("alpha", "test", &tracer); }
  { ScopedTimer c("beta", "test", &tracer); }
  const std::string table = tracer.SummaryTableString();
  EXPECT_NE(table.find("alpha"), std::string::npos);
  EXPECT_NE(table.find("beta"), std::string::npos);
  EXPECT_NE(table.find("2"), std::string::npos);  // alpha count
}

}  // namespace
}  // namespace wolt::obs
