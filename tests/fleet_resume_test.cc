// Kill-anywhere crash/resume property for the journaled fleet runtime,
// modeled on crash_resume_test.cc (the sweep engine's harness).
//
// Each round forks this binary (fork + execve of /proc/self/exe; a static
// initializer in the child detects the WOLT_FLEET_CRASH_* environment and
// runs a journaled fleet instead of gtest), SIGKILLs the child from inside
// the journal's after-append hook at a randomized append count, then
// resumes the journal in-process and byte-compares FleetResult::Report()
// against an uninterrupted golden run. Rounds cycle thread counts 1/2/4/8
// and some rounds additionally tear the journal tail (truncation or
// appended garbage) or crash a second time during the resume itself.
#include <gtest/gtest.h>

#include <csignal>
#include <cstdint>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <string>

#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include "fleet/runtime.h"
#include "recover/fleet_journal.h"
#include "util/rng.h"

namespace wolt::fleet {
namespace {

namespace fs = std::filesystem;

constexpr std::size_t kShards = 8;
constexpr std::uint64_t kRounds = 12;

// Small but adversarial: chaos wire + churn, one permanently wedged shard
// (so resume must also reconstruct supervisor state: backoff, breaker
// history, held directives), overload shedding, and a tight reopt budget.
FleetParams CrashFleetParams(int threads) {
  FleetParams p;
  p.num_shards = kShards;
  p.rounds = kRounds;
  p.threads = threads;
  p.queue_capacity = kShards * 6;
  p.batch_per_shard = 8;
  p.chaos_from = 2;
  p.chaos_to = 10;
  fault::WireFaults w;
  w.loss = 0.05;
  w.duplicate = 0.05;
  w.corrupt = 0.15;
  p.shard.wire = fault::FaultPlaneParams::Uniform(w);
  p.shard.plc_crash_prob = 0.12;
  p.shard.departure_prob = 0.08;
  p.poison_shards = {3};
  p.poison_from = 2;
  p.poison_to = ~std::uint64_t{0};
  p.supervisor.backoff_initial = 1;
  p.supervisor.crash_loop_threshold = 2;
  p.supervisor.crash_loop_window = 8;
  p.supervisor.probe_after = 5;
  p.reopt_units_per_round = kShards * 2;
  return p;
}

constexpr std::uint64_t kFleetSeed = 0xF1EE7C4A5ULL;

// Appends per completed round: one record per shard, one fleet record, one
// snapshot (snapshot_every=1). Plus the header frame.
constexpr std::size_t kAppendsPerRound = kShards + 2;
constexpr std::size_t kTotalAppends = 1 + kRounds * kAppendsPerRound;

// Crash-child mode: when WOLT_FLEET_CRASH_JOURNAL is set, this process is
// a forked copy meant to run the journaled fleet and die. The static
// initializer runs before gtest's main, so the child never prints gtest
// output or runs tests.
const bool kCrashChildRan = [] {
  const char* journal = std::getenv("WOLT_FLEET_CRASH_JOURNAL");
  if (journal == nullptr) return false;
  const char* kill_at_env = std::getenv("WOLT_FLEET_CRASH_KILL_AT");
  const char* threads_env = std::getenv("WOLT_FLEET_CRASH_THREADS");
  const std::size_t kill_at =
      kill_at_env ? std::strtoull(kill_at_env, nullptr, 10) : 1;
  const int threads = threads_env ? std::atoi(threads_env) : 1;

  FleetParams p = CrashFleetParams(threads);
  p.journal_path = journal;
  p.resume = std::getenv("WOLT_FLEET_CRASH_RESUME") != nullptr;
  p.after_journal_append = [kill_at](std::size_t appends) {
    if (appends == kill_at) {
      // Die with no warning, mid-round, possibly mid-snapshot-window.
      kill(getpid(), SIGKILL);
    }
  };
  FleetRuntime fleet(p, kFleetSeed);
  const FleetResult result = fleet.Run();
  // Resume rejected / journal unusable — the parent asserts on exit 3.
  if (!result.completed) std::_Exit(3);
  std::_Exit(0);  // kill point not reached (fewer appends left than kill_at)
}();

// Fork + exec ourselves in crash-child mode. Returns the child pid.
pid_t SpawnCrashChild(const std::string& journal, std::size_t kill_at,
                      int threads, bool resume) {
  const pid_t pid = fork();
  if (pid != 0) return pid;
  setenv("WOLT_FLEET_CRASH_JOURNAL", journal.c_str(), 1);
  setenv("WOLT_FLEET_CRASH_KILL_AT", std::to_string(kill_at).c_str(), 1);
  setenv("WOLT_FLEET_CRASH_THREADS", std::to_string(threads).c_str(), 1);
  if (resume) {
    setenv("WOLT_FLEET_CRASH_RESUME", "1", 1);
  } else {
    unsetenv("WOLT_FLEET_CRASH_RESUME");
  }
  // execve a fresh copy: the child re-runs static initializers (where the
  // crash-mode branch lives) with a clean runtime — required under TSan,
  // which does not support running threads in a forked child otherwise.
  execl("/proc/self/exe", "/proc/self/exe", static_cast<char*>(nullptr));
  _exit(127);
}

// Waits for the child and asserts it died by SIGKILL (kill point reached)
// or exited 0 (fleet finished before the kill point). Returns true iff it
// was killed.
bool AwaitChild(pid_t pid) {
  int status = 0;
  EXPECT_EQ(waitpid(pid, &status, 0), pid);
  if (WIFSIGNALED(status)) {
    EXPECT_EQ(WTERMSIG(status), SIGKILL);
    return true;
  }
  EXPECT_TRUE(WIFEXITED(status)) << "child neither exited nor was killed";
  EXPECT_EQ(WEXITSTATUS(status), 0) << "crash child failed outright";
  return false;
}

#if defined(__SANITIZE_ADDRESS__) || defined(__SANITIZE_THREAD__)
constexpr int kCrashRounds = 12;  // process spawns are slow under sanitizers
#else
constexpr int kCrashRounds = 40;
#endif

TEST(FleetCrashResume, KillAnywhereResumesByteIdentical) {
  const int thread_cycle[4] = {1, 2, 4, 8};
  std::string golden[4];
  for (int t = 0; t < 4; ++t) {
    FleetRuntime fleet(CrashFleetParams(thread_cycle[t]), kFleetSeed);
    const FleetResult result = fleet.Run();
    ASSERT_TRUE(result.completed) << result.error;
    golden[t] = result.Report();
    // Thread-count independence of the golden itself (belt and braces; the
    // fleet determinism test owns this property).
    EXPECT_EQ(golden[t], golden[0]);
  }

  util::Rng rng(20260807);
  const std::string dir =
      (fs::temp_directory_path() / "wolt_fleet_crash_resume").string();
  fs::create_directories(dir);

  for (int round = 0; round < kCrashRounds; ++round) {
    const int threads = thread_cycle[round % 4];
    const std::string journal =
        dir + "/round_" + std::to_string(round) + ".wal";
    // >= 2 so the tail-tear phases can never eat into the header frame.
    const std::size_t kill_at = static_cast<std::size_t>(
        rng.UniformInt(2, static_cast<int>(kTotalAppends)));

    // Phase 1: fresh journaled run, SIGKILLed at the kill_at-th append.
    const bool killed =
        AwaitChild(SpawnCrashChild(journal, kill_at, threads, false));
    ASSERT_TRUE(killed) << "fresh run must reach its kill point";

    // Phase 2 (some rounds): hand-tear the journal tail — a mid-frame
    // crash the SIGKILL-between-appends hook cannot produce on its own.
    if (round % 3 == 1) {
      std::error_code ec;
      const std::uint64_t size = fs::file_size(journal, ec);
      ASSERT_FALSE(ec);
      if (size > 5) fs::resize_file(journal, size - 5, ec);
    } else if (round % 3 == 2) {
      std::ofstream out(journal, std::ios::binary | std::ios::app);
      out << "torn-garbage-from-a-dying-disk";
    }

    // Phase 3 (every other round): crash again, this time mid-resume.
    if (round % 2 == 1) {
      const std::size_t kill_again =
          static_cast<std::size_t>(rng.UniformInt(1, kAppendsPerRound));
      AwaitChild(SpawnCrashChild(journal, kill_again, threads, true));
    }

    // Phase 4: resume to completion in-process and byte-compare.
    FleetParams p = CrashFleetParams(threads);
    p.journal_path = journal;
    p.resume = true;
    FleetRuntime fleet(p, kFleetSeed);
    const FleetResult resumed = fleet.Run();
    ASSERT_TRUE(resumed.completed) << "round " << round << ": "
                                   << resumed.error;
    EXPECT_LE(resumed.resumed_rounds, kRounds) << "round " << round;
    EXPECT_EQ(resumed.Report(), golden[round % 4]) << "round " << round;

    // The final journal must itself be a complete, clean record of the
    // run: a checkpoint after the last round and every record present.
    const recover::FleetJournalReadResult check =
        recover::ReadFleetJournal(journal);
    ASSERT_TRUE(check.ok) << "round " << round << ": " << check.error;
    EXPECT_EQ(check.torn_bytes, 0u) << "round " << round;
    ASSERT_TRUE(check.has_checkpoint) << "round " << round;
    EXPECT_EQ(check.checkpoint_round, kRounds - 1) << "round " << round;
    EXPECT_EQ(check.shard_records.size(), kShards * kRounds)
        << "round " << round;
    EXPECT_EQ(check.fleet_records.size(), kRounds) << "round " << round;

    fs::remove(journal);
  }
  fs::remove_all(dir);
}

TEST(FleetCrashResume, ResumeRejectsForeignJournal) {
  const std::string path =
      (fs::temp_directory_path() / "wolt_fleet_foreign.wal").string();
  // Journal under a different seed => different fingerprint.
  {
    FleetParams p = CrashFleetParams(1);
    p.journal_path = path;
    FleetRuntime fleet(p, kFleetSeed + 1);
    ASSERT_TRUE(fleet.Run().completed);
  }
  FleetParams p = CrashFleetParams(1);
  p.journal_path = path;
  p.resume = true;
  FleetRuntime fleet(p, kFleetSeed);
  const FleetResult result = fleet.Run();
  EXPECT_FALSE(result.completed);
  EXPECT_NE(result.error.find("fingerprint"), std::string::npos)
      << result.error;
  fs::remove(path);
}

TEST(FleetCrashResume, ResumeOfCompletedRunReExecutesNothing) {
  const std::string path =
      (fs::temp_directory_path() / "wolt_fleet_complete.wal").string();
  std::string want;
  {
    FleetParams p = CrashFleetParams(2);
    p.journal_path = path;
    FleetRuntime fleet(p, kFleetSeed);
    const FleetResult result = fleet.Run();
    ASSERT_TRUE(result.completed) << result.error;
    want = result.Report();
  }
  FleetParams p = CrashFleetParams(2);
  p.journal_path = path;
  p.resume = true;
  std::size_t appended = 0;
  p.after_journal_append = [&](std::size_t) { ++appended; };
  FleetRuntime fleet(p, kFleetSeed);
  const FleetResult resumed = fleet.Run();
  ASSERT_TRUE(resumed.completed) << resumed.error;
  EXPECT_EQ(resumed.resumed_rounds, kRounds);  // every round restored
  EXPECT_EQ(appended, 0u);                     // nothing re-journaled
  EXPECT_EQ(resumed.Report(), want);
  fs::remove(path);
}

}  // namespace
}  // namespace wolt::fleet
