#include "assign/brute_force.h"

#include <gtest/gtest.h>

#include <stdexcept>

#include "testbed/lab.h"
#include "util/rng.h"

namespace wolt::assign {
namespace {

TEST(BruteForceTest, CaseStudyOptimumIs40) {
  const model::Network net = testbed::CaseStudyNetwork();
  const BruteForceResult r = SolveBruteForce(net);
  EXPECT_NEAR(r.best_aggregate_mbps, 40.0, 1e-9);
  EXPECT_EQ(r.best.ExtenderOf(0), 1);
  EXPECT_EQ(r.best.ExtenderOf(1), 0);
  EXPECT_EQ(r.evaluated, 4u);  // 2^2 complete assignments
}

TEST(BruteForceTest, RespectsReachability) {
  model::Network net(2, 2);
  net.SetPlcRate(0, 100.0);
  net.SetPlcRate(1, 100.0);
  net.SetWifiRate(0, 0, 10.0);  // user0 only reaches ext0
  net.SetWifiRate(1, 1, 20.0);  // user1 only reaches ext1
  const BruteForceResult r = SolveBruteForce(net);
  EXPECT_EQ(r.best.ExtenderOf(0), 0);
  EXPECT_EQ(r.best.ExtenderOf(1), 1);
  EXPECT_EQ(r.evaluated, 1u);  // only one feasible complete assignment
}

TEST(BruteForceTest, RespectsCapacityLimits) {
  model::Network net(2, 2);
  net.SetPlcRate(0, 100.0);
  net.SetPlcRate(1, 100.0);
  for (std::size_t i = 0; i < 2; ++i) {
    net.SetWifiRate(i, 0, 50.0);
    net.SetWifiRate(i, 1, 5.0);
  }
  net.SetMaxUsers(0, 1);  // both users would prefer ext0, only one fits
  const BruteForceResult r = SolveBruteForce(net);
  const std::vector<int> load = r.best.LoadVector(2);
  EXPECT_LE(load[0], 1);
}

TEST(BruteForceTest, AllowUnassignedFindsRelaxedOptimum) {
  // Two users on one extender where the second user only hurts: the relaxed
  // search (constraint (7) dropped) leaves the slow user out.
  model::Network net(2, 1);
  net.SetPlcRate(0, 1000.0);
  net.SetWifiRate(0, 0, 50.0);
  net.SetWifiRate(1, 0, 1.0);
  BruteForceOptions opts;
  opts.allow_unassigned = true;
  const BruteForceResult r = SolveBruteForce(net, opts);
  EXPECT_NEAR(r.best_aggregate_mbps, 50.0, 1e-9);
  EXPECT_FALSE(r.best.IsAssigned(1));
}

TEST(BruteForceTest, ThrowsWhenSpaceTooLarge) {
  model::Network net(30, 10);
  for (std::size_t j = 0; j < 10; ++j) net.SetPlcRate(j, 100.0);
  for (std::size_t i = 0; i < 30; ++i) {
    for (std::size_t j = 0; j < 10; ++j) net.SetWifiRate(i, j, 10.0);
  }
  EXPECT_THROW(SolveBruteForce(net), std::invalid_argument);
}

TEST(BruteForceTest, ThrowsWhenNoFeasibleAssignment) {
  model::Network net(1, 1);
  net.SetPlcRate(0, 100.0);
  // user unreachable
  EXPECT_THROW(SolveBruteForce(net), std::runtime_error);
}

TEST(BruteForceTest, PinnedUsersStayPut) {
  const model::Network net = testbed::CaseStudyNetwork();
  model::Assignment pinned(2);
  pinned.Assign(0, 0);  // force user0 onto extender0
  const model::Evaluator evaluator;
  const BruteForceResult r = SolveBruteForceObjective(
      net, pinned,
      [&](const model::Assignment& a) {
        return evaluator.AggregateThroughput(net, a);
      });
  EXPECT_EQ(r.best.ExtenderOf(0), 0);
  // Best completion: user1 -> ext1 (the greedy outcome, 30 Mbps).
  EXPECT_EQ(r.best.ExtenderOf(1), 1);
  EXPECT_NEAR(r.best_aggregate_mbps, 30.0, 1e-9);
}

TEST(BruteForceTest, CustomObjectiveIsHonoured) {
  const model::Network net = testbed::CaseStudyNetwork();
  const model::Assignment none(2);
  // Minimize aggregate (via negation): worst complete assignment puts both
  // users on extender 2.
  const BruteForceResult r = SolveBruteForceObjective(
      net, none, [&](const model::Assignment& a) {
        return -model::Evaluator().AggregateThroughput(net, a);
      });
  const double worst = -r.best_aggregate_mbps;
  EXPECT_LE(worst, 20.0 + 1e-9);
}

TEST(BruteForceTest, OptimumAtLeastAnyHeuristic) {
  // Property: on random small instances the brute-force optimum dominates
  // an arbitrary (best-rate) assignment.
  for (int seed = 1; seed <= 20; ++seed) {
    util::Rng rng(static_cast<std::uint64_t>(seed) * 31);
    model::Network net(4, 3);
    for (std::size_t j = 0; j < 3; ++j) {
      net.SetPlcRate(j, rng.Uniform(20.0, 160.0));
    }
    for (std::size_t i = 0; i < 4; ++i) {
      for (std::size_t j = 0; j < 3; ++j) {
        net.SetWifiRate(i, j, rng.Uniform(5.0, 65.0));
      }
    }
    model::Assignment best_rate(4);
    for (std::size_t i = 0; i < 4; ++i) {
      best_rate.Assign(i, *net.BestRateExtender(i));
    }
    const BruteForceResult r = SolveBruteForce(net);
    EXPECT_GE(r.best_aggregate_mbps,
              model::Evaluator().AggregateThroughput(net, best_rate) - 1e-9)
        << "seed=" << seed;
  }
}

}  // namespace
}  // namespace wolt::assign
