// Tests for the finite-demand extension: demand-aware WiFi cell allocation,
// capped TCP re-sharing, and end-to-end evaluation with offered loads.
#include <gtest/gtest.h>

#include <stdexcept>
#include <vector>

#include "model/evaluator.h"
#include "testbed/lab.h"
#include "util/rng.h"
#include "util/stats.h"

namespace wolt::model {
namespace {

TEST(WifiCellAllocationTest, SaturatedReducesToEq1) {
  const std::vector<double> rates = {15.0, 40.0};
  const std::vector<double> saturated = {0.0, 0.0};
  const CellAllocation alloc = WifiCellAllocation(rates, saturated);
  EXPECT_NEAR(alloc.total_mbps, WifiCellThroughput(rates), 1e-9);
  // Throughput-fair: equal shares.
  EXPECT_NEAR(alloc.user_throughput_mbps[0], alloc.user_throughput_mbps[1],
              1e-9);
}

TEST(WifiCellAllocationTest, LightDemandFreezesAndReleasesAirtime) {
  // User 0 wants only 2 Mbit/s; user 1 (saturated) gets the released air.
  const std::vector<double> rates = {15.0, 40.0};
  const std::vector<double> demands = {2.0, 0.0};
  const CellAllocation alloc = WifiCellAllocation(rates, demands);
  EXPECT_NEAR(alloc.user_throughput_mbps[0], 2.0, 1e-9);
  // Remaining airtime 1 - 2/15; user 1 alone: x = airtime * 40.
  EXPECT_NEAR(alloc.user_throughput_mbps[1], (1.0 - 2.0 / 15.0) * 40.0,
              1e-9);
  EXPECT_GT(alloc.total_mbps, WifiCellThroughput(rates));
}

TEST(WifiCellAllocationTest, AllDemandsTinyLeavesAirtimeUnused) {
  const std::vector<double> rates = {30.0, 30.0};
  const std::vector<double> demands = {1.0, 2.0};
  const CellAllocation alloc = WifiCellAllocation(rates, demands);
  EXPECT_NEAR(alloc.user_throughput_mbps[0], 1.0, 1e-9);
  EXPECT_NEAR(alloc.user_throughput_mbps[1], 2.0, 1e-9);
  EXPECT_NEAR(alloc.total_mbps, 3.0, 1e-9);
}

TEST(WifiCellAllocationTest, AirtimeBudgetScalesThroughput) {
  const std::vector<double> rates = {40.0};
  const std::vector<double> demands = {0.0};
  const CellAllocation full = WifiCellAllocation(rates, demands, 1.0);
  const CellAllocation half = WifiCellAllocation(rates, demands, 0.5);
  EXPECT_NEAR(half.total_mbps, full.total_mbps / 2.0, 1e-9);
}

TEST(WifiCellAllocationTest, InputValidation) {
  EXPECT_THROW(WifiCellAllocation({10.0}, {1.0, 2.0}),
               std::invalid_argument);
  EXPECT_THROW(WifiCellAllocation({0.0}, {1.0}), std::invalid_argument);
  EXPECT_THROW(WifiCellAllocation({10.0}, {-1.0}), std::invalid_argument);
  EXPECT_THROW(WifiCellAllocation({10.0}, {0.0}, 1.5),
               std::invalid_argument);
  EXPECT_EQ(WifiCellAllocation({}, {}).total_mbps, 0.0);
}

TEST(MaxMinWithCapsTest, EqualSplitWhenCapsLoose) {
  const std::vector<double> out = MaxMinWithCaps({10.0, 10.0}, 10.0);
  EXPECT_NEAR(out[0], 5.0, 1e-9);
  EXPECT_NEAR(out[1], 5.0, 1e-9);
}

TEST(MaxMinWithCapsTest, SmallCapReleasesToOthers) {
  const std::vector<double> out = MaxMinWithCaps({2.0, 10.0}, 10.0);
  EXPECT_NEAR(out[0], 2.0, 1e-9);
  EXPECT_NEAR(out[1], 8.0, 1e-9);
}

TEST(MaxMinWithCapsTest, TotalBoundedBySumOfCaps) {
  const std::vector<double> out = MaxMinWithCaps({2.0, 3.0}, 100.0);
  EXPECT_NEAR(out[0] + out[1], 5.0, 1e-9);
}

TEST(MaxMinWithCapsTest, EdgeCases) {
  EXPECT_TRUE(MaxMinWithCaps({}, 5.0).empty());
  const std::vector<double> zero_total = MaxMinWithCaps({1.0}, 0.0);
  EXPECT_DOUBLE_EQ(zero_total[0], 0.0);
  EXPECT_THROW(MaxMinWithCaps({-1.0}, 1.0), std::invalid_argument);
}

// --- End-to-end evaluation with demands ---

TEST(DemandEvaluatorTest, DemandsCapUserThroughput) {
  Network net = testbed::CaseStudyNetwork();
  net.SetUserDemand(1, 5.0);  // user 2 only needs 5 Mbit/s
  Assignment a(2);
  a.Assign(0, 1);
  a.Assign(1, 0);  // the Fig. 3d optimal configuration
  const EvalResult r = Evaluator().Evaluate(net, a);
  EXPECT_NEAR(r.user_throughput_mbps[1], 5.0, 1e-9);
  // User 1 keeps its PLC-capped 10.
  EXPECT_NEAR(r.user_throughput_mbps[0], 10.0, 1e-9);
  EXPECT_NEAR(r.aggregate_mbps, 15.0, 1e-9);
}

TEST(DemandEvaluatorTest, ReleasedWifiAirtimeHelpsCellPeers) {
  // Two users on one extender with a huge PLC link: the light user's spare
  // airtime flows to the saturated one.
  Network net(2, 1);
  net.SetPlcRate(0, 1000.0);
  net.SetWifiRate(0, 0, 15.0);
  net.SetWifiRate(1, 0, 40.0);
  net.SetUserDemand(0, 2.0);
  Assignment a(2);
  a.Assign(0, 0);
  a.Assign(1, 0);
  const EvalResult r = Evaluator().Evaluate(net, a);
  EXPECT_NEAR(r.user_throughput_mbps[0], 2.0, 1e-9);
  EXPECT_NEAR(r.user_throughput_mbps[1], (1.0 - 2.0 / 15.0) * 40.0, 1e-9);
}

TEST(DemandEvaluatorTest, PlcThrottleRespectsPerUserCaps) {
  // WiFi side allocates {2, 34.7} but the PLC link only carries 10: the
  // re-share gives the light user its full 2 and the rest to the other.
  Network net(2, 1);
  net.SetPlcRate(0, 10.0);
  net.SetWifiRate(0, 0, 15.0);
  net.SetWifiRate(1, 0, 40.0);
  net.SetUserDemand(0, 2.0);
  Assignment a(2);
  a.Assign(0, 0);
  a.Assign(1, 0);
  const EvalResult r = Evaluator().Evaluate(net, a);
  EXPECT_NEAR(r.user_throughput_mbps[0], 2.0, 1e-9);
  EXPECT_NEAR(r.user_throughput_mbps[1], 8.0, 1e-9);
  EXPECT_NEAR(r.aggregate_mbps, 10.0, 1e-9);
}

TEST(DemandEvaluatorTest, SaturatedNetworkUnchangedByDemandPath) {
  // Setting every demand to 0 must reproduce the saturated fast path
  // exactly (same aggregate, same per-user split).
  const Network net = testbed::CaseStudyNetwork();
  Assignment a(2);
  a.Assign(0, 0);
  a.Assign(1, 1);
  const EvalResult fast = Evaluator().Evaluate(net, a);
  Network copy = net;
  copy.SetUserDemand(0, 1e9);  // effectively saturated but takes slow path
  copy.SetUserDemand(1, 1e9);
  const EvalResult slow = Evaluator().Evaluate(copy, a);
  EXPECT_NEAR(fast.aggregate_mbps, slow.aggregate_mbps, 1e-6);
  for (std::size_t i = 0; i < 2; ++i) {
    EXPECT_NEAR(fast.user_throughput_mbps[i], slow.user_throughput_mbps[i],
                1e-6);
  }
}

TEST(DemandEvaluatorTest, NegativeDemandRejected) {
  Network net(1, 1);
  EXPECT_THROW(net.SetUserDemand(0, -1.0), std::invalid_argument);
}

// Property: lowering any single user's demand never increases that user's
// throughput and never decreases the cell's total.
class DemandMonotonicityTest : public ::testing::TestWithParam<int> {};

TEST_P(DemandMonotonicityTest, ReleasingDemandHelpsTheCell) {
  util::Rng rng(static_cast<std::uint64_t>(GetParam()) * 101);
  const int n = rng.UniformInt(2, 6);
  std::vector<double> rates(static_cast<std::size_t>(n));
  std::vector<double> demands(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    rates[static_cast<std::size_t>(i)] = rng.Uniform(5.0, 65.0);
    demands[static_cast<std::size_t>(i)] =
        rng.Bernoulli(0.5) ? 0.0 : rng.Uniform(1.0, 30.0);
  }
  const CellAllocation base = WifiCellAllocation(rates, demands);
  const std::size_t victim =
      static_cast<std::size_t>(rng.UniformInt(0, n - 1));
  std::vector<double> reduced = demands;
  reduced[victim] = std::max(base.user_throughput_mbps[victim] * 0.3, 0.01);
  const CellAllocation after = WifiCellAllocation(rates, reduced);
  EXPECT_LE(after.user_throughput_mbps[victim],
            base.user_throughput_mbps[victim] + 1e-9);
  // The cell loses at most what the victim gave up (others can only gain
  // from the released airtime, and gain nothing if none is backlogged).
  const double victim_loss = base.user_throughput_mbps[victim] -
                             after.user_throughput_mbps[victim];
  EXPECT_GE(after.total_mbps, base.total_mbps - victim_loss - 1e-9);
  // Every other user weakly benefits.
  for (int i = 0; i < n; ++i) {
    if (static_cast<std::size_t>(i) == victim) continue;
    EXPECT_GE(after.user_throughput_mbps[static_cast<std::size_t>(i)],
              base.user_throughput_mbps[static_cast<std::size_t>(i)] - 1e-9);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, DemandMonotonicityTest,
                         ::testing::Range(1, 31));

}  // namespace
}  // namespace wolt::model
