// Property tests for the trace-driven workload generator (sim/workload.h):
// 300 randomized traces across the three non-static mobility models,
// asserting determinism (same seed => byte-identical serialized trace),
// conservation (arrivals == departures + active at every prefix), RSSI
// continuity (per-step delta bounded by the path-loss Lipschitz constant
// times the maximum displacement) and load-curve shape (non-negative, the
// diurnal closed form with the configured period, bursty two-level values).
#include "sim/workload.h"

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <set>
#include <stdexcept>
#include <vector>

#include "sim/scenario.h"
#include "util/rng.h"

namespace wolt::sim {
namespace {

constexpr MobilityModel kModels[] = {
    MobilityModel::kTeleport, MobilityModel::kWaypoint,
    MobilityModel::kHotspot};

ScenarioParams SmallScenario() {
  ScenarioParams p;
  p.num_extenders = 4;
  p.num_users = 0;
  return p;
}

// Varied-but-small parameters for replicate k: cycles through the load
// curves and background settings so every feature appears in the corpus.
WorkloadParams ParamsFor(MobilityModel model, std::size_t k) {
  WorkloadParams wp;
  wp.horizon = 6.0;
  wp.arrival_rate = 1.0 + 0.5 * static_cast<double>(k % 3);
  wp.mean_session = 4.0;
  wp.initial_users = k % 4;
  wp.mobility.model = model;
  wp.move_tick = 0.5;
  switch (k % 3) {
    case 0:
      wp.load = LoadCurve::kConstant;
      break;
    case 1:
      wp.load = LoadCurve::kDiurnal;
      wp.load_period = 4.0;
      wp.load_floor = 0.25;
      break;
    default:
      wp.load = LoadCurve::kBursty;
      wp.burst_rate = 1.0;
      wp.burst_high = 1.0;
      wp.burst_low = 0.2;
      break;
  }
  if (k % 5 == 0) wp.background_share = 0.5;
  return wp;
}

// Lipschitz constant of the RSSI-vs-position map: the path-loss slope
// d/dd [10 n log10(d)] = 10 n / (ln 10 * d) is maximized at the generator's
// distance clamp d >= 0.1 m. Per-user shadowing is frozen, so it cancels in
// every delta.
double RssiLipschitz(const ScenarioParams& p) {
  return 10.0 * p.path_loss.exponent / (std::log(10.0) * 0.1);
}

void CheckTrace(const ScenarioParams& scenario, const WorkloadParams& wp,
                const WorkloadTrace& trace) {
  ASSERT_EQ(trace.num_extenders, scenario.num_extenders);

  struct LastSeen {
    double time = 0.0;
    model::Position pos;
    std::vector<double> rssi;
  };
  std::set<std::int64_t> active;
  std::size_t arrivals = 0, departures = 0;
  std::vector<LastSeen> last;
  double prev_time = 0.0;
  const double lipschitz = RssiLipschitz(scenario);
  // Per-step displacement bound: a waypoint/hotspot walk covers at most
  // speed_max * dt; teleports are unbounded by design and skipped.
  const bool continuous = wp.mobility.model == MobilityModel::kWaypoint ||
                          wp.mobility.model == MobilityModel::kHotspot;

  for (const TraceEvent& ev : trace.events) {
    ASSERT_GE(ev.time, prev_time) << "events out of order";
    ASSERT_LE(ev.time, trace.horizon);
    prev_time = ev.time;
    switch (ev.kind) {
      case TraceEventKind::kArrival: {
        ASSERT_TRUE(active.insert(ev.user).second) << "user arrived twice";
        ++arrivals;
        ASSERT_EQ(ev.rates_mbps.size(), trace.num_extenders);
        ASSERT_EQ(ev.rssi_dbm.size(), trace.num_extenders);
        ASSERT_GE(ev.demand_mbps, 0.0);
        const auto uid = static_cast<std::size_t>(ev.user);
        if (last.size() <= uid) last.resize(uid + 1);
        last[uid] = {ev.time, ev.pos, ev.rssi_dbm};
        break;
      }
      case TraceEventKind::kMove: {
        ASSERT_EQ(active.count(ev.user), 1u) << "move of inactive user";
        ASSERT_EQ(ev.rssi_dbm.size(), trace.num_extenders);
        const auto uid = static_cast<std::size_t>(ev.user);
        const LastSeen& prev = last[uid];
        if (continuous) {
          const double dt = ev.time - prev.time;
          const double dx = ev.pos.x - prev.pos.x;
          const double dy = ev.pos.y - prev.pos.y;
          const double step = std::sqrt(dx * dx + dy * dy);
          const double max_step = wp.mobility.speed_max * dt + 1e-9;
          ASSERT_LE(step, max_step) << "walk displacement exceeds speed_max";
          for (std::size_t j = 0; j < trace.num_extenders; ++j) {
            ASSERT_LE(std::abs(ev.rssi_dbm[j] - prev.rssi[j]),
                      lipschitz * max_step + 1e-9)
                << "RSSI trajectory discontinuous at extender " << j;
          }
        }
        last[uid] = {ev.time, ev.pos, ev.rssi_dbm};
        break;
      }
      case TraceEventKind::kDeparture:
        ASSERT_EQ(active.erase(ev.user), 1u) << "departure of inactive user";
        ++departures;
        break;
      case TraceEventKind::kLoad:
        ASSERT_GE(ev.value, 0.0) << "negative load scale";
        if (wp.load == LoadCurve::kDiurnal) {
          // The emitted scale must match the closed form — which is
          // periodic in load_period by construction, so this checks both
          // the curve and its period.
          constexpr double kTau = 6.283185307179586476925286766559;
          const double expected =
              wp.load_floor +
              (1.0 - wp.load_floor) * 0.5 *
                  (1.0 - std::cos(kTau * ev.time / wp.load_period));
          ASSERT_NEAR(ev.value, expected, 1e-9);
        } else if (wp.load == LoadCurve::kBursty) {
          ASSERT_TRUE(ev.value == wp.burst_high || ev.value == wp.burst_low);
        } else {
          FAIL() << "kLoad event in a constant-load trace";
        }
        break;
      case TraceEventKind::kBackground:
        ASSERT_GE(ev.domain, 0);
        ASSERT_TRUE(ev.value == 0.0 || ev.value == wp.background_share);
        break;
    }
    // Conservation at every prefix of the trace.
    ASSERT_EQ(arrivals, departures + active.size());
  }
  ASSERT_EQ(arrivals, departures + active.size());
}

TEST(WorkloadPropertyTest, RandomTracesHoldInvariants) {
  const ScenarioParams scenario = SmallScenario();
  const ScenarioGenerator generator(scenario);
  util::Rng topo_rng(7);
  const model::Network base = generator.Generate(topo_rng);

  std::size_t total = 0;
  for (const MobilityModel model : kModels) {
    for (std::size_t k = 0; k < 100; ++k) {
      const WorkloadParams wp = ParamsFor(model, k);
      const std::uint64_t seed = util::HashCombine64(
          0x74726163655F7071ULL, static_cast<std::uint64_t>(model) * 1000 + k);
      const WorkloadTrace trace = GenerateTrace(generator, base, wp, seed);
      SCOPED_TRACE(std::string(ToString(model)) + " replicate " +
                   std::to_string(k));
      CheckTrace(scenario, wp, trace);

      // Determinism: regeneration with the same seed is byte-identical.
      const WorkloadTrace again = GenerateTrace(generator, base, wp, seed);
      ASSERT_EQ(TraceToString(trace), TraceToString(again));
      ++total;
    }
  }
  EXPECT_EQ(total, 300u);
}

// Named so CI can run exactly this as the TSan-gated 20-seed determinism
// pass: --gtest_filter=WorkloadPropertyTest.TraceDeterminismTwentySeeds
TEST(WorkloadPropertyTest, TraceDeterminismTwentySeeds) {
  const ScenarioParams scenario = SmallScenario();
  const ScenarioGenerator generator(scenario);
  util::Rng topo_rng(11);
  const model::Network base = generator.Generate(topo_rng);

  WorkloadParams wp;
  wp.horizon = 8.0;
  wp.arrival_rate = 2.0;
  wp.mean_session = 5.0;
  wp.initial_users = 2;
  wp.mobility.model = MobilityModel::kWaypoint;
  wp.move_tick = 0.5;
  wp.load = LoadCurve::kDiurnal;
  wp.load_period = 4.0;
  wp.background_share = 0.4;
  for (std::uint64_t seed = 1; seed <= 20; ++seed) {
    const std::string a =
        TraceToString(GenerateTrace(generator, base, wp, seed));
    const std::string b =
        TraceToString(GenerateTrace(generator, base, wp, seed));
    ASSERT_EQ(a, b) << "seed " << seed;
    ASSERT_FALSE(a.empty());
  }
}

TEST(WorkloadPropertyTest, DistinctSeedsDiverge) {
  const ScenarioParams scenario = SmallScenario();
  const ScenarioGenerator generator(scenario);
  util::Rng topo_rng(3);
  const model::Network base = generator.Generate(topo_rng);
  WorkloadParams wp;
  wp.horizon = 6.0;
  wp.initial_users = 2;
  wp.mobility.model = MobilityModel::kHotspot;
  EXPECT_NE(TraceToString(GenerateTrace(generator, base, wp, 1)),
            TraceToString(GenerateTrace(generator, base, wp, 2)));
}

TEST(WorkloadPropertyTest, RejectsBadParameters) {
  const ScenarioParams scenario = SmallScenario();
  const ScenarioGenerator generator(scenario);
  util::Rng topo_rng(5);
  const model::Network base = generator.Generate(topo_rng);

  WorkloadParams bad;
  bad.horizon = 0.0;
  EXPECT_THROW(GenerateTrace(generator, base, bad, 1), std::invalid_argument);

  bad = {};
  bad.mean_session = 0.0;
  EXPECT_THROW(GenerateTrace(generator, base, bad, 1), std::invalid_argument);

  bad = {};
  bad.mobility.model = MobilityModel::kWaypoint;
  bad.mobility.speed_min = 0.0;
  EXPECT_THROW(GenerateTrace(generator, base, bad, 1), std::invalid_argument);

  // Users-bearing base networks are rejected: users come from the trace.
  ScenarioParams with_users = scenario;
  with_users.num_users = 3;
  const ScenarioGenerator gen2(with_users);
  util::Rng rng2(6);
  const model::Network populated = gen2.Generate(rng2);
  EXPECT_THROW(GenerateTrace(gen2, populated, WorkloadParams{}, 1),
               std::invalid_argument);
}

}  // namespace
}  // namespace wolt::sim
