// Unit and integration coverage for the fleet runtime's three pillars:
// the bounded ingestion queue (backpressure + exact shed accounting), the
// shard supervisor (restart backoff, crash-loop circuit breaker, half-open
// probes), and the sharded round loop itself (thread-count-invariant
// reports, fault isolation of a poisoned shard, degraded hold-last-good,
// virtual-budget reopt degradation through the PR 5 ladder).
#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "core/controller.h"
#include "fleet/queue.h"
#include "fleet/runtime.h"
#include "fleet/shard.h"
#include "fleet/supervisor.h"
#include "util/codec.h"

namespace wolt::fleet {
namespace {

FleetMessage Msg(std::uint32_t shard, fault::MessageClass cls,
                 std::string bytes = "x") {
  FleetMessage m;
  m.shard = shard;
  m.cls = cls;
  m.bytes = std::move(bytes);
  return m;
}

// --- BoundedFleetQueue ---------------------------------------------------

TEST(FleetQueue, AccountingHoldsThroughPushDrainDiscard) {
  BoundedFleetQueue q(/*capacity=*/0, /*num_shards=*/3);
  for (int i = 0; i < 5; ++i) q.Push(Msg(0, fault::MessageClass::kScan));
  for (int i = 0; i < 3; ++i) q.Push(Msg(1, fault::MessageClass::kAck));
  EXPECT_EQ(q.Depth(), 8u);
  EXPECT_EQ(q.DepthOf(0), 5u);

  const std::vector<FleetMessage> got = q.Drain(0, 2);
  ASSERT_EQ(got.size(), 2u);
  EXPECT_LT(got[0].seq, got[1].seq);  // oldest-first, arrival order

  const std::size_t discarded = q.Discard(1);
  EXPECT_EQ(discarded, 3u);

  const QueueStats& s = q.stats();
  EXPECT_EQ(s.enqueued, 8u);
  EXPECT_EQ(s.delivered, 2u);
  EXPECT_EQ(s.shed, 0u);
  EXPECT_EQ(s.discarded, 3u);
  EXPECT_EQ(s.enqueued, s.delivered + s.shed + s.discarded + q.Depth());
}

TEST(FleetQueue, ShedsOldestFromMostBackloggedShard) {
  BoundedFleetQueue q(/*capacity=*/4, /*num_shards=*/2);
  q.Push(Msg(0, fault::MessageClass::kScan, "a"));      // seq 0
  q.Push(Msg(0, fault::MessageClass::kCapacity, "b"));  // seq 1
  q.Push(Msg(0, fault::MessageClass::kScan, "c"));      // seq 2
  q.Push(Msg(1, fault::MessageClass::kAck, "d"));       // seq 3
  EXPECT_EQ(q.stats().shed, 0u);

  // 5th message: over capacity. Shard 0 is most backlogged; its oldest
  // (seq 0, a kScan) must be the victim — never the fresh arrival.
  q.Push(Msg(1, fault::MessageClass::kAck, "e"));
  EXPECT_EQ(q.Depth(), 4u);
  EXPECT_EQ(q.stats().shed, 1u);
  EXPECT_EQ(q.stats().shed_by_class[static_cast<int>(
                fault::MessageClass::kScan)],
            1u);
  const std::vector<FleetMessage> lane0 = q.Drain(0, 0);
  ASSERT_EQ(lane0.size(), 2u);
  EXPECT_EQ(lane0[0].bytes, "b");  // seq 0 gone, seq 1 survives
  EXPECT_EQ(q.stats().enqueued,
            q.stats().delivered + q.stats().shed + q.stats().discarded +
                q.Depth());
}

TEST(FleetQueue, TieBreaksTowardLowestShardId) {
  BoundedFleetQueue q(/*capacity=*/4, /*num_shards=*/3);
  q.Push(Msg(2, fault::MessageClass::kScan, "z0"));
  q.Push(Msg(2, fault::MessageClass::kScan, "z1"));
  q.Push(Msg(1, fault::MessageClass::kScan, "y0"));
  q.Push(Msg(1, fault::MessageClass::kScan, "y1"));
  q.Push(Msg(0, fault::MessageClass::kScan, "x0"));
  // Lanes 1 and 2 tie at depth 2; the shed must hit lane 1.
  EXPECT_EQ(q.DepthOf(1), 1u);
  EXPECT_EQ(q.DepthOf(2), 2u);
  EXPECT_EQ(q.DepthOf(0), 1u);
}

TEST(FleetQueue, SaveRestoreRoundTripsBitExact) {
  BoundedFleetQueue q(/*capacity=*/3, /*num_shards=*/2);
  for (int i = 0; i < 6; ++i) {
    q.Push(Msg(i % 2, fault::MessageClass::kScan, "m" + std::to_string(i)));
  }
  q.Drain(0, 1);
  std::string blob;
  q.SaveState(&blob);

  BoundedFleetQueue r(/*capacity=*/3, /*num_shards=*/2);
  util::ByteCursor cur(blob);
  ASSERT_TRUE(r.RestoreState(&cur));
  EXPECT_TRUE(cur.AtEnd());
  std::string blob2;
  r.SaveState(&blob2);
  EXPECT_EQ(blob, blob2);

  BoundedFleetQueue wrong(/*capacity=*/3, /*num_shards=*/5);
  util::ByteCursor cur2(blob);
  EXPECT_FALSE(wrong.RestoreState(&cur2));  // shard-count mismatch refused
}

// --- Supervisor ----------------------------------------------------------

FailureEvent Fatal() {
  return FailureEvent{FailureKind::kException,
                      core::ErrorCategory::kProgrammingError, "boom"};
}

FailureEvent Storm() {
  return FailureEvent{FailureKind::kDecodeStorm,
                      core::ErrorCategory::kWireFault, "storm"};
}

SupervisorParams TestSupParams() {
  SupervisorParams p;
  p.storm_tolerance = 1;
  p.backoff_initial = 1;
  p.backoff_max = 4;
  p.crash_loop_threshold = 2;
  p.crash_loop_window = 8;
  p.probe_after = 3;
  return p;
}

TEST(Supervisor, WireFaultStormsNeedSustainedPressure) {
  Supervisor sup(TestSupParams(), 1);
  // One storm round: tolerated (tolerance 1). A clean round resets.
  EXPECT_EQ(sup.ObserveFailures(0, 0, {Storm()}), SupervisorAction::kNone);
  EXPECT_EQ(sup.state(0), ShardState::kHealthy);
  EXPECT_EQ(sup.ObserveFailures(0, 1, {}), SupervisorAction::kNone);
  EXPECT_EQ(sup.ObserveFailures(0, 2, {Storm()}), SupervisorAction::kNone);
  EXPECT_EQ(sup.state(0), ShardState::kHealthy);
  // Two consecutive storm rounds cross the tolerance: restart ordered.
  EXPECT_EQ(sup.ObserveFailures(0, 3, {Storm()}), SupervisorAction::kNone);
  EXPECT_EQ(sup.state(0), ShardState::kBackoff);
  EXPECT_EQ(sup.BeginRound(0, 4), SupervisorAction::kRestart);
  EXPECT_EQ(sup.state(0), ShardState::kHealthy);
  EXPECT_EQ(sup.Restarts(0), 1u);
}

TEST(Supervisor, ProgrammingErrorRestartsImmediatelyThenCircuitBreaks) {
  Supervisor sup(TestSupParams(), 1);
  EXPECT_EQ(sup.ObserveFailures(0, 0, {Fatal()}), SupervisorAction::kNone);
  EXPECT_EQ(sup.state(0), ShardState::kBackoff);
  EXPECT_EQ(sup.BeginRound(0, 1), SupervisorAction::kRestart);
  // Second fatal inside the window: the breaker parks the shard instead of
  // restarting again (threshold 2).
  EXPECT_EQ(sup.ObserveFailures(0, 1, {Fatal()}),
            SupervisorAction::kCircuitBreak);
  EXPECT_EQ(sup.state(0), ShardState::kDegraded);
  EXPECT_EQ(sup.CircuitBreaks(0), 1u);
  // Parked shards are left alone until the probe is due.
  EXPECT_EQ(sup.BeginRound(0, 2), SupervisorAction::kNone);
  EXPECT_EQ(sup.BeginRound(0, 3), SupervisorAction::kNone);
  EXPECT_EQ(sup.BeginRound(0, 4), SupervisorAction::kProbe);
  EXPECT_EQ(sup.state(0), ShardState::kProbation);
  // A failing probation round re-parks on one strike.
  EXPECT_EQ(sup.ObserveFailures(0, 4, {Fatal()}),
            SupervisorAction::kCircuitBreak);
  EXPECT_EQ(sup.state(0), ShardState::kDegraded);
  EXPECT_EQ(sup.CircuitBreaks(0), 2u);
  // Next probe comes back clean: full recovery, breaker history reset.
  EXPECT_EQ(sup.BeginRound(0, 7), SupervisorAction::kProbe);
  EXPECT_EQ(sup.ObserveFailures(0, 7, {}), SupervisorAction::kRecover);
  EXPECT_EQ(sup.state(0), ShardState::kHealthy);
  // The reset means a fresh fatal goes back to restart, not straight to
  // the breaker.
  EXPECT_EQ(sup.ObserveFailures(0, 8, {Fatal()}), SupervisorAction::kNone);
  EXPECT_EQ(sup.state(0), ShardState::kBackoff);
}

TEST(Supervisor, BackoffGrowsAndCaps) {
  SupervisorParams p = TestSupParams();
  p.crash_loop_threshold = 100;  // breaker out of the way
  p.crash_loop_window = 2;       // prune history aggressively
  Supervisor sup(p, 1);
  std::uint64_t round = 0;
  std::uint64_t last_restart = 0;
  std::vector<std::uint64_t> gaps;
  for (int cycle = 0; cycle < 4; ++cycle) {
    EXPECT_EQ(sup.ObserveFailures(0, round, {Fatal()}),
              SupervisorAction::kNone);
    // Walk rounds until the restart executes.
    while (sup.BeginRound(0, ++round) != SupervisorAction::kRestart) {
      ASSERT_LT(round, 100u);
    }
    if (cycle > 0) gaps.push_back(round - last_restart);
    last_restart = round;
  }
  // Backoff 1 -> 2 -> 4 -> capped at 4. The shard fails again on the very
  // round it restarts, so each restart-to-restart gap equals the backoff
  // in force for the next restart.
  ASSERT_EQ(gaps.size(), 3u);
  EXPECT_EQ(gaps[0], 2u);
  EXPECT_EQ(gaps[1], 4u);
  EXPECT_EQ(gaps[2], 4u);  // capped at backoff_max
}

TEST(Supervisor, SaveRestoreRoundTrips) {
  Supervisor sup(TestSupParams(), 3);
  sup.ObserveFailures(0, 0, {Fatal()});
  sup.BeginRound(0, 1);
  sup.ObserveFailures(0, 1, {Fatal()});  // parks shard 0
  sup.ObserveFailures(2, 1, {Storm()});
  std::string blob;
  sup.SaveState(&blob);

  Supervisor restored(TestSupParams(), 3);
  util::ByteCursor cur(blob);
  ASSERT_TRUE(restored.RestoreState(&cur));
  EXPECT_TRUE(cur.AtEnd());
  EXPECT_EQ(restored.state(0), ShardState::kDegraded);
  EXPECT_EQ(restored.state(1), ShardState::kHealthy);
  EXPECT_EQ(restored.Restarts(0), 1u);
  EXPECT_EQ(restored.CircuitBreaks(0), 1u);
  std::string blob2;
  restored.SaveState(&blob2);
  EXPECT_EQ(blob, blob2);
}

// --- FleetRuntime --------------------------------------------------------

FleetParams SmallFleet(std::size_t shards, std::uint64_t rounds) {
  FleetParams p;
  p.num_shards = shards;
  p.rounds = rounds;
  p.queue_capacity = shards * 6;  // mild overload: some shedding
  p.batch_per_shard = 8;
  p.chaos_from = 2;
  p.chaos_to = rounds > 2 ? rounds - 1 : rounds;
  fault::WireFaults w;
  w.loss = 0.05;
  w.duplicate = 0.05;
  w.corrupt = 0.15;
  p.shard.wire = fault::FaultPlaneParams::Uniform(w);
  p.shard.plc_crash_prob = 0.15;
  p.shard.departure_prob = 0.1;
  p.supervisor.storm_tolerance = 1;
  p.supervisor.backoff_initial = 1;
  p.supervisor.crash_loop_threshold = 2;
  p.supervisor.crash_loop_window = 8;
  p.supervisor.probe_after = 3;
  return p;
}

TEST(FleetRuntime, ReportIsThreadCountInvariant) {
  std::string golden;
  for (int threads : {1, 2, 4, 8}) {
    FleetParams p = SmallFleet(12, 8);
    p.threads = threads;
    p.poison_shards = {3};
    p.poison_from = 2;
    p.poison_to = ~std::uint64_t{0};
    FleetRuntime fleet(p, /*seed=*/0xF1EE7ULL);
    const FleetResult result = fleet.Run();
    ASSERT_TRUE(result.completed) << result.error;
    const std::string report = result.Report();
    if (golden.empty()) {
      golden = report;
    } else {
      EXPECT_EQ(report, golden) << "threads=" << threads;
    }
  }
}

TEST(FleetRuntime, OverloadShedsButAccountingStaysExact) {
  FleetParams p = SmallFleet(8, 6);
  p.queue_capacity = 8;  // far below the per-round traffic of 8 shards
  p.threads = 2;
  FleetRuntime fleet(p, 42);
  const FleetResult result = fleet.Run();
  ASSERT_TRUE(result.completed) << result.error;
  EXPECT_GT(result.queue.shed, 0u);
  EXPECT_TRUE(result.accounting_ok);
  EXPECT_TRUE(result.isolation_ok);
  // Per-round deltas must add back up to the cumulative totals.
  std::uint64_t enq = 0, del = 0, shed = 0, disc = 0;
  for (const recover::FleetRoundRecord& r : result.fleet_records) {
    enq += r.enqueued;
    del += r.delivered;
    shed += r.shed;
    disc += r.discarded;
  }
  EXPECT_EQ(enq, result.queue.enqueued);
  EXPECT_EQ(del, result.queue.delivered);
  EXPECT_EQ(shed, result.queue.shed);
  EXPECT_EQ(disc, result.queue.discarded);
}

TEST(FleetRuntime, PoisonedShardIsIsolatedAndCircuitBroken) {
  FleetParams p = SmallFleet(8, 10);
  p.threads = 4;
  p.poison_shards = {5};
  p.poison_from = 2;
  p.poison_to = ~std::uint64_t{0};  // wedged forever
  FleetRuntime fleet(p, 7);
  const FleetResult result = fleet.Run();
  ASSERT_TRUE(result.completed) << result.error;

  EXPECT_GE(result.restarts, 1u);
  EXPECT_GE(result.circuit_breaks, 1u);
  EXPECT_GE(result.probes, 1u);  // probe_after=3 fits inside 10 rounds
  EXPECT_TRUE(result.degraded_held_ok);
  EXPECT_TRUE(result.isolation_ok);
  EXPECT_TRUE(result.accounting_ok);

  bool saw_degraded = false;
  for (const recover::ShardRoundRecord& r : result.shard_records) {
    if (r.shard == 5 &&
        r.state == static_cast<std::uint8_t>(ShardState::kDegraded)) {
      saw_degraded = true;
      EXPECT_EQ(r.processed, 0u);  // parked shards get no batches
    }
    if (r.shard != 5) {
      // The wedge never leaks: sibling shards keep running and never
      // restart or break.
      EXPECT_EQ(r.restarted, 0u) << "shard " << r.shard;
      EXPECT_EQ(r.broke, 0u) << "shard " << r.shard;
    }
  }
  EXPECT_TRUE(saw_degraded);
}

TEST(FleetRuntime, VirtualBudgetWalksTheDegradationLadder) {
  FleetParams p = SmallFleet(6, 8);
  p.threads = 2;
  p.chaos_from = p.chaos_to = 0;     // quiet wire: scheduling is the subject
  p.queue_capacity = 0;
  p.reopt_units_per_round = 7;       // 6 live shards want 24 units
  FleetRuntime fleet(p, 11);
  const FleetResult result = fleet.Run();
  ASSERT_TRUE(result.completed) << result.error;

  bool saw_full = false, saw_degraded_tier = false, saw_unscheduled = false;
  std::vector<bool> ever_scheduled(p.num_shards, false);
  for (const recover::ShardRoundRecord& r : result.shard_records) {
    if (r.tier == static_cast<std::int8_t>(core::ReoptTier::kFull)) {
      saw_full = true;
    } else if (r.tier > 0) {
      saw_degraded_tier = true;
    } else {
      saw_unscheduled = true;
    }
    if (r.tier >= 0) ever_scheduled[r.shard] = true;
  }
  EXPECT_TRUE(saw_full);
  EXPECT_TRUE(saw_degraded_tier);
  EXPECT_TRUE(saw_unscheduled);
  // Staleness priority must rotate the budget across every shard.
  for (std::size_t s = 0; s < p.num_shards; ++s) {
    EXPECT_TRUE(ever_scheduled[s]) << "shard " << s << " starved";
  }
  for (const recover::FleetRoundRecord& r : result.fleet_records) {
    EXPECT_LE(r.reopt_units, 7u);
  }
}

TEST(FleetRuntime, FleetStateRoundTripsThroughSaveRestore) {
  FleetParams p = SmallFleet(4, 6);
  p.poison_shards = {1};
  p.poison_from = 2;
  p.poison_to = ~std::uint64_t{0};
  FleetRuntime fleet(p, 99);
  ASSERT_TRUE(fleet.Run().completed);

  std::string blob;
  fleet.SaveState(&blob);
  FleetRuntime other(p, 99);
  util::ByteCursor cur(blob);
  ASSERT_TRUE(other.RestoreState(&cur));
  EXPECT_TRUE(cur.AtEnd());
  std::string blob2;
  other.SaveState(&blob2);
  EXPECT_EQ(blob, blob2);

  // A fleet built under a different seed must refuse the blob... the blob
  // carries no fingerprint itself (the journal header does), but structural
  // mismatches are rejected.
  FleetParams smaller = p;
  smaller.num_shards = 3;
  FleetRuntime wrong(smaller, 99);
  util::ByteCursor cur2(blob);
  EXPECT_FALSE(wrong.RestoreState(&cur2));
}

}  // namespace
}  // namespace wolt::fleet
