#include <gtest/gtest.h>

#include <stdexcept>

#include "core/greedy.h"
#include "core/optimal.h"
#include "core/rssi.h"
#include "model/evaluator.h"
#include "testbed/lab.h"
#include "util/rng.h"

namespace wolt::core {
namespace {

TEST(RssiTest, CaseStudyBothUsersPickExtender1) {
  // Fig. 3b: both users hear extender 1 best -> 22 Mbps aggregate.
  const model::Network net = testbed::CaseStudyNetwork();
  RssiPolicy rssi;
  const model::Assignment a = rssi.AssociateFresh(net);
  EXPECT_EQ(a.ExtenderOf(0), 0);
  EXPECT_EQ(a.ExtenderOf(1), 0);
  EXPECT_NEAR(model::Evaluator().AggregateThroughput(net, a), 240.0 / 11.0,
              1e-9);
}

TEST(RssiTest, NeverReassignsExistingUsers) {
  const model::Network net = testbed::CaseStudyNetwork();
  model::Assignment prev(2);
  prev.Assign(0, 1);  // user0 parked on its weaker extender
  RssiPolicy rssi;
  const model::Assignment a = rssi.Associate(net, prev);
  EXPECT_EQ(a.ExtenderOf(0), 1);  // untouched
  EXPECT_EQ(a.ExtenderOf(1), 0);  // new user gets best RSSI
}

TEST(RssiTest, FallsBackWhenBestExtenderFull) {
  model::Network net(2, 2);
  net.SetPlcRate(0, 100.0);
  net.SetPlcRate(1, 100.0);
  for (std::size_t i = 0; i < 2; ++i) {
    net.SetWifiRate(i, 0, 60.0);
    net.SetWifiRate(i, 1, 10.0);
  }
  net.SetMaxUsers(0, 1);
  RssiPolicy rssi;
  const model::Assignment a = rssi.AssociateFresh(net);
  EXPECT_EQ(a.ExtenderOf(0), 0);
  EXPECT_EQ(a.ExtenderOf(1), 1);
}

TEST(RssiTest, UnreachableUserLeftOut) {
  model::Network net(1, 1);
  net.SetPlcRate(0, 100.0);
  RssiPolicy rssi;
  const model::Assignment a = rssi.AssociateFresh(net);
  EXPECT_FALSE(a.IsAssigned(0));
}

TEST(GreedyTest, CaseStudyReproducesFig3c) {
  // User 1 arrives first (alone: ext0 gives min(60,15)=15 vs ext1
  // min(20,10)=10), then user 2 picks ext1 (aggregate 30 vs 21.8).
  const model::Network net = testbed::CaseStudyNetwork();
  GreedyPolicy greedy;
  const model::Assignment a = greedy.AssociateFresh(net);
  EXPECT_EQ(a.ExtenderOf(0), 0);
  EXPECT_EQ(a.ExtenderOf(1), 1);
  EXPECT_NEAR(model::Evaluator().AggregateThroughput(net, a), 30.0, 1e-9);
}

TEST(GreedyTest, ArrivalOrderMatters) {
  // Reversed arrival order changes the greedy outcome — the classic online
  // pathology WOLT avoids. With user 2 first: it picks ext0 (40 capped to
  // 60 -> 40); user 1 then compares joining ext0 vs ext1.
  model::Network net = testbed::CaseStudyNetwork();
  GreedyPolicy greedy;
  // Simulate reversed order via `previous`: assign user 1 (index 1) first.
  model::Assignment prev(2);
  prev.Assign(1, 0);  // user2 alone would choose ext0: min(60, 40) = 40
  const model::Assignment a = greedy.Associate(net, prev);
  EXPECT_TRUE(a.IsCompleteFor(net));
  const double agg = model::Evaluator().AggregateThroughput(net, a);
  // user1's options: join ext0 -> 2/(1/15+1/40) = 21.8; ext1 -> max-min
  // split gives 30+10 = 40 total. Greedy picks ext1.
  EXPECT_EQ(a.ExtenderOf(0), 1);
  EXPECT_NEAR(agg, 40.0, 1e-9);
}

TEST(GreedyTest, NeverReassignsExistingUsers) {
  const model::Network net = testbed::CaseStudyNetwork();
  model::Assignment prev(2);
  prev.Assign(0, 1);
  GreedyPolicy greedy;
  const model::Assignment a = greedy.Associate(net, prev);
  EXPECT_EQ(a.ExtenderOf(0), 1);
}

TEST(GreedyTest, RespectsCapacityLimits) {
  model::Network net(3, 2);
  net.SetPlcRate(0, 200.0);
  net.SetPlcRate(1, 200.0);
  for (std::size_t i = 0; i < 3; ++i) {
    net.SetWifiRate(i, 0, 60.0);
    net.SetWifiRate(i, 1, 60.0);
  }
  net.SetMaxUsers(0, 1);
  GreedyPolicy greedy;
  const model::Assignment a = greedy.AssociateFresh(net);
  EXPECT_LE(a.LoadVector(2)[0], 1);
  EXPECT_TRUE(a.IsCompleteFor(net));
}

TEST(GreedyTest, AtLeastAsGoodAsRssiOnAverage) {
  const model::Evaluator evaluator;
  double greedy_total = 0.0, rssi_total = 0.0;
  for (int seed = 1; seed <= 30; ++seed) {
    util::Rng rng(static_cast<std::uint64_t>(seed) * 37);
    model::Network net(8, 3);
    for (std::size_t j = 0; j < 3; ++j) {
      net.SetPlcRate(j, rng.Uniform(20.0, 160.0));
    }
    for (std::size_t i = 0; i < 8; ++i) {
      for (std::size_t j = 0; j < 3; ++j) {
        net.SetWifiRate(i, j, rng.Uniform(5.0, 65.0));
      }
    }
    GreedyPolicy greedy;
    RssiPolicy rssi;
    greedy_total +=
        evaluator.AggregateThroughput(net, greedy.AssociateFresh(net));
    rssi_total +=
        evaluator.AggregateThroughput(net, rssi.AssociateFresh(net));
  }
  EXPECT_GT(greedy_total, rssi_total);
}

TEST(OptimalTest, CaseStudyReaches40) {
  const model::Network net = testbed::CaseStudyNetwork();
  OptimalPolicy optimal;
  const model::Assignment a = optimal.AssociateFresh(net);
  EXPECT_NEAR(model::Evaluator().AggregateThroughput(net, a), 40.0, 1e-9);
}

TEST(OptimalTest, DominatesGreedyAndRssiEverywhere) {
  const model::Evaluator evaluator;
  for (int seed = 1; seed <= 15; ++seed) {
    util::Rng rng(static_cast<std::uint64_t>(seed) * 59);
    model::Network net(5, 3);
    for (std::size_t j = 0; j < 3; ++j) {
      net.SetPlcRate(j, rng.Uniform(20.0, 160.0));
    }
    for (std::size_t i = 0; i < 5; ++i) {
      for (std::size_t j = 0; j < 3; ++j) {
        net.SetWifiRate(i, j, rng.Uniform(5.0, 65.0));
      }
    }
    OptimalPolicy optimal;
    GreedyPolicy greedy;
    RssiPolicy rssi;
    const double opt =
        evaluator.AggregateThroughput(net, optimal.AssociateFresh(net));
    EXPECT_GE(opt, evaluator.AggregateThroughput(
                       net, greedy.AssociateFresh(net)) - 1e-9);
    EXPECT_GE(opt, evaluator.AggregateThroughput(
                       net, rssi.AssociateFresh(net)) - 1e-9);
  }
}

TEST(PolicyTest, SizeMismatchThrows) {
  const model::Network net = testbed::CaseStudyNetwork();
  GreedyPolicy greedy;
  RssiPolicy rssi;
  EXPECT_THROW(greedy.Associate(net, model::Assignment(1)),
               std::invalid_argument);
  EXPECT_THROW(rssi.Associate(net, model::Assignment(9)),
               std::invalid_argument);
}

TEST(PolicyTest, Names) {
  EXPECT_EQ(GreedyPolicy().Name(), "Greedy");
  EXPECT_EQ(RssiPolicy().Name(), "RSSI");
  EXPECT_EQ(OptimalPolicy().Name(), "Optimal");
}

}  // namespace
}  // namespace wolt::core
