#include "testbed/lab.h"

#include <gtest/gtest.h>

#include <stdexcept>

#include "testbed/traces.h"
#include "util/stats.h"

namespace wolt::testbed {
namespace {

TEST(CaseStudyTest, MatchesFig3aRates) {
  const model::Network net = CaseStudyNetwork();
  ASSERT_EQ(net.NumUsers(), 2u);
  ASSERT_EQ(net.NumExtenders(), 2u);
  EXPECT_DOUBLE_EQ(net.PlcRate(0), 60.0);
  EXPECT_DOUBLE_EQ(net.PlcRate(1), 20.0);
  EXPECT_DOUBLE_EQ(net.WifiRate(0, 0), 15.0);
  EXPECT_DOUBLE_EQ(net.WifiRate(0, 1), 10.0);
  EXPECT_DOUBLE_EQ(net.WifiRate(1, 0), 40.0);
  EXPECT_DOUBLE_EQ(net.WifiRate(1, 1), 20.0);
}

TEST(LabTestbedTest, RejectsBadParams) {
  LabParams p;
  p.num_users = 0;
  EXPECT_THROW(LabTestbed{p}, std::invalid_argument);
  p = {};
  p.outlet_capacities_mbps.clear();
  EXPECT_THROW(LabTestbed{p}, std::invalid_argument);
}

TEST(LabTestbedTest, TopologyHasPaperDimensions) {
  const LabTestbed lab;
  util::Rng rng(1);
  const model::Network net = lab.GenerateTopology(rng);
  EXPECT_EQ(net.NumExtenders(), 3u);  // three TL-WPA8630 extenders
  EXPECT_EQ(net.NumUsers(), 7u);      // seven laptops
}

TEST(LabTestbedTest, CapacitiesNearMeasuredAnchors) {
  const LabTestbed lab;
  util::Rng rng(2);
  std::vector<double> caps;
  for (int t = 0; t < 50; ++t) {
    const model::Network net = lab.GenerateTopology(rng);
    for (std::size_t j = 0; j < net.NumExtenders(); ++j) {
      caps.push_back(net.PlcRate(j));
    }
  }
  // Jittered anchors 60..160: everything within a generous band around it.
  EXPECT_GT(util::Min(caps), 35.0);
  EXPECT_LT(util::Max(caps), 250.0);
  EXPECT_NEAR(util::Mean(caps), 108.0, 20.0);
}

TEST(LabTestbedTest, UsersReachableInAllTopologies) {
  const LabTestbed lab;
  util::Rng rng(3);
  const auto topologies = lab.GenerateTopologies(25, rng);
  EXPECT_EQ(topologies.size(), 25u);
  for (const auto& net : topologies) {
    for (std::size_t i = 0; i < net.NumUsers(); ++i) {
      EXPECT_TRUE(net.UserReachable(i));
    }
  }
}

TEST(LabTestbedTest, TopologiesDiffer) {
  const LabTestbed lab;
  util::Rng rng(4);
  const auto topologies = lab.GenerateTopologies(2, rng);
  bool any_difference = false;
  for (std::size_t j = 0; j < topologies[0].NumExtenders(); ++j) {
    if (topologies[0].PlcRate(j) != topologies[1].PlcRate(j)) {
      any_difference = true;
    }
  }
  EXPECT_TRUE(any_difference);
}

TEST(LabTestbedTest, MeasurementNoiseIsBoundedAndUnbiased) {
  const LabTestbed lab;
  util::Rng rng(5);
  const model::Network net = CaseStudyNetwork();
  model::Assignment a(2);
  a.Assign(0, 1);
  a.Assign(1, 0);  // optimal: users get 10 and 30
  std::vector<double> u0, u1;
  for (int t = 0; t < 2000; ++t) {
    const auto measured = lab.MeasureUserThroughputs(net, a, rng);
    u0.push_back(measured[0]);
    u1.push_back(measured[1]);
  }
  EXPECT_NEAR(util::Mean(u0), 10.0, 0.2);
  EXPECT_NEAR(util::Mean(u1), 30.0, 0.5);
  EXPECT_GT(util::StdDev(u0), 0.1);  // noise actually applied
}

TEST(LabTestbedTest, ZeroNoiseReproducesModelExactly) {
  const LabTestbed lab;
  util::Rng rng(6);
  const model::Network net = CaseStudyNetwork();
  model::Assignment a(2);
  a.Assign(0, 1);
  a.Assign(1, 0);
  const auto measured = lab.MeasureUserThroughputs(net, a, rng, 0.0);
  EXPECT_DOUBLE_EQ(measured[0], 10.0);
  EXPECT_DOUBLE_EQ(measured[1], 30.0);
}

TEST(TracesTest, ReferenceSeriesAreComplete) {
  EXPECT_EQ(Fig2bPlcIsolationThroughputs().size(), 4u);
  EXPECT_EQ(Fig2cSharingFractions().size(), 4u);
  EXPECT_EQ(Fig3CaseStudyAggregates().size(), 3u);
  EXPECT_EQ(Fig4aImprovements().size(), 2u);
  EXPECT_EQ(Fig4bUserWinFractions().size(), 2u);
  EXPECT_EQ(Fig5UserExtremes().size(), 2u);
  EXPECT_EQ(JainFairnessReference().size(), 3u);
  EXPECT_EQ(Fig6bPopulationTrajectory().size(), 3u);
  EXPECT_DOUBLE_EQ(Fig6cMaxReassignmentsPerArrival(), 2.0);
}

TEST(TracesTest, Fig3ReferenceMatchesPaperNumbers) {
  const auto& points = Fig3CaseStudyAggregates();
  EXPECT_EQ(points[0].label, "RSSI");
  EXPECT_DOUBLE_EQ(points[0].value, 22.0);
  EXPECT_DOUBLE_EQ(points[1].value, 30.0);
  EXPECT_DOUBLE_EQ(points[2].value, 40.0);
}

}  // namespace
}  // namespace wolt::testbed
