// Empirical verification of the paper's analytic results (Lemma 1, Lemma 2,
// Theorem 2, Theorem 3) on randomized instances. These are the load-bearing
// claims behind WOLT's two-phase design; each test constructs the exact
// setting of the claim and checks it holds.
#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "assign/brute_force.h"
#include "assign/nlp.h"
#include "core/wolt.h"
#include "model/evaluator.h"
#include "util/rng.h"

namespace wolt {
namespace {

model::Network RandomNetwork(util::Rng& rng, std::size_t users,
                             std::size_t exts) {
  model::Network net(users, exts);
  for (std::size_t j = 0; j < exts; ++j) {
    net.SetPlcRate(j, rng.Uniform(20.0, 160.0));
  }
  for (std::size_t i = 0; i < users; ++i) {
    for (std::size_t j = 0; j < exts; ++j) {
      net.SetWifiRate(i, j, rng.Uniform(5.0, 65.0));
    }
  }
  return net;
}

// Objective (3) under the planning model used in the paper's proofs.
double PlanningObjective(const model::Network& net,
                         const model::Assignment& a) {
  model::EvalOptions opts;
  opts.plc_sharing = model::PlcSharing::kEqualAll;
  return model::Evaluator(opts).AggregateThroughput(net, a);
}

// --- Lemma 1: disconnecting a below-average user cannot hurt. ---

class Lemma1Test : public ::testing::TestWithParam<int> {};

TEST_P(Lemma1Test, DisconnectingSlowUserNeverDecreasesObjective) {
  util::Rng rng(static_cast<std::uint64_t>(GetParam()) * 881);
  const std::size_t users = 6, exts = 2;
  const model::Network net = RandomNetwork(rng, users, exts);
  model::Assignment a(users);
  for (std::size_t i = 0; i < users; ++i) {
    a.Assign(i, static_cast<std::size_t>(rng.UniformInt(0, 1)));
  }
  // Pick an extender with >= 2 users and its user with the largest 1/r
  // (certainly >= the average of its peers' 1/r).
  for (std::size_t j = 0; j < exts; ++j) {
    const auto cell = a.UsersOf(j);
    if (cell.size() < 2) continue;
    std::size_t slowest = cell.front();
    for (std::size_t i : cell) {
      if (net.WifiRate(i, j) < net.WifiRate(slowest, j)) slowest = i;
    }
    const double before = PlanningObjective(net, a);
    model::Assignment without = a;
    without.Unassign(slowest);
    const double after = PlanningObjective(net, without);
    EXPECT_GE(after, before - 1e-9)
        << "extender " << j << " slowest user " << slowest;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, Lemma1Test, ::testing::Range(1, 31));

// --- Lemma 2: the modified problem has a one-user-per-extender optimum. ---

class Lemma2Test : public ::testing::TestWithParam<int> {};

TEST_P(Lemma2Test, ModifiedProblemOptimumUsesOneUserPerExtender) {
  util::Rng rng(static_cast<std::uint64_t>(GetParam()) * 907);
  const std::size_t users = 5, exts = 2;
  const model::Network net = RandomNetwork(rng, users, exts);

  // Enumerate the modified problem: users may stay unassigned (constraint
  // (7) relaxed), every extender must serve >= 1 user (modification (b)).
  assign::BruteForceOptions opts;
  opts.allow_unassigned = true;
  const model::Assignment none(users);
  const auto best = assign::SolveBruteForceObjective(
      net, none,
      [&](const model::Assignment& a) {
        const auto load = a.LoadVector(exts);
        for (int l : load) {
          if (l == 0) return -1.0;  // violates modification (b)
        }
        return PlanningObjective(net, a);
      },
      opts);

  // There must exist an optimal solution with exactly one user per
  // extender: verify the best such solution attains the same value.
  double best_single = -1.0;
  for (std::size_t i1 = 0; i1 < users; ++i1) {
    for (std::size_t i2 = 0; i2 < users; ++i2) {
      if (i1 == i2) continue;
      model::Assignment a(users);
      a.Assign(i1, 0);
      a.Assign(i2, 1);
      best_single = std::max(best_single, PlanningObjective(net, a));
    }
  }
  EXPECT_NEAR(best_single, best.best_aggregate_mbps, 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Seeds, Lemma2Test, ::testing::Range(1, 31));

// --- Theorem 2: Phase I (Hungarian over min(c/|A|, r)) solves the
// modified problem exactly. ---

class Theorem2Test : public ::testing::TestWithParam<int> {};

TEST_P(Theorem2Test, HungarianPhase1MatchesExhaustiveModifiedOptimum) {
  util::Rng rng(static_cast<std::uint64_t>(GetParam()) * 991);
  const std::size_t users = 5, exts = 2;
  const model::Network net = RandomNetwork(rng, users, exts);

  core::WoltPolicy wolt;
  const core::Phase1Result phase1 = wolt.ComputePhase1(net);
  // Build the Phase-I-only assignment and score it under the planning
  // model.
  model::Assignment a(users);
  for (std::size_t j = 0; j < exts; ++j) {
    ASSERT_GE(phase1.user_of_extender[j], 0);
    a.Assign(static_cast<std::size_t>(phase1.user_of_extender[j]), j);
  }
  const double phase1_value = PlanningObjective(net, a);

  // Exhaustive optimum of the modified problem (via Lemma 2 we only need
  // one-user-per-extender configurations).
  double exhaustive = -1.0;
  for (std::size_t i1 = 0; i1 < users; ++i1) {
    for (std::size_t i2 = 0; i2 < users; ++i2) {
      if (i1 == i2) continue;
      model::Assignment cand(users);
      cand.Assign(i1, 0);
      cand.Assign(i2, 1);
      exhaustive = std::max(exhaustive, PlanningObjective(net, cand));
    }
  }
  EXPECT_NEAR(phase1_value, exhaustive, 1e-9);
  // And the Hungarian's utility total equals the achieved value (the
  // Theorem-2 mapping is exact).
  EXPECT_NEAR(phase1.total_utility, phase1_value, 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Seeds, Theorem2Test, ::testing::Range(1, 31));

// --- Theorem 3: the Phase-II relaxation has integral optima. ---

class Theorem3Test : public ::testing::TestWithParam<int> {};

TEST_P(Theorem3Test, NlpConvergesToIntegralPointsLosinglessly) {
  util::Rng rng(static_cast<std::uint64_t>(GetParam()) * 1033);
  const model::Network net = RandomNetwork(rng, 6, 3);
  model::Assignment fixed(6);
  fixed.Assign(0, 0);
  fixed.Assign(1, 1);
  fixed.Assign(2, 2);
  const assign::NlpResult r = assign::SolvePhase2Nlp(net, fixed, {3, 4, 5});
  EXPECT_EQ(r.max_fractionality, 0.0);
  // Rounding an integral point is lossless.
  EXPECT_NEAR(r.objective_rounded, r.objective_continuous, 1e-6);
}

INSTANTIATE_TEST_SUITE_P(Seeds, Theorem3Test, ::testing::Range(1, 31));

}  // namespace
}  // namespace wolt
