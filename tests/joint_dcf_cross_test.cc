// Cross-validates the evaluator's co-channel time-share model against the
// slot-level DCF simulator on two-BSS OBSS instances: two extenders inside
// carrier-sense range of each other, pinned to the same channel, each with
// its own saturated users.
//
// The evaluator's contention model is cell-fair (each of the k co-channel
// cells gets a 1/k airtime share on top of Eq. 1 within the cell); the MAC
// is station-fair (every saturated station wins the channel equally often).
// The two agree exactly when the co-channel cells carry equal
// inverse-effective-rate sums, so the geometries below use equal per-cell
// rate multisets — the evaluator's region of validity — and assert the
// slot-level simulator lands within the same 15% tolerance the DCF suite
// already grants the analytic Eq. 1 formula. A golden table pins the
// deterministic simulator outputs per geometry so a silent MAC or RNG
// change cannot drift past the loose model tolerance unnoticed.
#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "model/assignment.h"
#include "model/evaluator.h"
#include "model/network.h"
#include "wifi/dcf_sim.h"
#include "util/rng.h"

namespace wolt {
namespace {

constexpr double kRange = 60.0;
constexpr double kSimSeconds = 5.0;
constexpr double kModelTol = 0.15;   // evaluator vs slot-level MAC
constexpr double kGoldenTol = 1e-6;  // relative; sim is deterministic

struct Geometry {
  const char* name;
  std::vector<double> cell_a_phy;  // PHY rates of extender 0's users
  std::vector<double> cell_b_phy;  // PHY rates of extender 1's users
  // Deterministic per-cell SimulateDcf throughput (Mbit/s) with both cells
  // on one channel, seeded below. Regenerate by running this test: a
  // mismatch prints the simulated value.
  double golden_cochannel_a;
  double golden_cochannel_b;
};

const std::vector<Geometry>& Geometries() {
  static const std::vector<Geometry> kGeometries = {
      {"one_vs_one_54", {54.0}, {54.0},  //
       14.860520622216676, 15.249313312914206},
      {"two_vs_two_mixed", {54.0, 24.0}, {54.0, 24.0},  //
       10.427679986088487, 9.8948963366266582},
      {"three_vs_three_permuted", {54.0, 36.0, 24.0}, {24.0, 36.0, 54.0},  //
       10.2589374020621, 9.8125836343934338},
  };
  return kGeometries;
}

std::uint64_t SeedFor(std::size_t geometry_index) {
  return 0xdcf0 + geometry_index;
}

// Two extenders 30 m apart (inside carrier-sense range), users reaching only
// their own extender at the MAC-effective rate of their PHY rate, PLC
// backhaul fat enough to never bind.
struct Instance {
  model::Network net;
  model::Assignment assignment;
  std::vector<std::size_t> cell_of_user;
};

Instance BuildInstance(const Geometry& g, const wifi::DcfParams& params) {
  const std::size_t na = g.cell_a_phy.size();
  const std::size_t nb = g.cell_b_phy.size();
  Instance inst;
  inst.net = model::Network(na + nb, 2);
  inst.net.SetExtenderPosition(0, {0.0, 0.0});
  inst.net.SetExtenderPosition(1, {30.0, 0.0});
  inst.net.SetPlcRate(0, 10000.0);
  inst.net.SetPlcRate(1, 10000.0);
  inst.assignment = model::Assignment(na + nb);
  for (std::size_t i = 0; i < na + nb; ++i) {
    const std::size_t cell = i < na ? 0 : 1;
    const double phy = cell == 0 ? g.cell_a_phy[i] : g.cell_b_phy[i - na];
    inst.net.SetWifiRate(i, cell, wifi::EffectiveRate(phy, params));
    inst.assignment.Assign(i, cell);
    inst.cell_of_user.push_back(cell);
  }
  return inst;
}

std::vector<double> PerCellEvaluatorThroughput(const Instance& inst,
                                               const std::vector<int>& plan) {
  model::EvalOptions options;
  options.wifi_channel = plan;
  options.carrier_sense_range_m = kRange;
  const model::EvalResult res =
      model::Evaluator(options).Evaluate(inst.net, inst.assignment);
  std::vector<double> per_cell(2, 0.0);
  for (std::size_t i = 0; i < inst.cell_of_user.size(); ++i) {
    per_cell[inst.cell_of_user[i]] += res.user_throughput_mbps[i];
  }
  return per_cell;
}

// All stations of both cells saturate one collision domain; split the
// simulated station throughputs back per cell.
std::vector<double> PerCellCochannelSim(const Geometry& g,
                                        const wifi::DcfParams& params,
                                        std::uint64_t seed) {
  std::vector<double> phy = g.cell_a_phy;
  phy.insert(phy.end(), g.cell_b_phy.begin(), g.cell_b_phy.end());
  util::Rng rng(seed);
  const wifi::DcfResult r = wifi::SimulateDcf(phy, kSimSeconds, params, rng);
  std::vector<double> per_cell(2, 0.0);
  for (std::size_t s = 0; s < phy.size(); ++s) {
    per_cell[s < g.cell_a_phy.size() ? 0 : 1] +=
        r.stations[s].throughput_mbps;
  }
  return per_cell;
}

TEST(JointDcfCrossTest, CochannelTimeShareMatchesSlotLevelSimulator) {
  const wifi::DcfParams params;
  for (std::size_t gi = 0; gi < Geometries().size(); ++gi) {
    const Geometry& g = Geometries()[gi];
    const Instance inst = BuildInstance(g, params);
    const std::vector<double> eval =
        PerCellEvaluatorThroughput(inst, {0, 0});
    const std::vector<double> sim =
        PerCellCochannelSim(g, params, SeedFor(gi));
    for (int cell = 0; cell < 2; ++cell) {
      EXPECT_NEAR(eval[cell], sim[cell], sim[cell] * kModelTol)
          << g.name << " cell " << cell;
    }
  }
}

TEST(JointDcfCrossTest, CochannelGoldenTablePinsSimulatorOutput) {
  const wifi::DcfParams params;
  for (std::size_t gi = 0; gi < Geometries().size(); ++gi) {
    const Geometry& g = Geometries()[gi];
    const std::vector<double> sim =
        PerCellCochannelSim(g, params, SeedFor(gi));
    EXPECT_NEAR(sim[0], g.golden_cochannel_a,
                g.golden_cochannel_a * kGoldenTol)
        << g.name << " cell 0: simulated " << sim[0];
    EXPECT_NEAR(sim[1], g.golden_cochannel_b,
                g.golden_cochannel_b * kGoldenTol)
        << g.name << " cell 1: simulated " << sim[1];
  }
}

TEST(JointDcfCrossTest, OrthogonalPlanDoublesCellThroughputExactly) {
  // Structural property of the cell-fair model: moving the second BSS to its
  // own channel removes the single co-channel peer, so each cell's
  // throughput exactly doubles (division by 2.0 vs 1.0 — bit-exact), and the
  // orthogonal prediction equals the analytic single-cell Eq. 1 value.
  const wifi::DcfParams params;
  for (const Geometry& g : Geometries()) {
    const Instance inst = BuildInstance(g, params);
    const std::vector<double> co = PerCellEvaluatorThroughput(inst, {0, 0});
    const std::vector<double> ortho =
        PerCellEvaluatorThroughput(inst, {0, 1});
    for (int cell = 0; cell < 2; ++cell) {
      EXPECT_EQ(co[cell], 0.5 * ortho[cell]) << g.name << " cell " << cell;
    }
    EXPECT_DOUBLE_EQ(ortho[0],
                     wifi::AnalyticCellThroughput(g.cell_a_phy, params))
        << g.name;
    EXPECT_DOUBLE_EQ(ortho[1],
                     wifi::AnalyticCellThroughput(g.cell_b_phy, params))
        << g.name;
  }
}

TEST(JointDcfCrossTest, IsolatedCellSimMatchesOrthogonalPrediction) {
  // The orthogonal-plan evaluator claim — each cell behaves as if alone —
  // checked against the MAC: simulate each cell in its own collision domain.
  const wifi::DcfParams params;
  for (std::size_t gi = 0; gi < Geometries().size(); ++gi) {
    const Geometry& g = Geometries()[gi];
    const Instance inst = BuildInstance(g, params);
    const std::vector<double> ortho =
        PerCellEvaluatorThroughput(inst, {0, 1});
    util::Rng rng_a(SeedFor(gi) * 2 + 1);
    util::Rng rng_b(SeedFor(gi) * 2 + 2);
    const double sim_a =
        wifi::SimulateDcf(g.cell_a_phy, kSimSeconds, params, rng_a)
            .aggregate_mbps;
    const double sim_b =
        wifi::SimulateDcf(g.cell_b_phy, kSimSeconds, params, rng_b)
            .aggregate_mbps;
    EXPECT_NEAR(ortho[0], sim_a, sim_a * kModelTol) << g.name;
    EXPECT_NEAR(ortho[1], sim_b, sim_b * kModelTol) << g.name;
  }
}

}  // namespace
}  // namespace wolt
