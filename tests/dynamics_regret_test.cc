// Differential tests for the trace-driven frontier (sim::RunTraceFrontier):
// on instances small enough for an exact per-epoch oracle, the oracle
// dominates every policy, WOLT-S dominates the greedy/RSSI baselines under
// the identical trace, and regret is monotonically non-increasing as the
// reoptimization budget climbs the ladder tiers (hold-last-good -> greedy
// -> Hungarian-sticky -> full policy). Everything here is deterministic:
// one fixed trace is replayed for every comparison.
#include <gtest/gtest.h>

#include <memory>
#include <string>

#include "core/greedy.h"
#include "core/rssi.h"
#include "core/wolt.h"
#include "sim/dynamics.h"
#include "sim/workload.h"
#include "util/rng.h"

namespace wolt::sim {
namespace {

struct Fixture {
  model::Network base;
  WorkloadTrace trace;
  FrontierParams params;
};

// 5 extenders, <= 9 concurrent users: the relaxed brute-force space
// (|A|+1)^|U| stays within FrontierParams::oracle_max_combinations, so
// every epoch's oracle is exact (asserted below).
Fixture MakeFixture() {
  ScenarioParams scenario;
  scenario.num_extenders = 5;
  scenario.num_users = 0;
  const ScenarioGenerator generator(scenario);
  util::Rng topo_rng(17);

  Fixture f{generator.Generate(topo_rng), {}, {}};

  WorkloadParams wp;
  wp.horizon = 12.0;
  wp.initial_users = 4;
  wp.arrival_rate = 0.25;
  wp.mean_session = 8.0;
  wp.mobility.model = MobilityModel::kWaypoint;
  wp.move_tick = 1.0;
  f.trace = GenerateTrace(generator, f.base, wp, 99);

  f.params.epoch_length = 4.0;
  f.params.epochs = 3;
  return f;
}

core::PolicyPtr WoltSubset() {
  core::WoltOptions options;
  options.subset_search = true;
  return std::make_unique<core::WoltPolicy>(options);
}

TEST(DynamicsRegretTest, OracleDominatesEveryPolicyOnIdenticalTrace) {
  const Fixture f = MakeFixture();

  struct Run {
    std::string name;
    FrontierResult result;
  };
  std::vector<Run> runs;
  runs.push_back({"WOLT-S", RunTraceFrontier(f.base, f.trace, WoltSubset(),
                                             f.params)});
  runs.push_back({"Greedy",
                  RunTraceFrontier(f.base, f.trace,
                                   std::make_unique<core::GreedyPolicy>(),
                                   f.params)});
  runs.push_back({"RSSI",
                  RunTraceFrontier(f.base, f.trace,
                                   std::make_unique<core::RssiPolicy>(),
                                   f.params)});

  for (const Run& run : runs) {
    SCOPED_TRACE(run.name);
    ASSERT_EQ(run.result.epochs.size(), 3u);
    for (const FrontierEpoch& e : run.result.epochs) {
      ASSERT_TRUE(e.oracle_exact) << "instance outgrew the exact oracle";
      // The relaxed brute force searches a superset of anything the
      // controller can commit, so it dominates epoch by epoch.
      EXPECT_GE(e.oracle_mbps, e.aggregate_mbps - 1e-9)
          << "epoch " << e.epoch;
      EXPECT_GT(e.population, 0u);
    }
    EXPECT_GE(run.result.regret, 0.0);
    EXPECT_LE(run.result.regret, 1.0);
  }

  // The oracle is policy-independent: identical trace, identical frozen
  // snapshots at every boundary (IngestScan does not run the policy).
  for (std::size_t i = 1; i < runs.size(); ++i) {
    for (int e = 0; e < 3; ++e) {
      EXPECT_DOUBLE_EQ(runs[i].result.epochs[e].oracle_mbps,
                       runs[0].result.epochs[e].oracle_mbps);
    }
  }

  // WOLT-S dominates both baselines on the shared trace.
  EXPECT_GE(runs[0].result.mean_aggregate_mbps,
            runs[1].result.mean_aggregate_mbps - 1e-9);
  EXPECT_GE(runs[0].result.mean_aggregate_mbps,
            runs[2].result.mean_aggregate_mbps - 1e-9);
  EXPECT_LE(runs[0].result.regret, runs[1].result.regret + 1e-9);
  EXPECT_LE(runs[0].result.regret, runs[2].result.regret + 1e-9);
}

TEST(DynamicsRegretTest, RegretNonIncreasingUpTheBudgetLadder) {
  const Fixture f = MakeFixture();

  // Ladder units 1..4 map to kHoldLastGood, kGreedy, kHungarianOnly, kFull
  // (core::TierForBudgetUnits). Richer budgets can only help: the frontier
  // solves with the cumulative ladder (ReoptimizeUpToTier), whose candidate
  // set at a larger budget is a superset of the set at any smaller one.
  std::vector<double> regret;
  for (int units = 1; units <= 4; ++units) {
    FrontierParams p = f.params;
    p.tier = core::TierForBudgetUnits(units);
    const FrontierResult r =
        RunTraceFrontier(f.base, f.trace, WoltSubset(), p);
    regret.push_back(r.regret);
  }
  for (std::size_t i = 1; i < regret.size(); ++i) {
    EXPECT_LE(regret[i], regret[i - 1] + 1e-9)
        << "regret increased from budget " << i << " to " << i + 1;
  }
  // The bottom rung never places arrivals between epochs, so it must be
  // strictly worse than the full policy on this growing trace.
  EXPECT_GT(regret.front(), regret.back());
}

TEST(DynamicsRegretTest, UnbudgetedEqualsFullTier) {
  const Fixture f = MakeFixture();

  FrontierParams full = f.params;
  full.tier = core::TierForBudgetUnits(0);  // unbudgeted -> kFull
  EXPECT_EQ(full.tier, core::ReoptTier::kFull);
  const FrontierResult a =
      RunTraceFrontier(f.base, f.trace, WoltSubset(), full);

  FrontierParams four = f.params;
  four.tier = core::TierForBudgetUnits(4);
  EXPECT_EQ(four.tier, core::ReoptTier::kFull);
  const FrontierResult b =
      RunTraceFrontier(f.base, f.trace, WoltSubset(), four);

  ASSERT_EQ(a.epochs.size(), b.epochs.size());
  for (std::size_t e = 0; e < a.epochs.size(); ++e) {
    EXPECT_DOUBLE_EQ(a.epochs[e].aggregate_mbps, b.epochs[e].aggregate_mbps);
    EXPECT_EQ(a.epochs[e].reassociations, b.epochs[e].reassociations);
  }
  EXPECT_DOUBLE_EQ(a.regret, b.regret);
}

TEST(DynamicsRegretTest, ReplayIsDeterministic) {
  const Fixture f = MakeFixture();
  const FrontierResult a =
      RunTraceFrontier(f.base, f.trace, WoltSubset(), f.params);
  const FrontierResult b =
      RunTraceFrontier(f.base, f.trace, WoltSubset(), f.params);
  ASSERT_EQ(a.epochs.size(), b.epochs.size());
  for (std::size_t e = 0; e < a.epochs.size(); ++e) {
    EXPECT_DOUBLE_EQ(a.epochs[e].aggregate_mbps, b.epochs[e].aggregate_mbps);
    EXPECT_DOUBLE_EQ(a.epochs[e].oracle_mbps, b.epochs[e].oracle_mbps);
    EXPECT_EQ(a.epochs[e].reassociations, b.epochs[e].reassociations);
  }
  EXPECT_DOUBLE_EQ(a.mean_aggregate_mbps, b.mean_aggregate_mbps);
  EXPECT_DOUBLE_EQ(a.reassoc_per_user_epoch, b.reassoc_per_user_epoch);
}

TEST(DynamicsRegretTest, RejectsMismatchedInputs) {
  const Fixture f = MakeFixture();

  // Users-bearing base network.
  ScenarioParams with_users;
  with_users.num_extenders = 5;
  with_users.num_users = 3;
  const ScenarioGenerator gen(with_users);
  util::Rng rng(1);
  const model::Network populated = gen.Generate(rng);
  EXPECT_THROW(
      RunTraceFrontier(populated, f.trace, WoltSubset(), f.params),
      std::invalid_argument);

  // Extender-count mismatch.
  ScenarioParams small;
  small.num_extenders = 3;
  small.num_users = 0;
  const ScenarioGenerator gen3(small);
  util::Rng rng3(2);
  const model::Network three = gen3.Generate(rng3);
  EXPECT_THROW(RunTraceFrontier(three, f.trace, WoltSubset(), f.params),
               std::invalid_argument);

  // Bad epoch parameters.
  FrontierParams bad = f.params;
  bad.epochs = 0;
  EXPECT_THROW(RunTraceFrontier(f.base, f.trace, WoltSubset(), bad),
               std::invalid_argument);
}

}  // namespace
}  // namespace wolt::sim
