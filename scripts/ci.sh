#!/usr/bin/env bash
# CI gate: tier-1 build + tests, the full suite under ASan/UBSan, the full
# suite under TSan (the sweep engine's thread pool races would be invisible
# to ASan), a parallel-determinism smoke (a 4-thread sweep must emit byte-
# identical CSV to a 1-thread sweep), and a chaos smoke. Run from anywhere;
# everything happens at the repo root.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> tier-1: configure + build (build/)"
cmake --preset default >/dev/null
cmake --build build -j"$(nproc)"

echo "==> tier-1: ctest"
ctest --test-dir build --output-on-failure

echo "==> sanitize: configure + build (build-asan/, ASan+UBSan)"
cmake --preset sanitize >/dev/null
cmake --build build-asan -j"$(nproc)"

echo "==> sanitize: ctest (includes the 100-seed chaos soak)"
ctest --test-dir build-asan --output-on-failure

echo "==> tsan: configure + build (build-tsan/, ThreadSanitizer)"
cmake --preset tsan >/dev/null
cmake --build build-tsan -j"$(nproc)"

echo "==> tsan: ctest (full suite under TSan)"
ctest --test-dir build-tsan --output-on-failure

echo "==> determinism smoke: 4-thread sweep CSV == 1-thread sweep CSV"
./build/bench/bench_fig6a_throughput_cdf --trials=20 --threads=1 \
    --csv=/tmp/wolt_sweep_t1.csv >/dev/null
./build/bench/bench_fig6a_throughput_cdf --trials=20 --threads=4 \
    --csv=/tmp/wolt_sweep_t4.csv >/dev/null
cmp /tmp/wolt_sweep_t1.csv /tmp/wolt_sweep_t4.csv
rm -f /tmp/wolt_sweep_t1.csv /tmp/wolt_sweep_t4.csv

echo "==> chaos smoke: 10-seed soak with invariant gate (4 threads)"
./build/bench/bench_chaos_soak 10 4

echo "==> CI gate passed"
