#!/usr/bin/env bash
# CI gate: tier-1 build + tests, the full suite under ASan/UBSan, the full
# suite under TSan (the sweep engine's thread pool races would be invisible
# to ASan), storage-fault smokes (exhaustive crash-point harness in the
# default and ASan builds, randomized crash points under TSan), a parallel-
# determinism smoke (a 4-thread sweep must emit byte-identical CSV to a
# 1-thread sweep), a chaos smoke, and two perf gates (obs hooks <= 5%, Vfs
# storage seam <= 1%). Run from anywhere; everything happens at the repo
# root.
#
#   scripts/ci.sh               the full gate above
#   scripts/ci.sh --coverage    observability coverage gate instead: gcov
#                               line coverage of src/obs/ must be >= 90%,
#                               plus a TSan pass over the obs suites (the
#                               lock-free metrics fast path).
set -euo pipefail
cd "$(dirname "$0")/.."

if [[ "${1:-}" == "--coverage" ]]; then
  echo "==> coverage: configure + build (build-cov/, -O0 --coverage)"
  cmake --preset coverage >/dev/null
  cmake --build build-cov -j"$(nproc)" --target obs_test obs_golden_test \
    solver_differential_test sweep_determinism_test controller_test \
    dynamics_test evaluator_test local_search_test hungarian_test nlp_test

  echo "==> coverage: run the suites that exercise src/obs/"
  # Stale counters from previous runs poison the percentages.
  find build-cov -name '*.gcda' -delete
  ctest --test-dir build-cov --output-on-failure -R \
    '^(obs_test|obs_golden_test|solver_differential_test|sweep_determinism_test|controller_test|dynamics_test|evaluator_test|local_search_test|hungarian_test|nlp_test)$'

  echo "==> coverage: gcov line coverage of src/obs/ (gate: >= 90%)"
  # CMake names the profile files after the object (metrics.cc.gcno), so a
  # plain `gcov -o objdir src/obs/metrics.cc` misses them; feed the .gcda
  # files to gcov directly instead. The JSON goes through a temp file because
  # the heredoc below already claims python's stdin.
  objdir="build-cov/src/CMakeFiles/wolt.dir/obs"
  gcov_tmp="$(mktemp)"
  trap 'rm -f "${gcov_tmp}"' EXIT
  for gcda in "${objdir}"/*.gcda; do
    gcov --json-format --stdout "${gcda}" >>"${gcov_tmp}"
    echo >>"${gcov_tmp}"
  done
  python3 - "${gcov_tmp}" <<'PY'
import json
import sys

per_file = {}  # path -> {line_number -> max count}
with open(sys.argv[1]) as fh:
    docs = fh.read().splitlines()
for doc in docs:
    if not doc.strip():
        continue
    data = json.loads(doc)
    for f in data.get("files", []):
        path = f["file"]
        if "src/obs/" not in path.replace("\\", "/"):
            continue
        lines = per_file.setdefault(path, {})
        for line in f["lines"]:
            n = line["line_number"]
            lines[n] = max(lines.get(n, 0), line["count"])

if not per_file:
    sys.exit("error: gcov reported no src/obs/ lines (build-cov stale?)")

total = covered = 0
print(f"{'file':44} {'lines':>6} {'covered':>8} {'pct':>7}")
for path in sorted(per_file):
    lines = per_file[path]
    file_total = len(lines)
    file_cov = sum(1 for c in lines.values() if c > 0)
    total += file_total
    covered += file_cov
    short = path[path.replace("\\", "/").rfind("src/obs/"):]
    print(f"{short:44} {file_total:6d} {file_cov:8d} "
          f"{100.0 * file_cov / file_total:6.1f}%")
pct = 100.0 * covered / total
print(f"{'TOTAL src/obs/':44} {total:6d} {covered:8d} {pct:6.1f}%")
if pct < 90.0:
    sys.exit(f"error: src/obs/ line coverage {pct:.1f}% < 90%")
PY

  echo "==> coverage: TSan pass over the lock-free metrics path"
  cmake --preset tsan >/dev/null
  cmake --build build-tsan -j"$(nproc)" --target obs_test obs_golden_test \
    thread_pool_test sweep_determinism_test local_search_test \
    solver_differential_test
  ctest --test-dir build-tsan --output-on-failure -R \
    '^(obs_test|obs_golden_test|thread_pool_test|sweep_determinism_test|local_search_test|solver_differential_test)$'

  echo "==> coverage gate passed"
  exit 0
fi

echo "==> tier-1: configure + build (build/)"
cmake --preset default >/dev/null
cmake --build build -j"$(nproc)"

echo "==> tier-1: ctest"
ctest --test-dir build --output-on-failure

echo "==> storage-fault smoke: exhaustive crash-point harness (default build)"
# Every I/O op index in a journaled 64-task sweep and a 16-shard fleet run
# gets a simulated power cut (in-process, MemVfs disk) followed by a resume
# that must reproduce the uninterrupted run byte-for-byte, at 1 and 4
# threads; a second exhaustive pass injects ENOSPC at every op and requires
# graceful journal degradation with unchanged results.
./build/tests/storage_crash_test \
    --gtest_filter='StorageCrashSweep.*:StorageCrashFleet.*'

echo "==> sanitize: configure + build (build-asan/, ASan+UBSan)"
cmake --preset sanitize >/dev/null
cmake --build build-asan -j"$(nproc)"

echo "==> sanitize: ctest (includes the 100-seed chaos soak and the"
echo "    200-seed x 3-sharing-mode joint differential suite)"
ctest --test-dir build-asan --output-on-failure

echo "==> storage-fault smoke: crash-point pass under ASan (strided)"
# The harness strides its op grid under sanitizers; this still power-cuts
# both the sweep and the fleet at dozens of distinct I/O ops with ASan
# watching the resume path.
./build-asan/tests/storage_crash_test \
    --gtest_filter='StorageCrashSweep.PowerCut*:StorageCrashFleet.PowerCut*'

echo "==> tsan: configure + build (build-tsan/, ThreadSanitizer)"
cmake --preset tsan >/dev/null
cmake --build build-tsan -j"$(nproc)"

echo "==> tsan: ctest (full suite under TSan)"
# The full suite includes the in-solve parallel paths: local_search_test's
# MultiStartParallel byte-identity cases and solver_differential_test's
# per-start arena reuse run WOLT's Phase-II searches on a live ThreadPool,
# which is where a data race in the deterministic merge would surface. It
# also covers the fleet runtime (fleet_test/fleet_soak_test/fleet_resume_test
# run their parallel shard phase and the Shutdown-vs-submit race under TSan,
# at reduced shard/seed counts).
ctest --test-dir build-tsan --output-on-failure

echo "==> storage-fault smoke: 20-seed randomized crash points under TSan"
# Random (seeded) crash points across 1/2/4-thread sweep and fleet runs:
# the crash lands wherever the schedule put the I/O, so TSan sees the
# journal append path race against worker threads in many interleavings.
./build-tsan/tests/storage_crash_test \
    --gtest_filter='StorageCrashRandomized.TwentyRandomCrashPoints'

echo "==> tsan: 20-seed trace-determinism pass (workload generator)"
# Byte-identical trace regeneration per seed, run under TSan like the sweep
# smoke: the generator is single-threaded by construction, so any racing
# global state (rng substreams, obs counters) would surface here.
./build-tsan/tests/workload_property_test \
    --gtest_filter='WorkloadPropertyTest.TraceDeterminismTwentySeeds'

echo "==> determinism smoke: 4-thread sweep CSV == 1-thread sweep CSV"
./build/bench/bench_fig6a_throughput_cdf --trials=20 --threads=1 \
    --csv=/tmp/wolt_sweep_t1.csv >/dev/null
./build/bench/bench_fig6a_throughput_cdf --trials=20 --threads=4 \
    --csv=/tmp/wolt_sweep_t4.csv >/dev/null
cmp /tmp/wolt_sweep_t1.csv /tmp/wolt_sweep_t4.csv
rm -f /tmp/wolt_sweep_t1.csv /tmp/wolt_sweep_t4.csv

echo "==> determinism smoke: joint sweep axis (--channels=3), 4-thread == 1-thread"
# The joint path adds the WOLT-J policy and scores every trial under the
# overlap model; its CSV must stay byte-identical across thread counts too.
./build/bench/bench_fig6a_throughput_cdf --trials=20 --channels=3 --threads=1 \
    --csv=/tmp/wolt_joint_t1.csv >/dev/null
./build/bench/bench_fig6a_throughput_cdf --trials=20 --channels=3 --threads=4 \
    --csv=/tmp/wolt_joint_t4.csv >/dev/null
cmp /tmp/wolt_joint_t1.csv /tmp/wolt_joint_t4.csv
rm -f /tmp/wolt_joint_t1.csv /tmp/wolt_joint_t4.csv

echo "==> determinism smoke: dynamic workload axes, 4-thread == 1-thread"
# The trace-driven frontier path (mobility + churn + diurnal load, budgeted
# reoptimization): per-trial traces are generated from per-scenario
# substreams and replayed through a CentralController, so the CSV must stay
# byte-identical across thread counts exactly like the static sweeps.
./build/bench/bench_fig6a_throughput_cdf --trials=6 --threads=1 \
    --mobility=waypoint --churn=0.5 --load=diurnal --budget=4 \
    --csv=/tmp/wolt_dyn_t1.csv >/dev/null
./build/bench/bench_fig6a_throughput_cdf --trials=6 --threads=4 \
    --mobility=waypoint --churn=0.5 --load=diurnal --budget=4 \
    --csv=/tmp/wolt_dyn_t4.csv >/dev/null
cmp /tmp/wolt_dyn_t1.csv /tmp/wolt_dyn_t4.csv
rm -f /tmp/wolt_dyn_t1.csv /tmp/wolt_dyn_t4.csv

echo "==> crash-resume smoke: SIGKILL a journaled sweep, resume, compare CSV"
# 500 trials run ~1s, so the kill at 0.2s lands mid-sweep; if the sweep ever
# wins the race anyway, the resume is a no-op and the property still holds.
# The resumed CSV must match an uninterrupted golden byte-for-byte.
rm -f /tmp/wolt_resume.wal /tmp/wolt_resume.csv /tmp/wolt_resume_golden.csv
./build/bench/bench_fig6a_throughput_cdf --trials=500 --threads=4 \
    --csv=/tmp/wolt_resume_golden.csv >/dev/null
./build/bench/bench_fig6a_throughput_cdf --trials=500 --threads=4 \
    --journal=/tmp/wolt_resume.wal --csv=/tmp/wolt_resume.csv >/dev/null &
pid=$!
sleep 0.2
kill -9 "$pid" 2>/dev/null || true
wait "$pid" 2>/dev/null || true
./build/bench/bench_fig6a_throughput_cdf --trials=500 --threads=4 \
    --resume=/tmp/wolt_resume.wal --csv=/tmp/wolt_resume.csv >/dev/null
cmp /tmp/wolt_resume.csv /tmp/wolt_resume_golden.csv
rm -f /tmp/wolt_resume.wal /tmp/wolt_resume.csv /tmp/wolt_resume_golden.csv

echo "==> fleet kill-and-resume smoke: SIGKILL a journaled 64-shard fleet"
# 64 shards x 400 rounds runs ~1s, so the kill at 0.3s lands mid-run; if the
# run ever wins the race anyway, the resume replays the completed journal and
# the property still holds. The resumed report must byte-match an
# uninterrupted golden produced at a DIFFERENT thread count — one cmp gates
# both crash-safety and thread-count invariance. The binary itself exits
# non-zero on any fleet invariant violation (isolation/accounting/degraded).
rm -f /tmp/wolt_fleet.wal /tmp/wolt_fleet.txt /tmp/wolt_fleet_golden.txt
./build/bench/bench_fleet_soak --shards=64 --rounds=400 --threads=8 \
    --report=/tmp/wolt_fleet_golden.txt 2>/dev/null
./build/bench/bench_fleet_soak --shards=64 --rounds=400 --threads=4 \
    --journal=/tmp/wolt_fleet.wal 2>/dev/null &
pid=$!
sleep 0.3
kill -9 "$pid" 2>/dev/null || true
wait "$pid" 2>/dev/null || true
./build/bench/bench_fleet_soak --shards=64 --rounds=400 --threads=4 \
    --journal=/tmp/wolt_fleet.wal --resume --report=/tmp/wolt_fleet.txt \
    2>/dev/null
cmp /tmp/wolt_fleet.txt /tmp/wolt_fleet_golden.txt
rm -f /tmp/wolt_fleet.wal /tmp/wolt_fleet.txt /tmp/wolt_fleet_golden.txt

echo "==> chaos smoke: 10-seed soak with invariant gate (4 threads)"
./build/bench/bench_chaos_soak 10 4

echo "==> perf smoke: obs overhead (hooks enabled <= 5% over disabled)"
# BM_WoltAssociateObs runs the identical WOLT solve with (/1) and without
# (/0) a live MetricsScope from one benchmark function, so the pair isolates
# pure instrumentation overhead. Wall-clock noise on shared CI hosts is
# absorbed by retrying: the gate fails only if all three attempts regress.
perf_smoke_ok=0
for attempt in 1 2 3; do
  ./build/bench/bench_scaling_runtime \
      --benchmark_filter='^BM_WoltAssociateObs/200/15/[01]$' \
      --benchmark_min_time=0.2 \
      --benchmark_format=json >/tmp/wolt_obs_smoke.json 2>/dev/null
  t_off="$(jq -r '[.benchmarks[] | select(.name | endswith("/0"))][0].cpu_time' /tmp/wolt_obs_smoke.json)"
  t_on="$(jq -r '[.benchmarks[] | select(.name | endswith("/1"))][0].cpu_time' /tmp/wolt_obs_smoke.json)"
  if [[ "${t_off}" == "null" || "${t_on}" == "null" ]]; then
    echo "error: obs-overhead pair missing from benchmark output" >&2
    exit 1
  fi
  if awk -v on="${t_on}" -v off="${t_off}" 'BEGIN { exit !(on <= off * 1.05) }'; then
    echo "    attempt ${attempt}: obs on/off = ${t_on}/${t_off} — within 5%"
    perf_smoke_ok=1
    break
  fi
  echo "    attempt ${attempt}: obs on/off = ${t_on}/${t_off} — over 5%, retrying"
done
rm -f /tmp/wolt_obs_smoke.json
if [[ "${perf_smoke_ok}" -ne 1 ]]; then
  echo "error: observability overhead exceeded 5% on all attempts" >&2
  exit 1
fi

echo "==> perf smoke: Vfs seam dispatch (<= 1% on the journaled sweep)"
# BM_SweepThroughputJournal journals the BM_SweepThroughput grid through
# the io::Vfs seam. vfs:1 writes to an in-memory disk; vfs:2 wraps that
# same disk in a zero-probability FaultVfs — identical journal work plus
# ONE extra Vfs layer, so the vfs:2/vfs:1 ratio is exactly the cost of a
# Vfs indirection with encoding and disk latency factored out. A 1% budget
# sits inside shared-host noise, so: interleaved repetitions, min-of-5
# cpu_time floors, and the gate fails only if all five attempts regress.
seam_smoke_ok=0
for attempt in 1 2 3 4 5; do
  ./build/bench/bench_scaling_runtime \
      --benchmark_filter='^BM_SweepThroughputJournal/threads:1/vfs:[12]' \
      --benchmark_enable_random_interleaving=true \
      --benchmark_min_time=0.3 \
      --benchmark_repetitions=5 \
      --benchmark_format=json >/tmp/wolt_seam_smoke.json 2>/dev/null
  t_base="$(jq -r '[.benchmarks[] | select(.run_type == "iteration" and (.name | contains("/vfs:1/"))) | .cpu_time] | min' /tmp/wolt_seam_smoke.json)"
  t_layered="$(jq -r '[.benchmarks[] | select(.run_type == "iteration" and (.name | contains("/vfs:2/"))) | .cpu_time] | min' /tmp/wolt_seam_smoke.json)"
  if [[ "${t_base}" == "null" || "${t_layered}" == "null" ]]; then
    echo "error: seam-overhead pair missing from benchmark output" >&2
    exit 1
  fi
  if awk -v layered="${t_layered}" -v base="${t_base}" 'BEGIN { exit !(layered <= base * 1.01) }'; then
    echo "    attempt ${attempt}: layered/base = ${t_layered}/${t_base} — within 1%"
    seam_smoke_ok=1
    break
  fi
  echo "    attempt ${attempt}: layered/base = ${t_layered}/${t_base} — over 1%, retrying"
done
rm -f /tmp/wolt_seam_smoke.json
if [[ "${seam_smoke_ok}" -ne 1 ]]; then
  echo "error: Vfs seam overhead exceeded 1% on all attempts" >&2
  exit 1
fi

echo "==> CI gate passed"
