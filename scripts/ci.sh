#!/usr/bin/env bash
# CI gate: tier-1 build + tests, the full suite under ASan/UBSan, and a
# chaos smoke. Run from anywhere; everything happens at the repo root.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> tier-1: configure + build (build/)"
cmake --preset default >/dev/null
cmake --build build -j"$(nproc)"

echo "==> tier-1: ctest"
ctest --test-dir build --output-on-failure

echo "==> sanitize: configure + build (build-asan/, ASan+UBSan)"
cmake --preset sanitize >/dev/null
cmake --build build-asan -j"$(nproc)"

echo "==> sanitize: ctest (includes the 100-seed chaos soak)"
ctest --test-dir build-asan --output-on-failure

echo "==> chaos smoke: 10-seed soak with invariant gate"
./build/bench/bench_chaos_soak 10

echo "==> CI gate passed"
